//! `#[derive(Serialize)]` for the vendored `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`). Supports the two shapes this workspace derives on:
//! structs with named fields, and enums whose variants carry no data.
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility ahead of the struct/enum keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => {
            return Err(format!(
                "derive(Serialize) shim: expected struct/enum, got {other:?}"
            ))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "derive(Serialize) shim: expected a name, got {other:?}"
            ))
        }
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize) shim: generic type `{name}` is not supported"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "derive(Serialize) shim: tuple struct `{name}` is not supported; use named fields"
            ));
        }
        other => {
            return Err(format!(
                "derive(Serialize) shim: expected a braced body for `{name}`, got {other:?}"
            ))
        }
    };

    if kind == "struct" {
        let fields = named_fields(body)?;
        let entries: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                )
            })
            .collect();
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Value::Object(::std::vec![{}])\n}}\n}}",
            entries.join(", ")
        ))
    } else {
        let variants = unit_variants(&name, body)?;
        let arms: Vec<String> = variants
            .iter()
            .map(|v| {
                format!("{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?}))")
            })
            .collect();
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             match self {{ {} }}\n}}\n}}",
            arms.join(", ")
        ))
    }
}

/// Field names of a named-field struct body, in declaration order.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut expect_name = true; // at a field boundary (start or after a top-level comma)
    let mut angle_depth = 0i32; // commas inside generics are not boundaries
    let mut pending: Option<String> = None;

    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                expect_name = true;
                pending = None;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && angle_depth == 0 => {
                // `name:` confirmed (skips over `::` inside types because a
                // path's second colon follows a consumed pending name only
                // at angle_depth 0 — pending is taken exactly once).
                if let Some(name) = pending.take() {
                    fields.push(name);
                }
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {} // field attribute marker
            TokenTree::Group(_) => {}                       // attribute body / default expr groups
            TokenTree::Ident(id) if expect_name => {
                let s = id.to_string();
                if s == "pub" {
                    continue;
                }
                pending = Some(s);
                expect_name = false;
            }
            _ => {}
        }
    }
    Ok(fields)
}

/// Variant names of a data-free enum body.
fn unit_variants(name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut expect_name = true;
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == ',' => expect_name = true,
            TokenTree::Punct(p) if p.as_char() == '#' => {}
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {} // attribute
            TokenTree::Group(_) => {
                return Err(format!(
                    "derive(Serialize) shim: enum `{name}` has a data-carrying variant, \
                     which is not supported"
                ));
            }
            TokenTree::Ident(id) if expect_name => {
                variants.push(id.to_string());
                expect_name = false;
            }
            _ => {}
        }
    }
    Ok(variants)
}
