//! Pool sizing and the scoped executor every parallel consumer runs on.
//!
//! There is no persistent worker pool: each parallel call spawns its
//! workers with [`std::thread::scope`], which lets work-item closures
//! borrow from the caller's stack safely (no `'static` bound, no unsafe
//! lifetime erasure) and propagates worker panics on join. Spawn cost is
//! tens of microseconds per worker, which is noise against the chunky
//! workloads this workspace runs (graph construction passes, query
//! batches, matrix rows).
//!
//! The *pool size* is global: `RPQ_THREADS` if set to a positive integer,
//! otherwise [`std::thread::available_parallelism`]. Tests and callers
//! that need a specific width use [`with_num_threads`], a scoped,
//! thread-local override (thread-local so concurrently running tests
//! cannot perturb each other's width).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Work-splitting granularity: the source splits into up to this many
/// chunks regardless of pool width. Width-independent boundaries keep
/// per-chunk reductions (even floating-point ones) bit-identical at
/// every thread count, while 64 chunks leave the atomic claim counter
/// several chunks per worker to rebalance with on any realistic pool.
pub(crate) const TARGET_CHUNKS: usize = 64;

static ENV_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scoped width override for the current thread (0 = none).
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Set on executor worker threads: nested parallel calls run
    /// sequentially instead of spawning a second tier of workers.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a raw `RPQ_THREADS` value: positive integers are taken
/// verbatim; unset, empty, zero, or unparsable values fall back to the
/// machine's available parallelism.
pub(crate) fn threads_from_env_value(value: Option<&str>) -> usize {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(hardware_threads)
}

fn env_threads() -> usize {
    *ENV_THREADS
        .get_or_init(|| threads_from_env_value(std::env::var("RPQ_THREADS").ok().as_deref()))
}

/// Number of worker threads parallel calls on this thread will use.
///
/// Inside an executor worker this reports 1 (nested parallelism runs
/// sequentially), so it always answers "how wide is the next parallel
/// call from here" — which is exactly what throughput accounting wants.
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let o = OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        env_threads()
    }
}

/// The number of workers a parallel call over `len` items issued from
/// this thread will actually execute on: the pool width, capped by the
/// chunk count (at most `TARGET_CHUNKS`, at most one chunk per item).
///
/// This is a shim extension; throughput accounting that models
/// per-worker overlap (the hybrid sweep's I/O model) must divide by
/// this, not by [`current_num_threads`], or it overstates parallelism
/// whenever the pool is wider than the work splits.
pub fn execution_width(len: usize) -> usize {
    current_num_threads().min(TARGET_CHUNKS).min(len).max(1)
}

/// Runs `f` with the calling thread's pool width pinned to `n` (clamped
/// to ≥ 1), restoring the previous width afterwards — including on panic.
///
/// This is a shim extension (real rayon configures width through
/// `ThreadPoolBuilder`); it exists so determinism tests can compare
/// `RPQ_THREADS=1` and multi-threaded execution inside one process.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(Cell::get));
    OVERRIDE.with(|c| c.set(n.max(1)));
    f()
}

/// Executes `chunks` (pre-split, tagged with their base index) on `width`
/// scoped workers and returns the per-chunk results **in chunk order**.
///
/// Each worker builds one `state` with `make_state` and threads it through
/// every chunk it processes (the `map_init` contract). Chunks are claimed
/// through an atomic counter, so a slow chunk never strands work behind
/// it. If any worker panics, the panic is re-raised on the caller after
/// all workers have been joined.
pub(crate) fn run_ordered<Src, St, T>(
    chunks: Vec<(usize, Src)>,
    width: usize,
    make_state: &(dyn Fn() -> St + Sync),
    work: &(dyn Fn(&mut St, usize, Src) -> T + Sync),
) -> Vec<T>
where
    Src: Send,
    T: Send,
{
    let n = chunks.len();
    let slots: Vec<Mutex<Option<(usize, Src)>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..width.min(n))
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|c| c.set(true));
                    let mut state = make_state();
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let (base, src) = slots[i]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("chunk claimed exactly once");
                        done.push((i, work(&mut state, base, src)));
                    }
                    done
                })
            })
            .collect();
        let mut panic_payload = None;
        for worker in workers {
            match worker.join() {
                Ok(part) => tagged.extend(part),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// True on an executor worker thread (used by [`crate::join`] to avoid
/// spawning a second tier of threads for nested parallelism).
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Marks the current thread as an executor worker (used by [`crate::join`]
/// for the spawned half, so nested parallel calls degrade to sequential).
pub(crate) fn enter_worker() {
    IN_WORKER.with(|c| c.set(true));
}

/// Runs `f` with the current thread marked as a worker, restoring the
/// previous flag afterwards — including on panic (used by
/// [`crate::join`] for the caller-side closure).
pub(crate) fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(IN_WORKER.with(Cell::get));
    IN_WORKER.with(|c| c.set(true));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_value_parsing() {
        assert_eq!(threads_from_env_value(Some("3")), 3);
        assert_eq!(threads_from_env_value(Some(" 8 ")), 8);
        // Unset / empty / zero / garbage all fall back to the hardware
        // count, which is at least 1.
        for bad in [None, Some(""), Some("0"), Some("lots"), Some("-2")] {
            assert!(threads_from_env_value(bad) >= 1, "{bad:?}");
        }
    }

    #[test]
    fn execution_width_never_exceeds_chunks_or_items() {
        with_num_threads(128, || {
            assert_eq!(execution_width(1_000_000), TARGET_CHUNKS);
            assert_eq!(execution_width(10), 10);
            assert_eq!(execution_width(0), 1);
        });
        with_num_threads(2, || assert_eq!(execution_width(1_000_000), 2));
        with_num_threads(1, || assert_eq!(execution_width(50), 1));
    }

    #[test]
    fn override_is_scoped_and_restored() {
        let outer = current_num_threads();
        let inner = with_num_threads(7, current_num_threads);
        assert_eq!(inner, 7);
        assert_eq!(current_num_threads(), outer);
        // Nested overrides restore in LIFO order.
        with_num_threads(2, || {
            assert_eq!(current_num_threads(), 2);
            with_num_threads(5, || assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn override_restored_on_panic() {
        let outer = current_num_threads();
        let caught = std::panic::catch_unwind(|| with_num_threads(3, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn run_ordered_preserves_chunk_order() {
        let chunks: Vec<(usize, u64)> = (0..32).map(|i| (i, i as u64)).collect();
        let out = run_ordered(chunks, 4, &|| (), &|_, base, src| (base, src * 2));
        assert_eq!(out.len(), 32);
        for (i, (base, doubled)) in out.iter().enumerate() {
            assert_eq!(*base, i);
            assert_eq!(*doubled, 2 * i as u64);
        }
    }
}
