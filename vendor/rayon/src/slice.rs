//! Chunked slice access: `.par_chunks()` / `.par_chunks_mut()`.

use crate::iter::{IdentOps, Par, Source};

/// Shared chunked source (`par_chunks`): items are `&[T]` of length
/// `size` (the last may be shorter).
pub struct ChunksSource<'a, T> {
    data: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Source for ChunksSource<'a, T> {
    type Item = &'a [T];
    type Iter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.data.len().div_ceil(self.size)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = (at * self.size).min(self.data.len());
        let (head, tail) = self.data.split_at(mid);
        (
            ChunksSource {
                data: head,
                size: self.size,
            },
            ChunksSource {
                data: tail,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.data.chunks(self.size)
    }
}

/// Exclusive chunked source (`par_chunks_mut`): items are `&mut [T]`.
pub struct ChunksMutSource<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Source for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];
    type Iter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.data.len().div_ceil(self.size)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = (at * self.size).min(self.data.len());
        let (head, tail) = self.data.split_at_mut(mid);
        (
            ChunksMutSource {
                data: head,
                size: self.size,
            },
            ChunksMutSource {
                data: tail,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.data.chunks_mut(self.size)
    }
}

/// Chunked shared access: `.par_chunks()`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized pieces (last may be
    /// shorter). Panics if `chunk_size` is zero.
    fn par_chunks(&self, chunk_size: usize) -> Par<IdentOps<ChunksSource<'_, T>>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<IdentOps<ChunksSource<'_, T>>> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        Par::new(
            IdentOps::new(),
            ChunksSource {
                data: self,
                size: chunk_size,
            },
        )
    }
}

/// Chunked exclusive access: `.par_chunks_mut()`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive `chunk_size`-sized pieces (last
    /// may be shorter). Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<IdentOps<ChunksMutSource<'_, T>>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<IdentOps<ChunksMutSource<'_, T>>> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        Par::new(
            IdentOps::new(),
            ChunksMutSource {
                data: self,
                size: chunk_size,
            },
        )
    }
}
