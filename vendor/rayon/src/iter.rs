//! The parallel-iterator machinery: splittable sources, a composable
//! adapter stack, and the consumers that hand work to the executor.
//!
//! Architecture (a deliberately small cousin of real rayon's
//! producer/consumer plumbing):
//!
//! - A [`Source`] is a splittable description of the underlying data
//!   (a range, a slice, chunked slices, an owned `Vec`). The driver
//!   splits it into contiguous chunks, each tagged with its base index.
//! - An [`Ops`] value is the adapter stack (`map`, `filter_map`,
//!   `enumerate`, `map_init`) *detached from the data*. It is shared by
//!   reference across workers, which is why every captured closure needs
//!   `Send + Sync` — the same bounds real rayon demands.
//! - [`Par`] glues one `Ops` stack to one `Source` and exposes the
//!   consumer methods (`collect`, `for_each`, `sum`). Consumers run each
//!   chunk through the stack on a worker and merge per-chunk results in
//!   chunk order, so `collect` is order-preserving and results are
//!   identical at every thread count.

use std::marker::PhantomData;

use crate::pool;

/// A splittable, contiguous description of parallelizable data.
pub trait Source: Send + Sized {
    /// The item this source yields sequentially after splitting.
    type Item: Send;
    /// Sequential iterator over one split-off chunk.
    type Iter: Iterator<Item = Self::Item>;

    /// Number of items remaining in this source.
    fn len(&self) -> usize;

    /// True when the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, at)` and `[at, len)`.
    fn split_at(self, at: usize) -> (Self, Self);

    /// Converts one chunk into its sequential iterator.
    fn into_seq(self) -> Self::Iter;
}

/// The adapter stack: how a worker turns one source chunk into items.
///
/// `process` drives the chunk sequentially, passing every produced item
/// to `sink`. `base` is the chunk's starting index in the original
/// source (what `enumerate` counts from), and `state` is the per-worker
/// state `map_init` threads through every chunk a worker runs.
pub trait Ops: Send + Sync {
    type Source: Source;
    type Item: Send;
    type State;

    /// True while every produced item maps 1:1 to a source index —
    /// the precondition for `enumerate` (broken by `filter_map`).
    const INDEXED: bool;

    /// Builds one per-worker state (called once per worker).
    fn new_state(&self) -> Self::State;

    /// Runs one chunk through the stack, feeding items to `sink`.
    fn process(
        &self,
        base: usize,
        src: Self::Source,
        state: &mut Self::State,
        sink: &mut dyn FnMut(Self::Item),
    );
}

/// The no-adapter stack: items come straight off the source.
pub struct IdentOps<S>(PhantomData<fn(S) -> S>);

impl<S> IdentOps<S> {
    pub(crate) fn new() -> Self {
        Self(PhantomData)
    }
}

impl<S: Source> Ops for IdentOps<S> {
    type Source = S;
    type Item = S::Item;
    type State = ();
    const INDEXED: bool = true;

    fn new_state(&self) {}

    fn process(&self, _base: usize, src: S, _state: &mut (), sink: &mut dyn FnMut(S::Item)) {
        src.into_seq().for_each(sink);
    }
}

/// `map` adapter stack.
pub struct MapOps<O, F> {
    inner: O,
    f: F,
}

impl<O, F, R> Ops for MapOps<O, F>
where
    O: Ops,
    F: Fn(O::Item) -> R + Send + Sync,
    R: Send,
{
    type Source = O::Source;
    type Item = R;
    type State = O::State;
    const INDEXED: bool = O::INDEXED;

    fn new_state(&self) -> O::State {
        self.inner.new_state()
    }

    fn process(&self, base: usize, src: O::Source, state: &mut O::State, sink: &mut dyn FnMut(R)) {
        self.inner
            .process(base, src, state, &mut |item| sink((self.f)(item)));
    }
}

/// `filter_map` adapter stack.
pub struct FilterMapOps<O, F> {
    inner: O,
    f: F,
}

impl<O, F, R> Ops for FilterMapOps<O, F>
where
    O: Ops,
    F: Fn(O::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Source = O::Source;
    type Item = R;
    type State = O::State;
    const INDEXED: bool = false;

    fn new_state(&self) -> O::State {
        self.inner.new_state()
    }

    fn process(&self, base: usize, src: O::Source, state: &mut O::State, sink: &mut dyn FnMut(R)) {
        self.inner.process(base, src, state, &mut |item| {
            if let Some(mapped) = (self.f)(item) {
                sink(mapped);
            }
        });
    }
}

/// `map_init` adapter stack: per-worker scratch state.
pub struct MapInitOps<O, INIT, F> {
    inner: O,
    init: INIT,
    f: F,
}

impl<O, INIT, T, F, R> Ops for MapInitOps<O, INIT, F>
where
    O: Ops<State = ()>,
    INIT: Fn() -> T + Send + Sync,
    F: Fn(&mut T, O::Item) -> R + Send + Sync,
    R: Send,
{
    type Source = O::Source;
    type Item = R;
    type State = T;
    const INDEXED: bool = O::INDEXED;

    fn new_state(&self) -> T {
        (self.init)()
    }

    fn process(&self, base: usize, src: O::Source, state: &mut T, sink: &mut dyn FnMut(R)) {
        self.inner
            .process(base, src, &mut (), &mut |item| sink((self.f)(state, item)));
    }
}

/// `enumerate` adapter stack: pairs each item with its source index.
pub struct EnumerateOps<O> {
    inner: O,
}

impl<O: Ops> Ops for EnumerateOps<O> {
    type Source = O::Source;
    type Item = (usize, O::Item);
    type State = O::State;
    const INDEXED: bool = O::INDEXED;

    fn new_state(&self) -> O::State {
        self.inner.new_state()
    }

    fn process(
        &self,
        base: usize,
        src: O::Source,
        state: &mut O::State,
        sink: &mut dyn FnMut((usize, O::Item)),
    ) {
        let mut index = base;
        self.inner.process(base, src, state, &mut |item| {
            sink((index, item));
            index += 1;
        });
    }
}

/// A parallel iterator: one adapter stack bound to one splittable source.
///
/// Consumers (`collect`, `for_each`, `sum`) split the source into
/// contiguous chunks at width-independent boundaries, run them on
/// scoped worker threads (claimed through an atomic counter for load
/// balance), and merge per-chunk results in chunk order — results are
/// bit-identical at every thread count.
pub struct Par<O: Ops> {
    ops: O,
    source: O::Source,
    min_len: usize,
}

/// Marker trait so `use rayon::prelude::*` keeps working and generic
/// code can name "a parallel iterator". All adapter and consumer
/// methods are inherent on [`Par`].
pub trait ParallelIterator: Sized + Send {
    type Item: Send;
}

impl<O: Ops> ParallelIterator for Par<O> {
    type Item = O::Item;
}

impl<O: Ops> Par<O> {
    pub(crate) fn new(ops: O, source: O::Source) -> Self {
        Self {
            ops,
            source,
            min_len: 1,
        }
    }

    /// Parallel `map`.
    pub fn map<R, F>(self, f: F) -> Par<MapOps<O, F>>
    where
        R: Send,
        F: Fn(O::Item) -> R + Send + Sync,
    {
        let Par {
            ops,
            source,
            min_len,
        } = self;
        Par {
            ops: MapOps { inner: ops, f },
            source,
            min_len,
        }
    }

    /// Parallel `filter_map`.
    pub fn filter_map<R, F>(self, f: F) -> Par<FilterMapOps<O, F>>
    where
        R: Send,
        F: Fn(O::Item) -> Option<R> + Send + Sync,
    {
        let Par {
            ops,
            source,
            min_len,
        } = self;
        Par {
            ops: FilterMapOps { inner: ops, f },
            source,
            min_len,
        }
    }

    /// `map` with per-**worker** scratch state, matching real rayon:
    /// `init` runs once per worker thread and the state threads through
    /// every item that worker processes. Results must therefore not
    /// depend on the state's history — use it for reusable scratch
    /// buffers, not for accumulation.
    pub fn map_init<INIT, T, F, R>(self, init: INIT, f: F) -> Par<MapInitOps<O, INIT, F>>
    where
        O: Ops<State = ()>,
        INIT: Fn() -> T + Send + Sync,
        F: Fn(&mut T, O::Item) -> R + Send + Sync,
        R: Send,
    {
        let Par {
            ops,
            source,
            min_len,
        } = self;
        Par {
            ops: MapInitOps {
                inner: ops,
                init,
                f,
            },
            source,
            min_len,
        }
    }

    /// Pairs every item with its index in the source. Only valid while
    /// the stack below is 1:1 with source indices (i.e. not after
    /// `filter_map`), like real rayon's indexed-iterator requirement.
    pub fn enumerate(self) -> Par<EnumerateOps<O>> {
        // Hard assert (real rayon rejects this at compile time): in a
        // release build a debug_assert would silently hand out dense
        // per-chunk indices that are wrong and can collide.
        assert!(
            O::INDEXED,
            "enumerate() after a length-changing adapter is not supported"
        );
        let Par {
            ops,
            source,
            min_len,
        } = self;
        Par {
            ops: EnumerateOps { inner: ops },
            source,
            min_len,
        }
    }

    /// Lower bound on items per chunk (limits splitting overhead for
    /// very cheap per-item work).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min.max(1));
        self
    }

    /// Splits the source and runs `consume` once per chunk on the
    /// executor, returning per-chunk results in chunk order.
    ///
    /// Chunk boundaries depend only on the source length and `min_len` —
    /// **never on the pool width** — so per-chunk reductions (including
    /// floating-point sums) combine identically at every thread count;
    /// the width only decides how many workers claim the chunks. The
    /// source is split back-to-front, so owned sources (`Vec`) move each
    /// element at most once instead of copying the tail per split.
    fn drive<T, FC>(self, consume: FC) -> Vec<T>
    where
        T: Send,
        FC: Fn(&O, &mut O::State, usize, O::Source) -> T + Sync,
    {
        let Par {
            ops,
            source,
            min_len,
        } = self;
        let len = source.len();
        let max_chunks = len / min_len.max(1);
        let n_chunks = pool::TARGET_CHUNKS.min(max_chunks).max(1);
        if n_chunks <= 1 {
            let mut state = ops.new_state();
            return vec![consume(&ops, &mut state, 0, source)];
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut rest = source;
        for i in (1..n_chunks).rev() {
            // Balanced partition: chunk `i` starts at ⌊i·len/n⌋.
            let at = i * len / n_chunks;
            let (head, tail) = rest.split_at(at);
            chunks.push((at, tail));
            rest = head;
        }
        chunks.push((0, rest));
        chunks.reverse();
        let width = pool::current_num_threads().min(n_chunks);
        if width <= 1 {
            // Same chunk boundaries, processed in order on this thread:
            // bit-identical to the parallel path by construction.
            let mut state = ops.new_state();
            return chunks
                .into_iter()
                .map(|(base, src)| consume(&ops, &mut state, base, src))
                .collect();
        }
        pool::run_ordered(chunks, width, &|| ops.new_state(), &|state, b, src| {
            consume(&ops, state, b, src)
        })
    }

    /// Runs `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(O::Item) + Send + Sync,
    {
        self.drive(|ops, state, base, src| ops.process(base, src, state, &mut |item| f(item)));
    }

    /// Collects all items **in source order** (per-chunk buffers are
    /// concatenated in chunk order, so the result is identical to the
    /// sequential iterator's).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<O::Item>,
    {
        let parts: Vec<Vec<O::Item>> = self.drive(|ops, state, base, src| {
            let mut out = Vec::new();
            ops.process(base, src, state, &mut |item| out.push(item));
            out
        });
        parts.into_iter().flatten().collect()
    }

    /// Sums all items (each chunk folds its items locally, left to
    /// right; chunk sums are added in chunk order — boundaries are
    /// width-independent, so the reduction tree is too).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<O::Item> + std::iter::Sum<S>,
    {
        let parts: Vec<S> = self.drive(|ops, state, base, src| {
            let mut acc: Option<S> = None;
            ops.process(base, src, state, &mut |item| {
                let item_s: S = std::iter::once(item).sum();
                acc = Some(match acc.take() {
                    None => item_s,
                    Some(prev) => [prev, item_s].into_iter().sum(),
                });
            });
            acc.unwrap_or_else(|| std::iter::empty::<O::Item>().sum())
        });
        parts.into_iter().sum()
    }

    /// Counts the items produced by the stack.
    pub fn count(self) -> usize {
        let parts: Vec<usize> = self.drive(|ops, state, base, src| {
            let mut n = 0usize;
            ops.process(base, src, state, &mut |_| n += 1);
            n
        });
        parts.into_iter().sum()
    }
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

macro_rules! int_range_source {
    ($($t:ty),* $(,)?) => {$(
        impl Source for std::ops::Range<$t> {
            type Item = $t;
            type Iter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                if self.end > self.start {
                    // Widen before subtracting: a signed range can be
                    // longer than its type's positive max (e.g.
                    // i8::MIN..i8::MAX), where `end - start` overflows.
                    (self.end as i128 - self.start as i128) as usize
                } else {
                    0
                }
            }

            fn split_at(self, at: usize) -> (Self, Self) {
                let mid = (self.start as i128 + at as i128) as $t;
                (self.start..mid, mid..self.end)
            }

            fn into_seq(self) -> Self::Iter {
                self
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = Par<IdentOps<std::ops::Range<$t>>>;

            fn into_par_iter(self) -> Self::Iter {
                Par::new(IdentOps::new(), self)
            }
        }
    )*};
}

int_range_source!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Send> Source for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn split_at(mut self, at: usize) -> (Self, Self) {
        let tail = self.split_off(at);
        (self, tail)
    }

    fn into_seq(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Shared-slice source (`par_iter`).
pub struct SliceSource<'a, T>(pub(crate) &'a [T]);

impl<'a, T: Sync> Source for SliceSource<'a, T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (head, tail) = self.0.split_at(at);
        (SliceSource(head), SliceSource(tail))
    }

    fn into_seq(self) -> Self::Iter {
        self.0.iter()
    }
}

/// Exclusive-slice source (`par_iter_mut`).
pub struct SliceMutSource<'a, T>(pub(crate) &'a mut [T]);

impl<'a, T: Send> Source for SliceMutSource<'a, T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (head, tail) = self.0.split_at_mut(at);
        (SliceMutSource(head), SliceMutSource(tail))
    }

    fn into_seq(self) -> Self::Iter {
        self.0.iter_mut()
    }
}

// ---------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------

/// Consuming conversion: `.into_par_iter()` on owned collections and
/// ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = Par<IdentOps<Vec<T>>>;

    fn into_par_iter(self) -> Self::Iter {
        Par::new(IdentOps::new(), self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = Par<IdentOps<SliceSource<'a, T>>>;

    fn into_par_iter(self) -> Self::Iter {
        self.par_iter()
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = Par<IdentOps<SliceSource<'a, T>>>;

    fn into_par_iter(self) -> Self::Iter {
        self.par_iter()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = Par<IdentOps<SliceMutSource<'a, T>>>;

    fn into_par_iter(self) -> Self::Iter {
        self.par_iter_mut()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = Par<IdentOps<SliceMutSource<'a, T>>>;

    fn into_par_iter(self) -> Self::Iter {
        self.par_iter_mut()
    }
}

/// Borrowing conversion: `.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    type Iter;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = Par<IdentOps<SliceSource<'data, T>>>;

    fn par_iter(&'data self) -> Self::Iter {
        Par::new(IdentOps::new(), SliceSource(self))
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = Par<IdentOps<SliceSource<'data, T>>>;

    fn par_iter(&'data self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

/// Mutably borrowing conversion: `.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send + 'data;
    type Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = Par<IdentOps<SliceMutSource<'data, T>>>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        Par::new(IdentOps::new(), SliceMutSource(self))
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = Par<IdentOps<SliceMutSource<'data, T>>>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.as_mut_slice().par_iter_mut()
    }
}
