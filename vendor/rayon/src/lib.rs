//! Minimal stand-in for the `rayon` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so `par_iter`-family calls
//! resolve to the corresponding **sequential** std iterators — same results,
//! no data parallelism. Because the shim hands back plain std iterators, the
//! full `Iterator` adapter vocabulary (`map`, `enumerate`, `sum`, `collect`,
//! `for_each`, …) is available exactly as under real rayon. Swap the
//! `[workspace.dependencies]` path entry for the real crate to get actual
//! multicore execution; call sites need no changes.

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads rayon would use (here: the machine's
/// parallelism, for code that sizes batches off it).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs two closures "in parallel" (sequentially here) and returns both.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod iter {
    /// Rayon-specific adapters that std's `Iterator` lacks. Blanket-implemented
    /// for every iterator so chains coming out of `par_iter()` and friends
    /// accept them.
    pub trait ParallelIterator: Iterator + Sized {
        /// `map` with per-worker scratch state. Sequentially there is exactly
        /// one worker, so `init` runs once and the state threads through every
        /// item.
        fn map_init<INIT, T, F, R>(self, mut init: INIT, f: F) -> MapInit<Self, T, F>
        where
            INIT: FnMut() -> T,
            F: FnMut(&mut T, Self::Item) -> R,
        {
            MapInit {
                iter: self,
                state: init(),
                f,
            }
        }

        /// Minimum items per work unit — a no-op without work splitting.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIterator for I {}

    pub struct MapInit<I, T, F> {
        iter: I,
        state: T,
        f: F,
    }

    impl<I, T, F, R> Iterator for MapInit<I, T, F>
    where
        I: Iterator,
        F: FnMut(&mut T, I::Item) -> R,
    {
        type Item = R;

        fn next(&mut self) -> Option<R> {
            let item = self.iter.next()?;
            Some((self.f)(&mut self.state, item))
        }
    }

    /// Consuming conversion: `.into_par_iter()` on owned collections and
    /// ranges.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowing conversion: `.par_iter()`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Item = <&'data I as IntoIterator>::Item;
        type Iter = <&'data I as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Mutably borrowing conversion: `.par_iter_mut()`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Item = <&'data mut I as IntoIterator>::Item;
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

pub mod slice {
    /// Chunked shared access: `.par_chunks()`.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Chunked exclusive access: `.par_chunks_mut()`.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_compose_like_rayon() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let total: i32 = (0..5i32).into_par_iter().sum();
        assert_eq!(total, 10);
        let mut buf = [0u32; 6];
        buf.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);
    }
}
