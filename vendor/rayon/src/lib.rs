//! Offline stand-in for the `rayon` API surface this workspace uses,
//! with **real data parallelism**.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of rayon the workspace calls — but unlike the original
//! sequential shim, `par_iter`-family calls now execute on a pool of
//! worker threads built on [`std::thread::scope`]:
//!
//! - **Pool size** comes from the `RPQ_THREADS` environment variable
//!   (positive integer) or [`std::thread::available_parallelism`];
//!   [`with_num_threads`] pins it per-thread for a scope (used by the
//!   determinism tests to compare widths in one process).
//! - **Work splitting** is chunked: the source splits into contiguous
//!   chunks claimed through an atomic counter, so uneven chunks
//!   rebalance across workers. Chunk boundaries depend only on the
//!   input length (and `with_min_len`), **never on the pool width**.
//! - **Determinism**: `collect` concatenates per-chunk buffers in chunk
//!   order and `sum` adds chunk sums in chunk order over those
//!   width-independent boundaries, so results — including
//!   floating-point reductions — are bit-identical at every thread
//!   count (given the usual rayon contract that closures are pure per
//!   item — seeded RNG use must be per-item, never per-worker).
//! - **`map_init`** builds one state per worker thread and threads it
//!   through every item that worker processes, matching real rayon.
//! - **Panics** in worker closures propagate to the caller after all
//!   workers have been joined, and [`join`] runs its two closures on
//!   two threads with the same propagation rule.
//! - **Nested parallelism** runs sequentially (a worker never spawns a
//!   second tier of workers), which bounds the thread count of any call
//!   tree at the configured pool size.
//!
//! Swap the `[workspace.dependencies]` path entry for the real crate to
//! upgrade; `par_iter`-family call sites need no changes (the bounds
//! here — `Send + Sync` closures, `Send` items — are the ones real
//! rayon demands). Two functions are **shim extensions** with no real
//! rayon equivalent and their callers do need porting: [`with_num_threads`]
//! (→ a scoped `ThreadPoolBuilder` pool) and [`execution_width`]
//! (→ `current_num_threads().min(len).max(1)`, slightly pessimistic
//! because real rayon's splitting is adaptive).

pub mod iter;
mod pool;
pub mod slice;

pub use pool::{current_num_threads, execution_width, with_num_threads};

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Runs two closures, potentially in parallel, and returns both results.
///
/// `b` runs on the calling thread while `a` runs on a scoped thread
/// (when the pool width allows; sequentially otherwise). A panic in
/// either closure propagates to the caller after both have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if pool::in_worker() || pool::current_num_threads() < 2 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(|| {
            pool::enter_worker();
            a()
        });
        // The caller side counts as a worker too while `b` runs, so
        // parallel calls nested inside either closure stay sequential
        // and the whole `join` is bounded at two threads.
        let rb = pool::as_worker(b);
        let ra = match ha.join() {
            Ok(ra) => ra,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn adapters_compose_like_rayon() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let total: i32 = (0..5i32).into_par_iter().sum();
        assert_eq!(total, 10);
        let mut buf = [0u32; 6];
        buf.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let expect: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        for threads in [1, 2, 4, 7] {
            let got: Vec<usize> = with_num_threads(threads, || {
                (0..1000usize).into_par_iter().map(|i| i * 3).collect()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // Chunk boundaries depend only on the input length, so even a
        // non-associative f32 reduction combines identically at every
        // pool width.
        let reference: u32 = with_num_threads(1, || {
            (0..10_000u32)
                .into_par_iter()
                .map(|i| (i as f32).sqrt() * 0.1)
                .sum::<f32>()
                .to_bits()
        });
        for threads in [2, 4, 7] {
            let got: u32 = with_num_threads(threads, || {
                (0..10_000u32)
                    .into_par_iter()
                    .map(|i| (i as f32).sqrt() * 0.1)
                    .sum::<f32>()
                    .to_bits()
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn filter_map_preserves_order() {
        let got: Vec<usize> = with_num_threads(4, || {
            (0..100usize)
                .into_par_iter()
                .filter_map(|i| (i % 3 == 0).then_some(i))
                .collect()
        });
        let expect: Vec<usize> = (0..100).filter(|i| i % 3 == 0).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn par_iter_mut_writes_every_slot() {
        let mut v = vec![0usize; 257];
        with_num_threads(4, || {
            v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i);
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn truly_concurrent_execution() {
        // Item 0 blocks until item 1 signals: a sequential executor
        // deadlocks (the recv times out), a real pool interleaves.
        let (tx, rx) = mpsc::channel::<()>();
        let rx = std::sync::Mutex::new(rx);
        with_num_threads(2, || {
            (0..2usize).into_par_iter().with_min_len(1).for_each(|i| {
                if i == 0 {
                    let ok = rx
                        .lock()
                        .unwrap()
                        .recv_timeout(Duration::from_secs(30))
                        .is_ok();
                    assert!(ok, "sequential execution detected: item 1 never ran");
                } else {
                    tx.send(()).unwrap();
                }
            });
        });
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let n_items = 512usize;
        let sum: usize = with_num_threads(3, || {
            (0..n_items)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::SeqCst);
                        0usize
                    },
                    |scratch, i| {
                        *scratch += 1; // scratch survives across items
                        i
                    },
                )
                .sum()
        });
        assert_eq!(sum, n_items * (n_items - 1) / 2);
        let states = inits.load(Ordering::SeqCst);
        assert!(
            (1..=3).contains(&states),
            "expected 1..=3 worker states, got {states}"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 33 {
                        panic!("worker exploded");
                    }
                });
            })
        });
        assert!(caught.is_err(), "panic must reach the caller");
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = with_num_threads(2, || join(|| 21 * 2, || "ok"));
        assert_eq!((a, b), (42, "ok"));
        let caught =
            std::panic::catch_unwind(|| with_num_threads(2, || join(|| panic!("left side"), || 1)));
        assert!(caught.is_err());
    }

    #[test]
    fn join_bounds_nesting_on_both_sides() {
        // Parallel calls nested in either closure see width 1, so a
        // `join` call tree never exceeds two threads.
        let (wa, wb) = with_num_threads(4, || join(current_num_threads, current_num_threads));
        assert_eq!((wa, wb), (1, 1));
        // The caller's own width is restored after the join.
        let after = with_num_threads(4, || {
            let _ = join(|| (), || ());
            current_num_threads()
        });
        assert_eq!(after, 4);
    }

    #[test]
    fn signed_ranges_longer_than_type_max() {
        // i8::MIN..i8::MAX is 255 items: `end - start` overflows i8, so
        // the source must widen before subtracting.
        let got: Vec<i8> = with_num_threads(4, || (i8::MIN..i8::MAX).into_par_iter().collect());
        let expect: Vec<i8> = (i8::MIN..i8::MAX).collect();
        assert_eq!(got, expect);
        let sum: i64 =
            with_num_threads(4, || (-100i64..100i64).into_par_iter().map(|i| i * 2).sum());
        assert_eq!(sum, -200);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = with_num_threads(4, || (0..0u32).into_par_iter().collect());
        assert!(empty.is_empty());
        let one: Vec<u32> = with_num_threads(4, || (5..6u32).into_par_iter().collect());
        assert_eq!(one, vec![5]);
        let zero_sum: usize = with_num_threads(4, || Vec::<usize>::new().into_par_iter().sum());
        assert_eq!(zero_sum, 0);
    }

    #[test]
    fn with_min_len_bounds_splitting() {
        // 10 items, min chunk 10 => a single chunk even at width 4.
        let got: Vec<usize> = with_num_threads(4, || {
            (0..10usize).into_par_iter().with_min_len(10).collect()
        });
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_shared_reads() {
        let data: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = with_num_threads(4, || {
            data.par_chunks(10).map(|c| c.iter().sum::<u32>()).collect()
        });
        let expect: Vec<u32> = data.chunks(10).map(|c| c.iter().sum::<u32>()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn nested_parallelism_stays_bounded() {
        // A par call inside a worker runs sequentially (width 1) instead
        // of spawning another tier of threads.
        let widths: Vec<usize> = with_num_threads(4, || {
            (0..8usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(widths.iter().all(|&w| w == 1), "{widths:?}");
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = with_num_threads(4, || v.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lens.len(), 50);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[42], 2);
    }
}
