//! Minimal stand-in for the `criterion` surface this workspace uses.
//!
//! Benchmarks compile and run, printing a coarse mean wall-clock time per
//! iteration — no statistical analysis, outlier rejection, or HTML reports.
//! The build environment has no crates.io access; swap the
//! `[workspace.dependencies]` path entry for the real crate to upgrade.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint (ignored by the shim beyond API compatibility).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run single iterations until the budget elapses at least
        // once, to get a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm = Bencher::new(1);
        f(&mut warm);
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut warm);
        }
        let per_iter = warm.elapsed.as_secs_f64() / warm.done.max(1) as f64;

        // Measurement: split the time budget across samples.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut measured = Bencher::new(iters_per_sample);
        let mut samples = 0u64;
        let start = Instant::now();
        for _ in 0..self.sample_size {
            f(&mut measured);
            samples += 1;
            if start.elapsed() > self.measurement_time * 2 {
                break; // keep slow benches bounded
            }
        }

        let total = measured.done.max(1);
        let mean = measured.elapsed.as_secs_f64() / total as f64;
        println!(
            "{id:<40} {:>12}/iter  ({samples} samples, {total} iters)",
            format_time(mean)
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Per-function measurement handle.
pub struct Bencher {
    /// Iterations each `iter`/`iter_batched` call should execute.
    iters: u64,
    /// Iterations executed so far across calls.
    done: u64,
    /// Measured time accumulated across calls.
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            done: 0,
            elapsed: Duration::ZERO,
        }
    }

    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.done += self.iters;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.done += self.iters;
    }
}

/// Defines a benchmark group as a function that runs its targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_routines() {
        let mut ran = 0u64;
        quick().bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        quick().bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
