//! Minimal stand-in for the `serde_json` surface this workspace uses:
//! `to_string` / `to_string_pretty` over the shim `Serialize` trait, a
//! strict-enough recursive-descent parser behind `from_str`, and the
//! `Value` tree (re-exported from the `serde` shim). No crates.io access in
//! the build environment; swap the `[workspace.dependencies]` path entries
//! for the real crates to upgrade.

pub use serde::Value;

use serde::Serialize;

/// Parse or serialisation failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            indent,
            depth,
            out,
            ('[', ']'),
            |item, d, o| write_value(item, indent, d, o),
        ),
        Value::Object(fields) => write_seq(
            fields.iter(),
            indent,
            depth,
            out,
            ('{', '}'),
            |(k, val), d, o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, d, o);
            },
        ),
    }
}

fn write_seq<I, T>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    brackets: (char, char),
    mut write_item: impl FnMut(T, usize, &mut String),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(brackets.1);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // serde_json behaviour for NaN/inf
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("eof in escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("eof in \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| Error(format!("invalid number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"id": "x", "rows": [["1", "2"]], "n": 3, "f": 0.25, "b": true, "z": null}"#;
        let v = from_str(src).unwrap();
        assert_eq!(v["id"], "x");
        assert_eq!(v["n"], 3.0);
        assert_eq!(v["rows"][0][1], "2");
        let back = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(from_str("{\"a\": [1, 2").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd".into());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }
}
