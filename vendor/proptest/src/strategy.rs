//! The `Strategy` trait and the combinators this workspace uses: ranges,
//! tuples, `Just`, `prop_map`, `prop_flat_map`.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values. The shim samples uniformly; there is no shrink
/// tree.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}
