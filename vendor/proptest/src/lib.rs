//! Minimal stand-in for the `proptest` surface this workspace uses.
//!
//! Each `proptest!` test samples its strategies `cases` times from a
//! deterministic per-test RNG and runs the body; `prop_assert!` maps to
//! `assert!`. Unlike real proptest there is **no shrinking** and no failure
//! persistence — a failing case panics with the assertion message only.
//! The build environment has no crates.io access; swap the
//! `[workspace.dependencies]` path entry for the real crate to upgrade.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::{rngs::SmallRng, SeedableRng};

    /// Deterministic per-test seed: stable across runs, distinct per test.
    pub fn test_rng(test_name: &str) -> SmallRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test]` functions whose arguments are `pattern in strategy`
/// bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::__rt::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — like `assert!` (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!` — like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_combinators_sample_in_bounds() {
        let mut rng = crate::__rt::test_rng("self-test");
        for _ in 0..200 {
            let v = (1usize..5).sample(&mut rng);
            assert!((1..5).contains(&v));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let (a, b) = ((0u32..3), (10u32..13)).sample(&mut rng);
            assert!(a < 3 && (10..13).contains(&b));
            let doubled = (0i32..4).prop_map(|x| x * 2).sample(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 8);
            let nested = (1usize..4)
                .prop_flat_map(|n| crate::collection::vec(0u32..9, n))
                .sample(&mut rng);
            assert!(!nested.is_empty() && nested.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expands_and_runs(x in 0u32..50, (lo, hi) in (0u32..10, 10u32..20)) {
            prop_assert!(x < 50);
            prop_assert!(lo < hi);
        }
    }
}
