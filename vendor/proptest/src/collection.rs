//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Lengths acceptable to [`vec()`]: an exact size or a size range.
pub trait IntoSizeRange {
    /// Half-open `[min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "empty size range for proptest::collection::vec");
    VecStrategy { element, min, max }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let len = if self.min + 1 == self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
