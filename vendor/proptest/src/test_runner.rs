//! Test-runner configuration.

/// Subset of proptest's config: the number of sampled cases per test.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}
