//! Minimal stand-in for the `serde` serialization surface this workspace
//! uses: the `Serialize` trait (here a direct conversion to a JSON value
//! tree) plus `#[derive(Serialize)]` via the sibling `serde_derive` shim.
//! The build environment has no crates.io access; swap the
//! `[workspace.dependencies]` path entries for the real crates to upgrade.

pub use serde_derive::Serialize;

/// A JSON value tree. `serde_json` re-exports this as `serde_json::Value`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered, matching struct field declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup; returns `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`, yielding `Null` for anything missing (as serde_json
    /// does).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n == other)
    }
}

/// Conversion to a JSON value tree. The derive macro generates this for
/// structs (field-order objects) and fieldless enums (variant-name strings).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Serialize for f32 {
    // Round-trip through the shortest decimal so `0.1f32` serialises as
    // "0.1", not the nearest-f64 expansion of the f32 bit pattern.
    fn to_value(&self) -> Value {
        Value::Number(self.to_string().parse().unwrap_or(f64::from(*self)))
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("x".into())),
            ("n".into(), Value::Number(2.0)),
        ]);
        assert_eq!(v["id"], "x");
        assert_eq!(v["n"], 2.0);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn f32_serialises_shortest() {
        assert_eq!(0.1f32.to_value(), Value::Number(0.1));
    }
}
