//! Minimal stand-in for the `rand` 0.8 API surface this workspace uses:
//! `SeedableRng::seed_from_u64`, `Rng::gen`/`gen_range`/`gen_bool`, and
//! `rngs::SmallRng` (xoshiro256++). The build environment has no crates.io
//! access; swap the `[workspace.dependencies]` path entry for the real crate
//! to upgrade. Streams differ from upstream `rand`, but every consumer in
//! this workspace only relies on determinism for a fixed seed, which holds.

pub mod rngs;

pub use rngs::SmallRng;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material via SplitMix64 (the same
    /// expansion upstream `rand` documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
    {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as distributions::Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::RngCore;

    /// Types samplable uniformly from their "standard" domain
    /// (`[0, 1)` for floats, full range for integers).
    pub trait Standard: Sized {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 mantissa bits of a u64 give a uniform double in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Ranges that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (self.start as i128 + offset as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty gen_range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let offset = (rng.next_u64() as u128) % span;
                        (lo as i128 + offset as i128) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let unit =
                            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        self.start + (unit as $t) * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty gen_range");
                        let unit =
                            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        lo + (unit as $t) * (hi - lo)
                    }
                }
            )*};
        }
        impl_float_range!(f32, f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
