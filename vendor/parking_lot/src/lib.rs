//! Minimal, std-backed stand-in for the `parking_lot` API surface this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace vendors just-enough shims; swap the `[workspace.dependencies]`
//! path entries for the real crates to upgrade.
//!
//! Semantics: poisoning is ignored (a poisoned std lock is recovered), which
//! matches `parking_lot`'s no-poisoning behaviour closely enough for the
//! data-parallel construction code here.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free `read()`/`write()`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
