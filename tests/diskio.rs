//! Cross-crate contracts of the pipelined disk engine (DESIGN.md §10):
//! width-1 bit-equality against the serial oracle for every estimator
//! family (PQ, OPQ, and the 4-bit FastScan mode), the recall envelope at
//! wide `io_width`, and trace-driven cache admission beating the BFS
//! warm-up on a skewed workload.

use std::path::PathBuf;
use std::sync::Arc;

use rpq_anns::{DiskIndex, DiskIndexConfig, SsdModel};
use rpq_bench::setup::{make_bench, Bench, Method};
use rpq_bench::Scale;
use rpq_data::synth::DatasetKind;
use rpq_data::Dataset;
use rpq_graph::{DistanceEstimator, ProximityGraph, VamanaConfig};
use rpq_quant::{
    CompactCodes, Packed4AdcEstimator, PackedCodes4, PqConfig, ProductQuantizer, QuantizedLut,
    SoaCodes, VectorCompressor,
};

fn tmp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rpq-it-diskio-{}-{tag}.store", std::process::id()))
}

fn prepare(n_base: usize, n_query: usize, seed: u64) -> (Bench, ProximityGraph) {
    let bench = make_bench(DatasetKind::Sift, n_base, n_query, 10, seed);
    let graph = VamanaConfig {
        r: 24,
        l: 48,
        ..Default::default()
    }
    .build(&bench.base);
    (bench, graph)
}

/// A PQ compressor that routes **only** through the 4-bit FastScan path:
/// it owns the packed nibble codes and both estimator entry points return
/// [`Packed4AdcEstimator`] over them, ignoring the engine-provided code
/// stores. `DiskIndex` has no native 4-bit layout, so this wrapper is how
/// the quantized-LUT estimator is driven through the disk engines — the
/// scalar (serial oracle) and batched (pipelined) paths must still agree
/// bit-for-bit.
struct Packed4Pq {
    pq: ProductQuantizer,
    packed: PackedCodes4,
}

impl Packed4Pq {
    fn train(data: &Dataset, m: usize, seed: u64) -> Self {
        let pq = ProductQuantizer::train(
            &PqConfig {
                m,
                k: 16, // nibble codes: K must fit in 4 bits
                seed,
                ..Default::default()
            },
            data,
        );
        let packed = PackedCodes4::from_compact(&pq.encode_dataset(data));
        Self { pq, packed }
    }

    fn estimator_4bit<'a>(&'a self, query: &[f32]) -> Packed4AdcEstimator<'a> {
        Packed4AdcEstimator::new(
            QuantizedLut::new(&self.pq.lookup_table(query)),
            &self.packed,
        )
    }
}

impl VectorCompressor for Packed4Pq {
    fn name(&self) -> String {
        "PQ-4bit".to_string()
    }
    fn dim(&self) -> usize {
        self.pq.dim()
    }
    fn code_dim(&self) -> usize {
        self.pq.code_dim()
    }
    fn model_bytes(&self) -> usize {
        self.pq.model_bytes() + self.packed.memory_bytes()
    }
    fn train_seconds(&self) -> f32 {
        self.pq.train_seconds()
    }
    fn encode_dataset(&self, data: &Dataset) -> CompactCodes {
        self.pq.encode_dataset(data)
    }
    fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        self.pq.decode_into(code, out)
    }
    fn estimator<'a>(
        &'a self,
        _codes: &'a CompactCodes,
        query: &'a [f32],
    ) -> Box<dyn DistanceEstimator + 'a> {
        Box::new(self.estimator_4bit(query))
    }
    fn batch_estimator<'a>(
        &'a self,
        _codes: &'a SoaCodes,
        query: &'a [f32],
    ) -> Option<Box<dyn DistanceEstimator + 'a>> {
        Some(Box::new(self.estimator_4bit(query)))
    }
}

/// Runs every query through both engines at `io_width = 1` and demands
/// bit-identical results and identical routing work.
fn assert_width1_matches_serial<C: VectorCompressor>(
    index: &DiskIndex<C>,
    bench: &Bench,
    ef: usize,
) {
    for (qi, q) in bench.queries.iter().enumerate() {
        let (serial, s_stats) = index.search_serial(q, ef, 10);
        let (piped, p_stats) = index.search(q, ef, 10);
        assert_eq!(serial.len(), piped.len(), "query {qi}: result count");
        for (a, b) in serial.iter().zip(piped.iter()) {
            assert_eq!(a.id, b.id, "query {qi}: ids diverge");
            assert_eq!(
                a.dist.to_bits(),
                b.dist.to_bits(),
                "query {qi}: distance bits diverge"
            );
        }
        assert_eq!(s_stats.hops, p_stats.hops, "query {qi}: hops");
        assert_eq!(s_stats.io_reads, p_stats.io_reads, "query {qi}: io reads");
        assert_eq!(
            s_stats.dist_comps, p_stats.dist_comps,
            "query {qi}: distance computations"
        );
    }
}

/// Width-1 bit-equality must hold for every estimator family the engine
/// can route with — the exact f32 ADC paths (PQ, OPQ) and the 4-bit
/// quantized-LUT path, whose scalar/batched kernels are integer-exact.
#[test]
fn width1_is_bit_identical_for_pq_opq_and_4bit_estimators() {
    let scale = Scale::ci();
    let (bench, graph) = prepare(700, 12, 31);
    let arc = Arc::new(graph);

    let compressors: Vec<(&str, Box<dyn VectorCompressor>)> = vec![
        ("pq", Method::Pq.build(&bench.base, &arc, &scale)),
        ("opq", Method::Opq.build(&bench.base, &arc, &scale)),
        ("pq4", Box::new(Packed4Pq::train(&bench.base, scale.m, 31))),
    ];
    for (tag, c) in compressors {
        let index = DiskIndex::build(
            c,
            &bench.base,
            &arc,
            DiskIndexConfig::new(tmp_store(&format!("bitexact-{tag}"))),
        )
        .expect("disk index build failed");
        for ef in [10, 40] {
            assert_width1_matches_serial(&index, &bench, ef);
        }
    }
}

/// Wider frontiers read speculatively but may only *grow* the explored
/// region: recall at `io_width ∈ {4, 8}` stays within 0.02 of the serial
/// engine at the same ef.
#[test]
fn wide_io_widths_stay_inside_the_recall_envelope() {
    let scale = Scale::ci();
    let (bench, graph) = prepare(700, 20, 32);
    let arc = Arc::new(graph);
    let mut index = DiskIndex::build(
        Method::Pq.build(&bench.base, &arc, &scale),
        &bench.base,
        &arc,
        DiskIndexConfig::new(tmp_store("envelope")),
    )
    .expect("disk index build failed");

    let recall_at = |index: &DiskIndex<_>, ef: usize| {
        let ids: Vec<Vec<u32>> = bench
            .queries
            .iter()
            .map(|q| index.search(q, ef, 10).0.iter().map(|n| n.id).collect())
            .collect();
        bench.gt.recall(&ids)
    };

    for ef in [10, 30] {
        let serial = recall_at(&index, ef);
        for width in [4, 8] {
            index.set_io_policy(width, SsdModel::nvme());
            let wide = recall_at(&index, ef);
            index.set_io_policy(1, SsdModel::fixed(100.0));
            assert!(
                wide >= serial - 0.02,
                "ef {ef} width {width}: recall {wide} fell more than 0.02 below serial {serial}"
            );
        }
    }
}

/// A deterministic LCG-driven Zipf(s≈1.1) sampler over `0..n`.
struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    fn new(n: usize, seed: u64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(1.1);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Self { cdf, state: seed }
    }

    fn next(&mut self) -> usize {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    fn draw(&mut self, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.next()).collect()
    }
}

/// Frequency-based (trace-driven) cache admission must serve a skewed
/// workload at least as well as the BFS-from-entry warm-up: the BFS cache
/// pins the entry region regardless of traffic, while the trace cache pins
/// exactly the blocks the hot queries touch.
#[test]
fn trace_admission_beats_bfs_warmup_on_a_zipf_workload() {
    let scale = Scale::ci();
    let (bench, graph) = prepare(900, 5, 33);
    let arc = Arc::new(graph);
    let mut index = DiskIndex::build(
        Method::Pq.build(&bench.base, &arc, &scale),
        &bench.base,
        &arc,
        DiskIndexConfig {
            cache_nodes: 120,
            ..DiskIndexConfig::new(tmp_store("zipf"))
        },
    )
    .expect("disk index build failed");

    // Warm-up and evaluation traffic drawn from one Zipf stream: same
    // skew, disjoint draws (continuing the stream), so trace admission is
    // predictive, not self-fulfilling.
    let mut zipf = Zipf::new(bench.base.len(), 7);
    let warm = bench.base.subset(&zipf.draw(60));
    let eval = bench.base.subset(&zipf.draw(40));

    let hit_rate = |index: &DiskIndex<_>| {
        let (mut hits, mut misses) = (0usize, 0usize);
        for q in eval.iter() {
            let (_, stats) = index.search(q, 30, 10);
            hits += stats.cache_hits;
            misses += stats.cache_misses;
        }
        hits as f64 / (hits + misses).max(1) as f64
    };

    let bfs_rate = hit_rate(&index); // cache as built: BFS from the entry
    let pinned = index.warm_cache_by_trace(&warm, 30);
    assert!(pinned > 0, "trace warm-up pinned nothing");
    let trace_rate = hit_rate(&index);

    assert!(
        trace_rate >= bfs_rate,
        "trace admission ({trace_rate:.3}) lost to BFS warm-up ({bfs_rate:.3})"
    );
    assert!(
        trace_rate > 0.0,
        "a skewed workload over a warmed cache must hit"
    );
}
