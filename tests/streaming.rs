//! Integration tests for the streaming mutable index (DESIGN.md §8).
//!
//! The load-bearing test is the sequential baseline: after a scripted wave
//! of interleaved inserts and deletes plus a consolidation pass, the
//! streamed index's recall on seeded CI data must stay within a pinned
//! floor of a from-scratch rebuild over the same surviving points — churn
//! may cost a little graph quality, but never an epoch's worth.

use rpq_anns::stream::{StreamingConfig, StreamingIndex};
use rpq_bench::Scale;
use rpq_data::synth::DatasetKind;
use rpq_data::{brute_force_knn, Dataset, GroundTruth};
use rpq_graph::SearchScratch;
use rpq_quant::{PqConfig, ProductQuantizer, VectorCompressor};

/// recall@10 of `index` against ground truth whose ids are the index's own
/// local ids (both sides built over the same dataset in the same order).
fn recall_at_10<C: VectorCompressor>(
    index: &StreamingIndex<C>,
    queries: &Dataset,
    gt: &GroundTruth,
    ef: usize,
) -> f32 {
    let mut scratch = SearchScratch::new();
    let mut hits = 0usize;
    let mut total = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let (top, _) = index.search(q, ef, 10, &mut scratch);
        let got: Vec<u32> = top.iter().map(|n| n.id).collect();
        let want = &gt.neighbors[qi];
        total += want.len();
        hits += want.iter().filter(|id| got.contains(id)).count();
    }
    hits as f32 / total.max(1) as f32
}

#[test]
fn churned_index_tracks_from_scratch_rebuild() {
    let s = Scale::ci();
    let (base, queries) = DatasetKind::Sift.generate(s.n_base, 25, s.seed);
    let initial = 800;
    let pool = base.len() - initial;
    let (seed_set, _) = base.split_at(initial);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 32,
            seed: s.seed,
            ..Default::default()
        },
        &seed_set,
    );
    let cfg = StreamingConfig {
        seed: s.seed,
        ..Default::default()
    };

    // Scripted churn: stream in the whole reserve, tombstoning a
    // deterministic spread of earlier points along the way.
    let mut index = StreamingIndex::build(pq.clone(), &seed_set, cfg);
    let mut scratch = SearchScratch::new();
    let mut source: Vec<usize> = (0..initial).collect();
    for i in 0..pool {
        index.insert(base.get(initial + i), &mut scratch);
        source.push(initial + i);
        if i % 3 == 0 {
            let victim = (i * 11) % index.len();
            index.remove(victim as u32);
        }
    }
    let report = index.consolidate(true).expect("churn left tombstones");
    assert!(report.reclaimed > 50, "script tombstoned over 100 points");
    source = report
        .survivors
        .iter()
        .map(|&old| source[old as usize])
        .collect();
    assert_eq!(index.live_len(), source.len());

    // The baseline: a from-scratch batch build over exactly the surviving
    // points, in the streamed index's own local-id order, with the same
    // compressor. Ground-truth ids are then local ids for both indexes.
    let survivors = base.subset(&source);
    let rebuilt = StreamingIndex::build(pq, &survivors, cfg);
    let gt = brute_force_knn(&survivors, &queries, 10);

    let ef = 90;
    let streamed = recall_at_10(&index, &queries, &gt, ef);
    let fresh = recall_at_10(&rebuilt, &queries, &gt, ef);
    assert!(
        streamed >= fresh - 0.1,
        "churned index fell more than the pinned floor below a rebuild: \
         streamed {streamed} vs rebuilt {fresh}"
    );
    assert!(
        streamed >= 0.55,
        "churned index lost absolute recall: {streamed}"
    );
}

#[test]
fn one_scratch_survives_build_growth_and_consolidation() {
    // Integration-level regression for epoch-safe scratch reuse: a single
    // SearchScratch crosses a small build, growth far past the initial
    // point count, a compaction that shrinks the id space, and more growth.
    let (base, queries) = DatasetKind::Ukbench.generate(600, 5, 9);
    let (seed_set, _) = base.split_at(150);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 16,
            seed: 9,
            ..Default::default()
        },
        &seed_set,
    );
    let mut index = StreamingIndex::build(pq, &seed_set, StreamingConfig::default());
    let mut scratch = SearchScratch::new();
    let (warm, _) = index.search(queries.get(0), 40, 10, &mut scratch);
    assert_eq!(warm.len(), 10);

    // Grow 3x past the capacity that first search sized the scratch for.
    for i in 150..600 {
        index.insert(base.get(i), &mut scratch);
    }
    assert_eq!(index.len(), 600);
    for i in (0..600).step_by(2) {
        index.remove(i as u32);
    }
    index.consolidate(true).expect("half the index tombstoned");
    assert_eq!(index.len(), 300);

    // The same scratch keeps producing full, live-only result sets in the
    // shrunken id space, and after renewed growth.
    for qi in 0..queries.len() {
        let (top, _) = index.search(queries.get(qi), 60, 10, &mut scratch);
        assert_eq!(top.len(), 10);
        assert!(top.iter().all(|n| (n.id as usize) < index.len()));
    }
    for i in 0..50 {
        index.insert(base.get(i), &mut scratch);
    }
    let (top, _) = index.search(queries.get(0), 60, 10, &mut scratch);
    assert_eq!(top.len(), 10);
}

/// The predicate-layer refactor's integration pin: the unfiltered search
/// (whose tombstone masking now rides the same `VertexFilter` as user
/// predicates) must be **bit-identical** to a filtered search whose
/// predicate accepts every point, at every stage of a churn cycle —
/// inserts, tombstones, and a consolidation. If threading the predicate
/// through perturbed the tombstone path in any way, ids or distance bits
/// would diverge here.
#[test]
fn tombstone_path_is_bit_identical_to_an_all_accepting_predicate() {
    use rpq_anns::FilterStrategy;
    use rpq_data::{LabelPredicate, Labels};

    let (base, queries) = DatasetKind::Sift.generate(700, 30, 9);
    let (seed_set, reserve) = base.split_at(500);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 32,
            ..Default::default()
        },
        &seed_set,
    );
    // Every point carries label 0, so `single(0)` accepts everything and
    // the composed filter reduces to the tombstone check alone.
    let labels = Labels::from_masks(32, vec![1u32; seed_set.len()]);
    let mut index =
        StreamingIndex::build_labeled(pq, &seed_set, labels, StreamingConfig::default());
    let mut scratch = SearchScratch::new();

    let assert_stage = |index: &StreamingIndex<ProductQuantizer>,
                        scratch: &mut SearchScratch,
                        stage: &str| {
        for qi in 0..queries.len() {
            let (plain, _) = index.search(queries.get(qi), 60, 10, scratch);
            let (filtered, _) = index.search_filtered(
                queries.get(qi),
                LabelPredicate::single(0),
                FilterStrategy::DuringTraversal,
                60,
                10,
                scratch,
            );
            let a: Vec<(u32, u32)> = plain.iter().map(|n| (n.id, n.dist.to_bits())).collect();
            let b: Vec<(u32, u32)> = filtered.iter().map(|n| (n.id, n.dist.to_bits())).collect();
            assert_eq!(a, b, "tombstone path diverged after {stage} (query {qi})");
        }
    };

    assert_stage(&index, &mut scratch, "batch build");
    for i in 0..reserve.len() {
        index.insert_labeled(reserve.get(i), 1, &mut scratch);
        if i % 3 == 0 {
            index.remove(((i * 11) % index.len()) as u32);
        }
    }
    assert_stage(&index, &mut scratch, "insert/tombstone churn");
    index.consolidate(true).expect("churn left tombstones");
    assert_stage(&index, &mut scratch, "consolidation");
}
