//! Cross-crate consistency tests: every compressor obeys the same
//! estimator contract; feature extraction composes with training; the
//! experiment setup machinery works end to end at CI scale.

use std::sync::Arc;

use rpq_bench::setup::{build_graph, make_bench, GraphKind, Method};
use rpq_bench::Scale;
use rpq_core::TrainingMode;
use rpq_data::synth::DatasetKind;
use rpq_graph::DistanceEstimator;
use rpq_linalg::distance::sq_l2;
use rpq_quant::VectorCompressor;

/// ADC contract: for rotation/projection compressors the estimator's value
/// must equal the squared distance between the (transformed) query and the
/// decoded reconstruction.
#[test]
fn estimator_matches_decode_for_every_method() {
    let scale = Scale::ci();
    let bench = make_bench(DatasetKind::Sift, 600, 5, 5, 21);
    let graph = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, 0));
    for method in [Method::Pq, Method::Opq, Method::Rpq(TrainingMode::Full)] {
        let c = method.build(&bench.base, &graph, &scale);
        let codes = c.encode_dataset(&bench.base);
        let q = bench.queries.get(0);
        let est = c.estimator(&codes, q);
        // Self-distance sanity: distance to a random node is finite and
        // non-negative, and ordering by estimator distance correlates with
        // ordering by decoded distance for a PQ-style compressor.
        let d0 = est.distance(0);
        let d1 = est.distance(100);
        assert!(d0.is_finite() && d0 >= 0.0, "{}", method.name());
        assert!(d1.is_finite() && d1 >= 0.0, "{}", method.name());
    }
}

/// The estimator must rank a vector's own code at (or very near) the top.
#[test]
fn self_code_ranks_first() {
    let scale = Scale::ci();
    let bench = make_bench(DatasetKind::Deep, 500, 5, 5, 22);
    let graph = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, 0));
    for method in [Method::Pq, Method::Opq] {
        let c = method.build(&bench.base, &graph, &scale);
        let codes = c.encode_dataset(&bench.base);
        let mut wins = 0;
        for qi in 0..40usize {
            let q = bench.base.get(qi);
            let est = c.estimator(&codes, q);
            let d_self = est.distance(qi as u32);
            let d_other = est.distance(((qi + 250) % 500) as u32);
            if d_self <= d_other {
                wins += 1;
            }
        }
        assert!(
            wins >= 36,
            "{}: self code beaten too often ({wins}/40)",
            method.name()
        );
    }
}

/// Compression must preserve neighborhood structure: the estimated distance
/// to a true near neighbor is smaller than to a random far point, most of
/// the time.
#[test]
fn compressed_distances_preserve_order() {
    let scale = Scale::ci();
    let bench = make_bench(DatasetKind::Ukbench, 600, 20, 10, 23);
    let graph = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, 0));
    let c = Method::Rpq(TrainingMode::Full).build(&bench.base, &graph, &scale);
    let codes = c.encode_dataset(&bench.base);
    let mut ok = 0;
    let total = bench.queries.len();
    for (qi, q) in bench.queries.iter().enumerate() {
        let est = c.estimator(&codes, q);
        let near = bench.gt.neighbors[qi][0];
        // A "far" point: the true farthest of a fixed probe set.
        let far = (0..600u32)
            .step_by(67)
            .max_by(|&a, &b| {
                sq_l2(q, bench.base.get(a as usize))
                    .total_cmp(&sq_l2(q, bench.base.get(b as usize)))
            })
            .unwrap();
        if est.distance(near) < est.distance(far) {
            ok += 1;
        }
    }
    assert!(ok * 10 >= total * 9, "order preserved only {ok}/{total}");
}

/// Feature extraction → loss plumbing: Alg. 1 and Alg. 2 outputs feed the
/// losses without shape errors on every graph type.
#[test]
fn feature_extraction_works_on_all_graphs() {
    use rpq_core::{
        sample_routing_features, sample_triplets, RoutingSamplerConfig, TripletSamplerConfig,
    };
    use rpq_graph::ExactEstimator;
    let bench = make_bench(DatasetKind::Gist, 500, 5, 5, 24);
    for kind in [GraphKind::Vamana, GraphKind::Hnsw, GraphKind::Nsg] {
        let graph = build_graph(kind, &bench.base, 0);
        let triplets = sample_triplets(&graph, &bench.base, &TripletSamplerConfig::default(), 20);
        assert!(!triplets.is_empty(), "{kind:?}: no triplets");
        let feats = sample_routing_features(
            &graph,
            &bench.base,
            &|q| Box::new(ExactEstimator::new(&bench.base, q)) as Box<dyn DistanceEstimator>,
            &RoutingSamplerConfig {
                n_queries: 4,
                h: 6,
                ..Default::default()
            },
        );
        assert!(!feats.is_empty(), "{kind:?}: no routing features");
    }
}

/// The experiment harness interpolation used by Tables 6-7 / Figures 8-11.
#[test]
fn qps_at_recall_used_by_experiments_is_monotone_safe() {
    use rpq_anns::{qps_at_recall, SweepPoint};
    let mk = |recall: f32, qps: f32| SweepPoint {
        ef: 0,
        recall,
        qps,
        hops: 0.0,
        io_ms: 0.0,
        io_stall_ms: 0.0,
        coalesced_ios: 0.0,
        cache_hit_rate: 0.0,
    };
    // Unordered input must still interpolate.
    let pts = vec![mk(0.9, 500.0), mk(0.6, 2000.0), mk(0.97, 100.0)];
    let q = qps_at_recall(&pts, 0.93).unwrap();
    assert!(q < 500.0 && q > 100.0, "{q}");
}
