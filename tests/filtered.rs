//! Filtered search across the stack (DESIGN.md §12): recall against
//! filtered exact ground truth on the selectivity ladder, strategy
//! agreement at exhaustive beam width, the §7.3 exact-merge contract per
//! predicate, predicate soundness under streaming churn, and the cache
//! economics of Zipf-skewed traffic on the disk backend.
//!
//! The corpora use `generate_labeled`, which derives each point's label
//! from its generating cluster — matching points are geometrically
//! clumped, the hard case for a filtered traversal.

use std::path::PathBuf;

use proptest::prelude::*;

use rpq_anns::serve::{ArrivalSchedule, ShardedIndex};
use rpq_anns::stream::{StreamingConfig, StreamingIndex};
use rpq_anns::{DiskIndex, DiskIndexConfig, FilterStrategy, InMemoryIndex};
use rpq_data::synth::{SynthConfig, ValueTransform};
use rpq_data::{brute_force_knn_filtered, Dataset, LabelPredicate, Labels};
use rpq_graph::{HnswConfig, ProximityGraph, SearchScratch};
use rpq_quant::{PqConfig, ProductQuantizer};

/// Per-process store path so parallel test binaries never collide.
fn tmp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rpq-it-filtered-{}-{tag}.store",
        std::process::id()
    ))
}

/// Clustered corpus with cluster-correlated labels: 64 generating
/// clusters folded into a vocabulary of 8 gives the selectivity ladder
/// label 0 ≈ 50%, label 2 ≈ 12%, label 5 ≈ 2%.
fn labeled_data(n: usize, seed: u64) -> (Dataset, Labels) {
    SynthConfig {
        dim: 12,
        intrinsic_dim: 6,
        clusters: 64,
        cluster_std: 0.7,
        noise_std: 0.05,
        transform: ValueTransform::Identity,
    }
    .generate_labeled(n, seed, 8)
}

fn hnsw(data: &Dataset) -> ProximityGraph {
    HnswConfig {
        m: 12,
        ef_construction: 60,
        seed: 0,
    }
    .build(data)
}

fn pq(data: &Dataset) -> ProductQuantizer {
    ProductQuantizer::train(
        &PqConfig {
            m: 4,
            k: 16,
            ..Default::default()
        },
        data,
    )
}

struct Fixture {
    base: Dataset,
    queries: Dataset,
    labels: Labels,
    index: InMemoryIndex<ProductQuantizer>,
}

fn fixture() -> Fixture {
    let (all, all_labels) = labeled_data(960, 42);
    let (base, queries) = all.split_at(900);
    let labels = all_labels.subset(&(0..900).collect::<Vec<_>>());
    let index = InMemoryIndex::build(pq(&base), &base, hnsw(&base)).with_labels(labels.clone());
    Fixture {
        base,
        queries,
        labels,
        index,
    }
}

/// The selectivity ladder the asserts sweep: ~50% / ~12% / ~2%.
const LADDER: [usize; 3] = [0, 2, 5];

/// Filtered recall against filtered exact ground truth at three
/// selectivities. In-traversal keeps admitting matches at unchanged
/// routing cost, so a generous beam must clear a recall floor even for
/// the ~2% predicate — and every returned id must satisfy the predicate.
#[test]
fn filtered_recall_tracks_exact_filtered_ground_truth_across_selectivities() {
    let f = fixture();
    let mut scratch = SearchScratch::new();
    for label in LADDER {
        let pred = LabelPredicate::single(label);
        let sel = f.labels.selectivity(pred);
        assert!(
            f.labels.count_matching(pred) >= 10,
            "label {label} matches fewer points than k at this scale"
        );
        let gt = brute_force_knn_filtered(&f.base, &f.queries, 10, &f.labels, pred);
        for strategy in [
            FilterStrategy::DuringTraversal,
            FilterStrategy::PostFilter { inflation: 4 },
        ] {
            let ids: Vec<Vec<u32>> = f
                .queries
                .iter()
                .map(|q| {
                    let (res, _) =
                        f.index
                            .search_filtered(q, pred, strategy, 120, 10, &mut scratch);
                    for n in &res {
                        assert!(
                            f.labels.matches(n.id as usize, pred),
                            "{} returned id {} violating label-{label} predicate",
                            strategy.name(),
                            n.id
                        );
                    }
                    res.iter().map(|n| n.id).collect()
                })
                .collect();
            let recall = gt.recall(&ids);
            // In-traversal holds a floor at every rung; post-filter is only
            // gated where the inflated beam still covers the matches.
            let floor = match strategy {
                FilterStrategy::DuringTraversal if sel >= 0.05 => 0.55,
                // The ~2% rung is the hard case: ADC-only ranking over a
                // handful of matches. The floor still proves the beam
                // finds the clump rather than starving.
                FilterStrategy::DuringTraversal => 0.45,
                FilterStrategy::PostFilter { .. } if sel >= 0.3 => 0.55,
                FilterStrategy::PostFilter { .. } => 0.0,
            };
            assert!(
                recall >= floor,
                "{} recall {recall:.3} under floor {floor} at selectivity {sel:.3}",
                strategy.name()
            );
        }
    }
}

/// At exhaustive beam width the two strategies must agree bit-for-bit:
/// both reduce to "top-k matching points by estimator distance".
#[test]
fn strategies_agree_bit_for_bit_at_exhaustive_ef() {
    let f = fixture();
    let mut scratch = SearchScratch::new();
    let ef = f.base.len();
    for label in LADDER {
        let pred = LabelPredicate::single(label);
        for q in f.queries.iter() {
            let (in_trav, _) = f.index.search_filtered(
                q,
                pred,
                FilterStrategy::DuringTraversal,
                ef,
                10,
                &mut scratch,
            );
            let (post, _) = f.index.search_filtered(
                q,
                pred,
                FilterStrategy::PostFilter { inflation: 2 },
                ef,
                10,
                &mut scratch,
            );
            let a: Vec<(u32, u32)> = in_trav.iter().map(|n| (n.id, n.dist.to_bits())).collect();
            let b: Vec<(u32, u32)> = post.iter().map(|n| (n.id, n.dist.to_bits())).collect();
            assert_eq!(
                a, b,
                "strategies disagree at exhaustive ef for label {label}"
            );
        }
    }
}

/// §7.3 per predicate: the sharded filtered merge at exhaustive ef equals
/// the single-index filtered answer id-for-id (the matching set is
/// partitioned exactly like the base set, so per-shard filtered top-k
/// lists merge into the global filtered top-k).
#[test]
fn sharded_filtered_merge_equals_single_index_per_predicate() {
    let f = fixture();
    let compressor = pq(&f.base);
    let sharded =
        ShardedIndex::build_in_memory_labeled(&compressor, &f.base, &f.labels, 3, |part| {
            hnsw(part)
        });
    let mut scratch = SearchScratch::new();
    let ef = f.base.len();
    for label in LADDER {
        let pred = LabelPredicate::single(label);
        for strategy in [
            FilterStrategy::DuringTraversal,
            FilterStrategy::PostFilter { inflation: 2 },
        ] {
            for q in f.queries.iter() {
                let (single, _) = f
                    .index
                    .search_filtered(q, pred, strategy, ef, 10, &mut scratch);
                let (merged, _) = sharded.search_filtered(q, pred, strategy, ef, 10, &mut scratch);
                let a: Vec<u32> = single.iter().map(|n| n.id).collect();
                let b: Vec<u32> = merged.iter().map(|n| n.id).collect();
                assert_eq!(
                    a,
                    b,
                    "sharded filtered merge diverged for label {label} ({})",
                    strategy.name()
                );
            }
        }
    }
}

/// The disk engine's filtered search reranks matches with exact
/// distances, so at a generous beam it must beat the ADC-only floor —
/// and, like everywhere else, never return a non-matching id.
#[test]
fn disk_filtered_search_reranks_matches_and_respects_the_predicate() {
    let f = fixture();
    let mut index = DiskIndex::build(
        pq(&f.base),
        &f.base,
        &hnsw(&f.base),
        DiskIndexConfig::new(tmp_store("rerank")),
    )
    .expect("disk index build failed");
    index.set_labels(f.labels.clone());
    let mut scratch = SearchScratch::new();
    for label in LADDER {
        let pred = LabelPredicate::single(label);
        let gt = brute_force_knn_filtered(&f.base, &f.queries, 10, &f.labels, pred);
        let ids: Vec<Vec<u32>> = f
            .queries
            .iter()
            .map(|q| {
                let (res, _) = index.search_filtered(
                    q,
                    pred,
                    FilterStrategy::DuringTraversal,
                    120,
                    10,
                    &mut scratch,
                );
                for n in &res {
                    assert!(
                        f.labels.matches(n.id as usize, pred),
                        "disk filtered search returned id {} violating label {label}",
                        n.id
                    );
                }
                res.iter().map(|n| n.id).collect()
            })
            .collect();
        let recall = gt.recall(&ids);
        let floor = if f.labels.selectivity(pred) >= 0.05 {
            0.6
        } else {
            0.5
        };
        assert!(
            recall >= floor,
            "disk in-traversal recall {recall:.3} under {floor} at label {label}"
        );
    }
}

/// Zipf-skewed query selection raises the NodeCache hit rate over uniform
/// traffic on the disk backend: trace-driven admission pins the blocks the
/// head queries touch, and a skewed stream keeps re-touching exactly
/// those, while uniform traffic spreads over paths the cache never saw.
#[test]
fn zipf_traffic_raises_node_cache_hit_rate_over_uniform_on_disk() {
    let f = fixture();
    let mut index = DiskIndex::build(
        pq(&f.base),
        &f.base,
        &hnsw(&f.base),
        DiskIndexConfig {
            cache_nodes: 96,
            ..DiskIndexConfig::new(tmp_store("zipfcache"))
        },
    )
    .expect("disk index build failed");

    // Warm by trace on one Zipf draw, evaluate on a *different* draw of
    // the same skew (predictive admission, not self-fulfilling) and on a
    // uniform stream of the same length.
    let nq = f.queries.len();
    let warm_idx: Vec<usize> = ArrivalSchedule::open_loop_zipf(3 * nq, 1_000.0, nq, 1, 7, 1.2)
        .requests
        .iter()
        .map(|r| r.query as usize)
        .collect();
    let zipf_idx: Vec<usize> = ArrivalSchedule::open_loop_zipf(3 * nq, 1_000.0, nq, 1, 8, 1.2)
        .requests
        .iter()
        .map(|r| r.query as usize)
        .collect();
    let uniform_idx: Vec<usize> = (0..3 * nq).map(|i| i % nq).collect();

    let pinned = index.warm_cache_by_trace(&f.queries.subset(&warm_idx), 30);
    assert!(pinned > 0, "trace warm-up pinned nothing");

    let hit_rate = |idx: &[usize]| {
        let mut scratch = SearchScratch::new();
        let (mut hits, mut misses) = (0usize, 0usize);
        for &qi in idx {
            let (_, stats) = index.search_with_scratch(f.queries.get(qi), 30, 10, &mut scratch);
            hits += stats.cache_hits;
            misses += stats.cache_misses;
        }
        hits as f64 / (hits + misses).max(1) as f64
    };

    let zipf_rate = hit_rate(&zipf_idx);
    let uniform_rate = hit_rate(&uniform_idx);
    assert!(
        zipf_rate > uniform_rate,
        "Zipf stream hit rate {zipf_rate:.3} not above uniform {uniform_rate:.3}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under arbitrary insert/remove churn with a forced consolidation in
    /// the middle, filtered results (both strategies) only ever return
    /// live points whose label satisfies the predicate — checked against
    /// an *external* mirror of the masks carried through the compaction
    /// remap, which also pins that the internal label store stays in
    /// lock-step with it.
    #[test]
    fn filtered_results_satisfy_predicate_under_churn(
        seed in 0u64..1_000,
        n_ops in 30usize..80,
        remove_every in 2usize..5,
    ) {
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(260, seed);
        let (seed_set, pool) = data.split_at(140);
        let (inserts, queries) = pool.split_at(100);
        let vocab = 4usize;
        let mask_for = |i: usize| 1u32 << ((i.wrapping_mul(7).wrapping_add(seed as usize)) % vocab);

        let seed_labels = Labels::from_masks(
            vocab,
            (0..seed_set.len()).map(mask_for).collect(),
        );
        let mut mirror: Vec<u32> = (0..seed_set.len()).map(mask_for).collect();
        let mut index = StreamingIndex::build_labeled(
            pq(&seed_set),
            &seed_set,
            seed_labels,
            StreamingConfig {
                r: 8,
                l: 16,
                ..Default::default()
            },
        );
        let mut scratch = SearchScratch::new();

        for i in 0..n_ops {
            let mask = mask_for(seed_set.len() + i);
            index.insert_labeled(inserts.get(i % inserts.len()), mask, &mut scratch);
            mirror.push(mask);
            if i % remove_every == 0 {
                index.remove(((i * 13) % index.len()) as u32);
            }
            if i == n_ops / 2 {
                if let Some(report) = index.consolidate(true) {
                    mirror = report
                        .survivors
                        .iter()
                        .map(|&old| mirror[old as usize])
                        .collect();
                }
            }
        }

        for label in 0..vocab {
            let pred = LabelPredicate::single(label);
            for strategy in [
                FilterStrategy::DuringTraversal,
                FilterStrategy::PostFilter { inflation: 3 },
            ] {
                for qi in 0..queries.len().min(6) {
                    let (res, _) =
                        index.search_filtered(queries.get(qi), pred, strategy, 60, 10, &mut scratch);
                    for n in &res {
                        prop_assert!(
                            !index.is_tombstoned(n.id),
                            "returned a tombstoned id {}", n.id
                        );
                        prop_assert!(
                            pred.matches(mirror[n.id as usize]),
                            "id {} violates label-{label} predicate after churn", n.id
                        );
                        prop_assert_eq!(
                            index.labels().get(n.id as usize),
                            mirror[n.id as usize],
                            "internal label store diverged from the external mirror"
                        );
                    }
                }
            }
        }
    }
}
