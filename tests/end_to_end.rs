//! End-to-end integration tests spanning every crate: data generation →
//! graph construction → quantizer training → PQ-integrated search →
//! recall, in both deployment scenarios.

use std::sync::Arc;

use rpq_anns::{sweep_disk, sweep_memory, DiskIndex, DiskIndexConfig, InMemoryIndex};
use rpq_bench::setup::{rpq_config, store_path};
use rpq_bench::Scale;
use rpq_core::{train_rpq, TrainingMode};
use rpq_data::brute_force_knn;
use rpq_data::synth::DatasetKind;
use rpq_graph::{HnswConfig, ProximityGraph, VamanaConfig};
use rpq_quant::{PqConfig, ProductQuantizer, VectorCompressor};

fn scale() -> Scale {
    Scale::ci()
}

#[test]
fn full_pipeline_in_memory_rpq_not_worse_than_pq() {
    let s = scale();
    let (base, queries) = DatasetKind::Sift.generate(1500, 40, 9);
    let gt = brute_force_knn(&base, &queries, s.k);
    let graph = Arc::new(HnswConfig::default().build(&base));

    let pq: Box<dyn VectorCompressor> = Box::new(ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 64,
            ..Default::default()
        },
        &base,
    ));
    let cfg = rpq_config(TrainingMode::Full, &s, 8, 64);
    let rpq: Box<dyn VectorCompressor> = Box::new(train_rpq(&cfg, &base, &graph).0);

    let efs = [20usize, 60];
    let pq_idx = InMemoryIndex::build(pq, &base, ProximityGraph::clone(&graph));
    let rpq_idx = InMemoryIndex::build(rpq, &base, ProximityGraph::clone(&graph));
    let pq_pts = sweep_memory(&pq_idx, &queries, &gt, s.k, &efs);
    let rpq_pts = sweep_memory(&rpq_idx, &queries, &gt, s.k, &efs);

    // At the largest beam, the learned quantizer must not lose (noticeable
    // margin allowed for noise at this tiny scale).
    let pq_best = pq_pts.iter().map(|p| p.recall).fold(0.0f32, f32::max);
    let rpq_best = rpq_pts.iter().map(|p| p.recall).fold(0.0f32, f32::max);
    assert!(
        rpq_best >= pq_best - 0.05,
        "RPQ recall regressed: {rpq_best} vs PQ {pq_best}"
    );
    assert!(rpq_best > 0.35, "RPQ recall implausibly low: {rpq_best}");
}

#[test]
fn full_pipeline_hybrid_reranking_beats_adc_only() {
    let s = scale();
    let (base, queries) = DatasetKind::Deep.generate(1200, 30, 10);
    let gt = brute_force_knn(&base, &queries, s.k);
    let vamana = Arc::new(
        VamanaConfig {
            r: 16,
            l: 32,
            ..Default::default()
        }
        .build(&base),
    );

    let pq_for_mem: Box<dyn VectorCompressor> = Box::new(ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 32,
            ..Default::default()
        },
        &base,
    ));
    let pq_for_disk: Box<dyn VectorCompressor> = Box::new(ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 32,
            ..Default::default()
        },
        &base,
    ));

    let mem_idx = InMemoryIndex::build(pq_for_mem, &base, ProximityGraph::clone(&vamana));
    let disk_idx = DiskIndex::build(
        pq_for_disk,
        &base,
        &vamana,
        DiskIndexConfig::new(store_path("it-hybrid")),
    )
    .unwrap();

    let efs = [40usize];
    let mem = sweep_memory(&mem_idx, &queries, &gt, s.k, &efs);
    let disk = sweep_disk(&disk_idx, &queries, &gt, s.k, &efs);
    // The hybrid scenario reranks with exact distances: at equal beam width
    // it must reach at least the ADC-only recall.
    assert!(
        disk[0].recall >= mem[0].recall - 1e-3,
        "rerank lost recall: disk {} vs mem {}",
        disk[0].recall,
        mem[0].recall
    );
    assert!(disk[0].io_ms > 0.0, "hybrid search reported no I/O");
}

#[test]
fn ablation_ordering_is_sane() {
    // Full RPQ should not be materially worse than either single-feature
    // variant (paper Tables 6-7 show Full >= w/N >= w/R).
    let s = scale();
    let (base, queries) = DatasetKind::Ukbench.generate(1200, 30, 11);
    let gt = brute_force_knn(&base, &queries, s.k);
    let graph = Arc::new(
        VamanaConfig {
            r: 16,
            l: 32,
            ..Default::default()
        }
        .build(&base),
    );
    let mut recalls = Vec::new();
    for mode in [
        TrainingMode::Full,
        TrainingMode::NeighborOnly,
        TrainingMode::RoutingOnly,
    ] {
        let cfg = rpq_config(mode, &s, 8, 32);
        let (rpq, _) = train_rpq(&cfg, &base, &graph);
        let idx = InMemoryIndex::build(
            Box::new(rpq) as Box<dyn VectorCompressor>,
            &base,
            ProximityGraph::clone(&graph),
        );
        let pts = sweep_memory(&idx, &queries, &gt, s.k, &[60]);
        recalls.push((mode.label(), pts[0].recall));
    }
    let full = recalls[0].1;
    for (label, r) in &recalls[1..] {
        assert!(full >= r - 0.08, "Full ({full}) far below {label} ({r})");
    }
}

#[test]
fn graph_serialization_roundtrip_preserves_search() {
    let (base, queries) = DatasetKind::Sift.generate(800, 5, 12);
    let graph = HnswConfig::default().build(&base);
    let mut buf = Vec::new();
    graph.write_to(&mut buf).unwrap();
    let back = ProximityGraph::read_from(&mut buf.as_slice()).unwrap();
    assert_eq!(back, graph);

    use rpq_graph::{beam_search, ExactEstimator, SearchScratch};
    let mut scratch = SearchScratch::new();
    for q in queries.iter() {
        let est = ExactEstimator::new(&base, q);
        let (a, _) = beam_search(&graph, &est, 30, 5, &mut scratch);
        let (b, _) = beam_search(&back, &est, 30, 5, &mut scratch);
        assert_eq!(
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }
}

#[test]
fn memory_budget_in_memory_scenario() {
    // Codes + model must come in far below raw vectors (the scenario's
    // reason to exist), and the full index accounting must add up.
    let (base, _) = DatasetKind::Gist.generate(800, 0, 13);
    let graph = HnswConfig::default().build(&base);
    let graph_bytes = graph.memory_bytes();
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 64,
            ..Default::default()
        },
        &base,
    );
    let idx = InMemoryIndex::build(pq, &base, graph);
    let resident = idx.memory_bytes();
    assert!(resident > graph_bytes, "accounting must include the graph");
    let quant_part = resident - graph_bytes;
    assert!(
        quant_part * 8 < base.memory_bytes(),
        "quantized footprint {quant_part} not < 1/8 of raw {}",
        base.memory_bytes()
    );
}
