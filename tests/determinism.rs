//! Thread-count determinism: every build and search path must produce
//! **bit-identical** results whether the rayon pool runs 1 worker or
//! many. This is the contract that makes multi-threaded QPS numbers
//! comparable to single-threaded ones (same work, same results, less
//! wall-clock) and keeps seeded experiments reproducible on any machine.
//!
//! The vendored rayon's `with_num_threads` pins the pool width for a
//! scope on the calling thread, so both widths run inside one process.

use rpq_anns::serve::{
    AdmissionConfig, ArrivalSchedule, ClusterEngine, ClusterIndex, CostModel, LoadBalancePolicy,
    RejectReason, RequestOutcome, ShardedIndex, TokenBucketConfig,
};
use rpq_anns::stream::{StreamingConfig, StreamingIndex};
use rpq_anns::{sweep_memory, InMemoryIndex};
use rpq_data::synth::{SynthConfig, ValueTransform};
use rpq_data::{brute_force_knn, Dataset};
use rpq_graph::{nn_descent, HnswConfig, NnDescentConfig, NsgConfig, SearchScratch, VamanaConfig};
use rpq_quant::{PqConfig, ProductQuantizer, VectorCompressor};

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn ci_data(n: usize, seed: u64) -> Dataset {
    SynthConfig {
        dim: 12,
        intrinsic_dim: 5,
        clusters: 6,
        cluster_std: 0.7,
        noise_std: 0.05,
        transform: ValueTransform::Identity,
    }
    .generate(n, seed)
}

/// Runs `f` under each thread count and asserts every run returns the
/// same value as the single-threaded reference.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> T) -> T {
    let reference = rayon::with_num_threads(THREAD_COUNTS[0], &f);
    for &threads in &THREAD_COUNTS[1..] {
        let got = rayon::with_num_threads(threads, &f);
        assert!(
            got == reference,
            "{what}: result under {threads} threads diverged from the \
             single-threaded reference"
        );
    }
    reference
}

#[test]
fn ground_truth_is_thread_invariant() {
    let data = ci_data(500, 42);
    let (base, queries) = data.split_at(470);
    let gt = assert_thread_invariant("brute_force_knn", || {
        brute_force_knn(&base, &queries, 10).neighbors
    });
    assert_eq!(gt.len(), queries.len());
    assert!(gt.iter().all(|l| l.len() == 10));
}

#[test]
fn graph_builds_are_thread_invariant() {
    let data = ci_data(300, 7);
    let adjacency = |g: &rpq_graph::ProximityGraph| -> Vec<Vec<u32>> {
        (0..g.len() as u32)
            .map(|v| g.neighbors(v).to_vec())
            .collect()
    };
    assert_thread_invariant("vamana build", || {
        adjacency(
            &VamanaConfig {
                r: 8,
                l: 16,
                ..Default::default()
            }
            .build(&data),
        )
    });
    assert_thread_invariant("nsg build", || {
        adjacency(
            &NsgConfig {
                r: 8,
                ..Default::default()
            }
            .build(&data),
        )
    });
    // NN-Descent's local join runs as parallel propose / sequential
    // apply precisely so this holds.
    assert_thread_invariant("nn_descent", || {
        nn_descent(
            &data,
            NnDescentConfig {
                k: 8,
                ..Default::default()
            },
        )
    });
}

#[test]
fn memory_sweep_is_thread_invariant() {
    let data = ci_data(640, 3);
    let (base, queries) = data.split_at(600);
    let gt = brute_force_knn(&base, &queries, 10);
    let graph = HnswConfig {
        m: 8,
        ef_construction: 40,
        seed: 0,
    }
    .build(&base);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 4,
            k: 16,
            ..Default::default()
        },
        &base,
    );
    let index = InMemoryIndex::build(pq, &base, graph);

    // Per-query top-k ids through the parallel harness path
    // (into_par_iter + map_init scratch), bit-identical across widths.
    let ids = assert_thread_invariant("per-query top-k ids", || {
        use rayon::prelude::*;
        (0..queries.len())
            .into_par_iter()
            .map_init(SearchScratch::new, |scratch, qi| {
                let (res, _) = index.search(queries.get(qi), 40, 10, scratch);
                res.iter().map(|n| n.id).collect::<Vec<u32>>()
            })
            .collect::<Vec<Vec<u32>>>()
    });
    assert_eq!(ids.len(), queries.len());

    // Recall (and hops) off the full sweep; QPS legitimately varies with
    // the width, so compare the deterministic fields only.
    let sweep = assert_thread_invariant("sweep_memory recall/hops", || {
        sweep_memory(&index, &queries, &gt, 10, &[10, 40])
            .into_iter()
            .map(|p| (p.ef, p.recall.to_bits(), p.hops.to_bits()))
            .collect::<Vec<_>>()
    });
    assert_eq!(sweep.len(), 2);
}

/// The batched SoA path (DESIGN.md §9): thread-invariant like everything
/// else, *and* bit-identical to the scalar estimator walk — the whole
/// reason the batched kernel is allowed on the hot path.
#[test]
fn batched_beam_search_is_thread_invariant_and_equals_scalar() {
    use rpq_graph::beam_search;

    let data = ci_data(540, 17);
    let (base, queries) = data.split_at(500);
    let graph = HnswConfig {
        m: 8,
        ef_construction: 40,
        seed: 0,
    }
    .build(&base);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 4,
            k: 16,
            ..Default::default()
        },
        &base,
    );
    let index = InMemoryIndex::build(pq, &base, graph);

    // Batched searches across pool widths (the index routes through
    // `batch_estimator` for PQ): bit-identical ids and distances.
    let batched = assert_thread_invariant("batched per-query results", || {
        use rayon::prelude::*;
        (0..queries.len())
            .into_par_iter()
            .map_init(SearchScratch::new, |scratch, qi| {
                let (res, _) = index.search(queries.get(qi), 40, 10, scratch);
                res.iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<Vec<_>>>()
    });

    // The same queries through the explicit scalar estimator over the same
    // graph and codes: the batched results must match bit for bit.
    let mut scratch = SearchScratch::new();
    for (qi, batched_res) in batched.iter().enumerate() {
        let q = queries.get(qi);
        let est = index.compressor().estimator(index.codes(), q);
        let (res, _) = beam_search(index.graph(), &est, 40, 10, &mut scratch);
        let scalar: Vec<(u32, u32)> = res.iter().map(|n| (n.id, n.dist.to_bits())).collect();
        assert_eq!(
            *batched_res, scalar,
            "query {qi}: batched top-k diverged from the scalar estimator"
        );
    }
}

#[test]
fn streaming_lifecycle_is_thread_invariant() {
    // A scripted insert/delete/consolidate schedule must leave bit-identical
    // graphs, survivor lists, and search results at every pool width: the
    // initial batch build is the only parallel stage, and PR-3's regime
    // makes it order-deterministic.
    let data = ci_data(400, 11);
    let (seed_set, pool) = data.split_at(280);
    let (inserts, queries) = pool.split_at(100);

    let (adjacency, survivors, ids) =
        assert_thread_invariant("streaming insert/delete/consolidate", || {
            let pq = ProductQuantizer::train(
                &PqConfig {
                    m: 4,
                    k: 16,
                    ..Default::default()
                },
                &seed_set,
            );
            let mut index = StreamingIndex::build(
                pq,
                &seed_set,
                StreamingConfig {
                    r: 8,
                    l: 16,
                    ..Default::default()
                },
            );
            let mut scratch = SearchScratch::new();
            for i in 0..inserts.len() {
                index.insert(inserts.get(i), &mut scratch);
                if i % 3 == 1 {
                    // Deterministic victim; double-removal is a no-op.
                    index.remove(((i * 7) % index.len()) as u32);
                }
            }
            let survivors = index
                .consolidate(true)
                .map(|r| r.survivors)
                .unwrap_or_default();
            // A post-compaction wave exercises insertion into the shrunken
            // id space.
            for i in 0..20 {
                index.insert(inserts.get(i), &mut scratch);
            }
            let adjacency: Vec<Vec<u32>> = (0..index.len() as u32)
                .map(|v| index.graph().neighbors(v).to_vec())
                .collect();
            let ids: Vec<Vec<(u32, u32)>> = (0..queries.len())
                .map(|qi| {
                    let (res, _) = index.search(queries.get(qi), 40, 10, &mut scratch);
                    res.iter().map(|n| (n.id, n.dist.to_bits())).collect()
                })
                .collect();
            (adjacency, survivors, ids)
        });
    assert!(!adjacency.is_empty());
    assert!(!survivors.is_empty());
    assert_eq!(ids.len(), queries.len());
    assert!(ids.iter().all(|l| !l.is_empty()));
}

#[test]
fn cluster_serving_with_rebalance_is_thread_invariant() {
    // The whole serving control plane on the virtual clock — replicated
    // reads, admission (queue + deadline + quota), and a live rebalance
    // between two open-loop runs — must be bit-identical at every pool
    // width. This is what licenses the cluster experiment's goodput and
    // p99 numbers on any machine.
    let data = ci_data(360, 23);
    let (base, queries) = data.split_at(320);
    let cfg = StreamingConfig {
        r: 8,
        l: 16,
        ..Default::default()
    };

    type Encoded = Vec<(u8, Vec<(u32, u32)>, u32)>;
    let encode = |outcomes: &[RequestOutcome]| -> Encoded {
        outcomes
            .iter()
            .map(|o| match o {
                RequestOutcome::Completed {
                    neighbors,
                    latency_us,
                } => (
                    u8::MAX,
                    neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect(),
                    latency_us.to_bits(),
                ),
                RequestOutcome::Rejected { reason } => (
                    match reason {
                        RejectReason::QueueFull => 0,
                        RejectReason::DeadlineExceeded => 1,
                        RejectReason::QuotaExceeded => 2,
                        RejectReason::ShardUnavailable => 3,
                    },
                    Vec::new(),
                    0,
                ),
            })
            .collect()
    };

    let (before, after) = assert_thread_invariant("cluster open-loop with rebalance", || {
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let cluster =
            ClusterIndex::build_streaming(&pq, &base, 2, 2, LoadBalancePolicy::QueueAware, cfg);
        let engine = ClusterEngine::new(
            cluster,
            AdmissionConfig {
                queue_cap: 8,
                deadline_us: Some(5_000.0),
                quota: Some(TokenBucketConfig {
                    rate_per_sec: 2_000.0,
                    burst: 4.0,
                }),
            },
            CostModel::default(),
        );
        let schedule = ArrivalSchedule::open_loop(200, 4_000.0, queries.len(), 2, 77);
        let (before, _) = engine.serve_open_loop(&queries, &schedule, 40, 10);
        // A membership change between runs: third shard joins, replicas
        // grow — the rebalance itself must be thread-invariant too.
        engine.reconfigure(|c| {
            let mut scratch = SearchScratch::new();
            c.add_shard(Box::new(StreamingIndex::new(pq.clone(), cfg)), &mut scratch);
            c.set_replicas(3);
        });
        let (after, _) = engine.serve_open_loop(&queries, &schedule, 40, 10);
        (encode(&before), encode(&after))
    });
    assert_eq!(before.len(), 200);
    assert_eq!(after.len(), 200);
    assert!(before.iter().any(|(tag, ..)| *tag == u8::MAX));
    assert!(after.iter().any(|(tag, ..)| *tag == u8::MAX));
}

#[test]
fn sharded_search_is_thread_invariant() {
    let data = ci_data(440, 5);
    let (base, queries) = data.split_at(400);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 4,
            k: 16,
            ..Default::default()
        },
        &base,
    );
    let index = ShardedIndex::build_in_memory(&pq, &base, 3, |part| {
        HnswConfig {
            m: 8,
            ef_construction: 40,
            seed: 0,
        }
        .build(part)
    });
    let ids = assert_thread_invariant("sharded per-query top-k ids", || {
        use rayon::prelude::*;
        (0..queries.len())
            .into_par_iter()
            .map_init(SearchScratch::new, |scratch, qi| {
                let (res, _) = index.search(queries.get(qi), 40, 10, scratch);
                res.iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<Vec<_>>>()
    });
    assert_eq!(ids.len(), queries.len());
    assert!(ids.iter().all(|l| !l.is_empty()));
}

#[test]
fn filtered_sharded_search_is_thread_invariant() {
    // The predicate layer inherits the thread-invariance guarantee: the
    // filtered fan-out + merge must produce bit-identical ids and
    // distances at every pool width, for both filter strategies.
    use rpq_anns::FilterStrategy;
    use rpq_data::{LabelPredicate, Labels};

    let data = ci_data(440, 19);
    let (base, queries) = data.split_at(400);
    let labels = Labels::from_masks(4, (0..base.len()).map(|i| 1u32 << (i % 4)).collect());
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 4,
            k: 16,
            ..Default::default()
        },
        &base,
    );
    let index = ShardedIndex::build_in_memory_labeled(&pq, &base, &labels, 3, |part| {
        HnswConfig {
            m: 8,
            ef_construction: 40,
            seed: 0,
        }
        .build(part)
    });
    for strategy in [
        FilterStrategy::DuringTraversal,
        FilterStrategy::PostFilter { inflation: 3 },
    ] {
        let ids = assert_thread_invariant("filtered sharded per-query top-k", || {
            use rayon::prelude::*;
            (0..queries.len())
                .into_par_iter()
                .map_init(SearchScratch::new, |scratch, qi| {
                    let pred = LabelPredicate::single(qi % 4);
                    let (res, _) =
                        index.search_filtered(queries.get(qi), pred, strategy, 40, 10, scratch);
                    res.iter()
                        .map(|n| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<Vec<_>>>()
        });
        assert_eq!(ids.len(), queries.len());
        assert!(ids.iter().all(|l| !l.is_empty()));
    }
}

#[test]
fn zipf_filtered_cluster_serving_is_thread_invariant() {
    // Zipf-skewed query selection plus predicate-carrying requests through
    // the replicated cluster on the virtual clock: outcomes (top-k ids,
    // distance bits, latencies, reject reasons) must be bit-identical at
    // every pool width — the guarantee that licenses the skew rows in the
    // cluster experiment's JSON.
    use rpq_anns::serve::FilteredQuery;
    use rpq_anns::FilterStrategy;
    use rpq_data::{LabelPredicate, Labels};

    let data = ci_data(360, 29);
    let (base, queries) = data.split_at(320);
    let labels = Labels::from_masks(4, (0..base.len()).map(|i| 1u32 << (i % 4)).collect());

    let outcomes = assert_thread_invariant("zipf filtered cluster open-loop", || {
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let cluster = ClusterIndex::build_in_memory_labeled(
            &pq,
            &base,
            &labels,
            2,
            2,
            LoadBalancePolicy::QueueAware,
            |part| {
                HnswConfig {
                    m: 8,
                    ef_construction: 40,
                    seed: 0,
                }
                .build(part)
            },
        );
        let engine = ClusterEngine::new(
            cluster,
            AdmissionConfig {
                queue_cap: 8,
                ..Default::default()
            },
            CostModel::default(),
        );
        let schedule = ArrivalSchedule::open_loop_zipf(160, 4_000.0, queries.len(), 2, 53, 1.1)
            .with_filters(&[
                FilteredQuery {
                    pred: LabelPredicate::single(0),
                    strategy: FilterStrategy::DuringTraversal,
                },
                FilteredQuery {
                    pred: LabelPredicate::single(1),
                    strategy: FilterStrategy::PostFilter { inflation: 3 },
                },
            ]);
        let (outcomes, _) = engine.serve_open_loop(&queries, &schedule, 40, 10);
        outcomes
            .iter()
            .map(|o| match o {
                RequestOutcome::Completed {
                    neighbors,
                    latency_us,
                } => (
                    true,
                    neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect(),
                    latency_us.to_bits(),
                ),
                RequestOutcome::Rejected { .. } => (false, Vec::new(), 0),
            })
            .collect::<Vec<(bool, Vec<(u32, u32)>, u32)>>()
    });
    assert_eq!(outcomes.len(), 160);
    assert!(outcomes.iter().any(|(done, ..)| *done));
}
