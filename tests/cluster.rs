//! Integration tests for the replicated serving cluster (DESIGN.md §11):
//! fault injection, live reconfiguration, and the admission-accounting
//! properties.
//!
//! The load-bearing claims, each pinned here:
//!
//! 1. **Failures degrade, never corrupt.** With a replica hard-down, every
//!    request that completes returns the *exact* top-k a single index
//!    would (at exhaustive beam width both are exact ADC top-k, so
//!    equality is id-for-id). Goodput drops and shedding rises — but no
//!    completed answer is ever partial or wrong, and with the whole group
//!    down requests are rejected with a typed reason rather than
//!    half-answered.
//! 2. **Overload sheds, never stalls.** An injected latency spike makes
//!    the admission gate shed with `DeadlineExceeded` instead of queueing
//!    without bound, and the fault counters prove shed requests were
//!    never executed.
//! 3. **Reconfiguration is invisible to results.** An add-shard → churn →
//!    remove-shard sequence leaves results id-for-id identical to a
//!    cluster that saw the same writes and no reconfiguration, and
//!    concurrent readers never observe a torn membership view.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use rpq_anns::serve::{
    partition_round_robin, AdmissionConfig, ArrivalSchedule, ClusterEngine, ClusterGroup,
    ClusterIndex, CostModel, FlakyBackend, LoadBalancePolicy, RejectReason, Replica, ReplicaSet,
    RequestOutcome, ShardBackend, ShardedIndex, TokenBucketConfig,
};
use rpq_anns::stream::{StreamingConfig, StreamingIndex};
use rpq_anns::InMemoryIndex;
use rpq_data::synth::DatasetKind;
use rpq_data::Dataset;
use rpq_graph::{HnswConfig, ProximityGraph, SearchScratch};
use rpq_quant::{PqConfig, ProductQuantizer};

const K: usize = 10;

fn hnsw(part: &Dataset) -> ProximityGraph {
    HnswConfig {
        m: 16,
        ef_construction: 100,
        seed: 5,
    }
    .build(part)
}

/// One dataset + trained compressor + per-partition frozen backends,
/// built once and `Arc`-shared across every test and proptest case —
/// graph construction dominates otherwise.
struct Fixture {
    base: Dataset,
    queries: Dataset,
    pq: ProductQuantizer,
    /// Round-robin partition backends with their global id maps.
    parts: Vec<(Arc<dyn ShardBackend>, Vec<u32>)>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let (base, queries) = DatasetKind::Sift.generate(240, 16, 42);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 8,
                k: 32,
                seed: 42,
                ..Default::default()
            },
            &base,
        );
        let parts = partition_round_robin(base.len(), 2)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = base.subset(&local);
                let graph = hnsw(&part);
                let backend: Arc<dyn ShardBackend> =
                    Arc::new(InMemoryIndex::build(pq.clone(), &part, graph));
                (backend, ids)
            })
            .collect();
        Fixture {
            base,
            queries,
            pq,
            parts,
        }
    })
}

/// A cluster over the fixture's frozen backends, wrapped per replica in
/// fresh [`FlakyBackend`]s. Returns the cluster plus the fault switches,
/// `switches[group][replica]`.
fn flaky_cluster(
    replicas: usize,
    policy: LoadBalancePolicy,
    seed: u64,
) -> (ClusterIndex, Vec<Vec<Arc<FlakyBackend>>>) {
    let fx = fixture();
    let mut switches = Vec::new();
    let groups = fx
        .parts
        .iter()
        .enumerate()
        .map(|(gi, (backend, ids))| {
            let row: Vec<Arc<FlakyBackend>> = (0..replicas)
                .map(|ri| {
                    Arc::new(FlakyBackend::new(
                        Box::new(Arc::clone(backend)),
                        seed ^ ((gi as u64) << 8) ^ ri as u64,
                    ))
                })
                .collect();
            let set = ReplicaSet::new(row.iter().map(|f| Replica::flaky(Arc::clone(f))).collect());
            switches.push(row);
            ClusterGroup::new(set, ids.clone())
        })
        .collect();
    (
        ClusterIndex::from_groups(groups, fx.base.dim(), policy),
        switches,
    )
}

/// A plain frozen cluster over the fixture's shared backends.
fn frozen_cluster(replicas: usize, policy: LoadBalancePolicy) -> ClusterIndex {
    let fx = fixture();
    let groups = fx
        .parts
        .iter()
        .map(|(backend, ids)| {
            let set = ReplicaSet::new(
                (0..replicas)
                    .map(|_| Replica::frozen(Arc::clone(backend)))
                    .collect(),
            );
            ClusterGroup::new(set, ids.clone())
        })
        .collect();
    ClusterIndex::from_groups(groups, fx.base.dim(), policy)
}

/// Exhaustive-beam reference: the single-index exact ADC top-k every
/// completed cluster answer must equal, id for id.
fn reference_top_k() -> Vec<Vec<u32>> {
    static REFERENCE: OnceLock<Vec<Vec<u32>>> = OnceLock::new();
    REFERENCE
        .get_or_init(|| {
            let fx = fixture();
            let single = InMemoryIndex::build(fx.pq.clone(), &fx.base, hnsw(&fx.base));
            let mut scratch = SearchScratch::new();
            fx.queries
                .iter()
                .map(|q| {
                    let (res, _) = single.search(q, fx.base.len(), K, &mut scratch);
                    res.iter().map(|n| n.id).collect()
                })
                .collect()
        })
        .clone()
}

/// Asserts every completed outcome matches the exhaustive single-index
/// reference for its scheduled query. Returns how many completed.
fn assert_no_corruption(outcomes: &[RequestOutcome], schedule: &ArrivalSchedule) -> usize {
    let want = reference_top_k();
    let mut completed = 0;
    for (outcome, request) in outcomes.iter().zip(&schedule.requests) {
        if let Some(neighbors) = outcome.neighbors() {
            completed += 1;
            let got: Vec<u32> = neighbors.iter().map(|n| n.id).collect();
            assert_eq!(
                got, want[request.query as usize],
                "completed answer diverged from the exact reference on query {}",
                request.query
            );
        }
    }
    completed
}

#[test]
fn replica_failure_degrades_goodput_but_never_corrupts_top_k() {
    let fx = fixture();
    let ef = fx.base.len();
    let (cluster, switches) = flaky_cluster(2, LoadBalancePolicy::QueueAware, 7);
    let engine = ClusterEngine::new(
        cluster,
        AdmissionConfig {
            queue_cap: 64,
            ..Default::default()
        },
        CostModel::default(),
    );

    // Probe unloaded latency, then offer 1.5x the SINGLE-replica capacity:
    // two healthy replicas per group absorb it, one cannot.
    let probe = ArrivalSchedule::open_loop(64, 1.0, fx.queries.len(), 1, 70);
    let (_, unloaded) = engine.serve_open_loop(&fx.queries, &probe, ef, K);
    let offered = ArrivalSchedule::open_loop(
        600,
        1.5 * 1e6 / unloaded.latency.mean_us as f64,
        fx.queries.len(),
        1,
        71,
    );

    let (healthy_outcomes, healthy) = engine.serve_open_loop(&fx.queries, &offered, ef, K);
    assert_eq!(assert_no_corruption(&healthy_outcomes, &offered), 600);
    assert_eq!(
        healthy.shed, 0,
        "two replicas per group absorb 1.5x: {healthy:?}"
    );

    // Kill one replica of group 0 and replay the same schedule.
    switches[0][0].set_down(true);
    let failed_before = switches[0][0].failed();
    let (down_outcomes, down) = engine.serve_open_loop(&fx.queries, &offered, ef, K);
    assert_no_corruption(&down_outcomes, &offered);
    assert!(
        switches[0][0].failed() > failed_before,
        "the downed replica must have been tried and failed over"
    );
    assert!(
        down.shed > 0,
        "1.5x single-replica capacity on one surviving replica must shed: {down:?}"
    );
    assert!(
        down.goodput_qps < healthy.goodput_qps,
        "losing a replica must cost goodput: {} vs {}",
        down.goodput_qps,
        healthy.goodput_qps
    );

    // Kill the WHOLE group: typed rejection, never a partial top-k.
    switches[0][1].set_down(true);
    let (dead_outcomes, dead) = engine.serve_open_loop(&fx.queries, &offered, ef, K);
    assert_eq!(dead.completed, 0);
    assert!(dead_outcomes.iter().all(|o| !o.is_completed()));
    assert!(
        dead.shed_unavailable > 0,
        "full group loss must surface as ShardUnavailable: {dead:?}"
    );

    // Recovery: flip both switches back and the replay is bit-identical
    // to the healthy run (virtual runtime resets per run; nothing leaks).
    switches[0][0].set_down(false);
    switches[0][1].set_down(false);
    let (recovered_outcomes, recovered) = engine.serve_open_loop(&fx.queries, &offered, ef, K);
    assert_eq!(
        recovered_outcomes, healthy_outcomes,
        "recovery must restore the baseline bit for bit"
    );
    assert_eq!(recovered.latency, healthy.latency);
    assert_eq!(recovered.goodput_qps, healthy.goodput_qps);
}

#[test]
fn latency_spike_sheds_rather_than_stalls() {
    let fx = fixture();
    let (cluster, switches) = flaky_cluster(2, LoadBalancePolicy::QueueAware, 11);
    let engine = ClusterEngine::new(
        cluster,
        AdmissionConfig {
            queue_cap: 64,
            deadline_us: Some(5_000.0),
            ..Default::default()
        },
        CostModel::default(),
    );
    let offered = ArrivalSchedule::open_loop(400, 20_000.0, fx.queries.len(), 1, 72);

    // Healthy: the deadline never binds.
    let (_, healthy) = engine.serve_open_loop(&fx.queries, &offered, 40, K);
    assert_eq!(healthy.shed_deadline, 0, "{healthy:?}");

    // One replica per group stalls 50ms per read: queue-aware routing
    // shifts traffic to the healthy replicas after the first hit, so the
    // system degrades instead of stalling on the sick replica. Counters
    // accumulate across runs, so compare per-run deltas.
    for row in &switches {
        row[0].set_stall_us(50_000.0);
    }
    let before: Vec<Vec<usize>> = switches
        .iter()
        .map(|row| row.iter().map(|f| f.reads()).collect())
        .collect();
    let (_, spiked) = engine.serve_open_loop(&fx.queries, &offered, 40, K);
    assert!(
        spiked.completed > 0,
        "healthy replicas must keep serving through the spike: {spiked:?}"
    );
    for (row, prev) in switches.iter().zip(&before) {
        let stalled = row[0].reads() - prev[0];
        let healthy_reads = row[1].reads() - prev[1];
        assert!(
            healthy_reads > stalled,
            "queue-aware routing must shift load off the stalled replica \
             ({stalled} stalled vs {healthy_reads} healthy reads)"
        );
    }

    // Spike EVERY replica: now the backlog estimate blows past the
    // deadline and the gate sheds instead of queueing without bound —
    // and the read counters prove shed requests were never executed.
    for row in &switches {
        row[1].set_stall_us(50_000.0);
    }
    let reads_before_full: usize = switches.iter().flatten().map(|f| f.reads()).sum();
    let (outcomes, full) = engine.serve_open_loop(&fx.queries, &offered, 40, K);
    assert!(
        full.shed_deadline > 0,
        "a cluster-wide stall must shed on deadline: {full:?}"
    );
    assert_eq!(full.completed + full.shed, full.offered);
    let executed_reads: usize =
        switches.iter().flatten().map(|f| f.reads()).sum::<usize>() - reads_before_full;
    // Healthy replicas never fail here, so each executed request costs
    // exactly one read per group — shed requests cost zero.
    assert_eq!(
        executed_reads,
        full.admitted * switches.len(),
        "shed requests must never reach a backend"
    );
    for (outcome, _) in outcomes.iter().zip(&offered.requests) {
        if let RequestOutcome::Rejected { reason } = outcome {
            assert!(
                matches!(
                    reason,
                    RejectReason::DeadlineExceeded | RejectReason::QueueFull
                ),
                "unexpected shed reason {reason:?}"
            );
        }
    }
}

#[test]
fn add_shard_churn_remove_shard_is_invisible_to_results() {
    // The live-reconfiguration acceptance invariant: a cluster that goes
    // through add-shard → churn → remove-shard answers id-for-id like a
    // reference that saw the same churn and never reconfigured.
    let (all, queries) = DatasetKind::Sift.generate(200, 12, 21);
    let (initial, reserve) = all.split_at(150);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 32,
            seed: 21,
            ..Default::default()
        },
        &initial,
    );
    let cfg = StreamingConfig {
        r: 16,
        l: 40,
        ..Default::default()
    };
    let mut cluster =
        ClusterIndex::build_streaming(&pq, &initial, 2, 2, LoadBalancePolicy::RoundRobin, cfg);
    let mut reference = ShardedIndex::build_streaming(&pq, &initial, 2, cfg);
    let mut scratch = SearchScratch::new();

    // Membership change mid-life: a third (empty) shard joins.
    let gi = cluster.add_shard(Box::new(StreamingIndex::new(pq.clone(), cfg)), &mut scratch);
    assert_eq!(gi, 2);

    // Churn on the 3-shard cluster and the 2-shard reference alike.
    for v in reserve.iter() {
        assert_eq!(
            cluster.insert(v, &mut scratch),
            reference.insert(v, &mut scratch)
        );
    }
    for g in (0..200u32).step_by(7) {
        assert_eq!(cluster.remove(g), reference.remove(g), "remove({g})");
    }
    cluster.consolidate(true);
    reference.consolidate(true);

    // The joined shard leaves again, points redistribute.
    cluster.remove_shard(1, &mut scratch);
    assert_eq!(cluster.n_groups(), 2);
    assert_eq!(cluster.live_len(), reference.live_len());

    // Every surviving point sits where g % n_groups says it should — no
    // torn membership after the dance.
    for (idx, group) in cluster.groups().iter().enumerate() {
        for &g in group.global_ids() {
            assert_eq!(g as usize % 2, idx, "global {g} misplaced");
        }
    }

    // Exhaustive beam: exact ADC top-k over identical live sets, id for id.
    let ef = 250;
    for (qi, q) in queries.iter().enumerate() {
        let (got, _) = cluster.search(q, ef, K, &mut scratch).unwrap();
        let (want, _) = reference.search(q, ef, K, &mut scratch);
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            want.iter().map(|n| n.id).collect::<Vec<_>>(),
            "query {qi} diverged after reconfiguration"
        );
    }
}

#[test]
fn concurrent_readers_never_observe_a_torn_membership_view() {
    // Readers hammer the engine while the writer adds/removes shards and
    // changes replication. Every read must see a complete, consistent
    // cluster: full-length result, no duplicate ids, ids within range.
    let (base, queries) = DatasetKind::Sift.generate(120, 8, 33);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 32,
            seed: 33,
            ..Default::default()
        },
        &base,
    );
    let cfg = StreamingConfig {
        r: 8,
        l: 16,
        ..Default::default()
    };
    let cluster =
        ClusterIndex::build_streaming(&pq, &base, 2, 2, LoadBalancePolicy::RoundRobin, cfg);
    let engine = ClusterEngine::new(cluster, AdmissionConfig::default(), CostModel::default());
    let n_points = base.len() as u32;

    std::thread::scope(|scope| {
        for t in 0..3 {
            let engine = &engine;
            let queries = &queries;
            scope.spawn(move || {
                let mut scratch = SearchScratch::new();
                for i in 0..40 {
                    let q = queries.get((t * 13 + i) % queries.len());
                    let res = engine
                        .search(q, 60, K, &mut scratch)
                        .expect("no fault injected, reads must succeed");
                    assert_eq!(res.len(), K, "torn view returned a short top-k");
                    let mut ids: Vec<u32> = res.iter().map(|n| n.id).collect();
                    assert!(ids.iter().all(|&g| g < n_points), "id out of range");
                    ids.sort_unstable();
                    ids.dedup();
                    assert_eq!(ids.len(), K, "torn view returned duplicate ids");
                }
            });
        }
        // The writer reconfigures concurrently under the write lock.
        let pq = &pq;
        let engine = &engine;
        scope.spawn(move || {
            let mut scratch = SearchScratch::new();
            for round in 0..3 {
                engine.reconfigure(|c| {
                    c.add_shard(Box::new(StreamingIndex::new(pq.clone(), cfg)), &mut scratch);
                    c.set_replicas(3);
                });
                engine.reconfigure(|c| {
                    c.remove_shard(1 + round % 2, &mut scratch);
                    c.set_replicas(2);
                });
            }
        });
    });

    // After the dust settles the membership rule still holds exactly.
    engine.with_read(|c| {
        assert_eq!(c.live_len(), base.len());
        for (idx, group) in c.groups().iter().enumerate() {
            for &g in group.global_ids() {
                assert_eq!(g as usize % c.n_groups(), idx);
            }
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Admission bookkeeping conserves requests under any configuration,
    /// and a replayed run is bit-identical (the determinism half of the
    /// overload story).
    #[test]
    fn admission_conserves_requests_and_replays(
        queue_cap in 1usize..24,
        rate_scale in 1u32..40,
        deadline_us in (0u8..2u8, 200.0f32..20_000.0)
            .prop_map(|(has, v)| (has == 1).then_some(v)),
        seed in 0u64..500,
    ) {
        let fx = fixture();
        let mk = || ClusterEngine::new(
            frozen_cluster(2, LoadBalancePolicy::QueueAware),
            AdmissionConfig { queue_cap, deadline_us, quota: None },
            CostModel::default(),
        );
        let schedule = ArrivalSchedule::open_loop(
            150,
            1_000.0 * rate_scale as f64,
            fx.queries.len(),
            3,
            seed,
        );
        let (o1, r1) = mk().serve_open_loop(&fx.queries, &schedule, 40, K);
        prop_assert_eq!(r1.completed + r1.shed, r1.offered);
        // No faults injected, so everything admitted also completed.
        prop_assert_eq!(r1.admitted, r1.completed);
        prop_assert_eq!(r1.shed_unavailable, 0);
        // Tenant tallies partition the totals exactly.
        let (mut off, mut adm, mut shed) = (0, 0, 0);
        for t in &r1.tenants {
            off += t.offered;
            adm += t.admitted;
            shed += t.shed;
            prop_assert_eq!(t.offered, t.admitted + t.shed);
        }
        prop_assert_eq!(off, r1.offered);
        prop_assert_eq!(adm, r1.admitted);
        prop_assert_eq!(shed, r1.shed);
        // Replay on a fresh engine: bit-identical outcomes.
        let (o2, _) = mk().serve_open_loop(&fx.queries, &schedule, 40, K);
        prop_assert_eq!(o1, o2);
    }

    /// Per-tenant token buckets bound each tenant's admits by its refill
    /// budget over the schedule span, regardless of offered load.
    #[test]
    fn tenant_quota_bounds_admits(
        rate_per_sec in 100.0f32..5_000.0,
        burst in 1.0f32..8.0,
        rate_scale in 5u32..60,
        seed in 0u64..500,
    ) {
        let fx = fixture();
        let engine = ClusterEngine::new(
            frozen_cluster(1, LoadBalancePolicy::RoundRobin),
            AdmissionConfig {
                queue_cap: 1_000_000,
                deadline_us: None,
                quota: Some(TokenBucketConfig { rate_per_sec, burst }),
            },
            CostModel::default(),
        );
        let schedule = ArrivalSchedule::open_loop(
            200,
            1_000.0 * rate_scale as f64,
            fx.queries.len(),
            4,
            seed,
        );
        let (_, report) = engine.serve_open_loop(&fx.queries, &schedule, 40, K);
        let span_s = schedule.span_us() as f32 / 1e6;
        let bound = burst + rate_per_sec * span_s + 1.0;
        for t in &report.tenants {
            prop_assert!(
                (t.admitted as f32) <= bound + 1e-3,
                "tenant {} admitted {} > bucket bound {bound}",
                t.tenant, t.admitted
            );
        }
        prop_assert_eq!(report.completed + report.shed, report.offered);
    }

    /// A deadline-shed request is never executed: the gate rejects before
    /// any backend sees it, proven by the fault wrapper's read counters.
    #[test]
    fn deadline_shed_requests_are_never_executed(
        deadline_us in 50.0f32..2_000.0,
        rate_scale in 20u32..80,
        seed in 0u64..500,
    ) {
        let fx = fixture();
        let (cluster, switches) = flaky_cluster(1, LoadBalancePolicy::RoundRobin, seed);
        let n_groups = switches.len();
        let engine = ClusterEngine::new(
            cluster,
            AdmissionConfig {
                queue_cap: 1_000_000,
                deadline_us: Some(deadline_us),
                quota: None,
            },
            CostModel::default(),
        );
        let schedule = ArrivalSchedule::open_loop(
            150,
            1_000.0 * rate_scale as f64,
            fx.queries.len(),
            1,
            seed,
        );
        let (outcomes, report) = engine.serve_open_loop(&fx.queries, &schedule, 40, K);
        // Healthy flaky wrappers never fail, so executed requests cost
        // exactly one read per group; shed requests must cost zero.
        let reads: usize = switches.iter().flatten().map(|f| f.reads()).sum();
        prop_assert_eq!(reads, report.admitted * n_groups);
        for outcome in &outcomes {
            if let RequestOutcome::Rejected { reason } = outcome {
                prop_assert!(matches!(
                    reason,
                    RejectReason::DeadlineExceeded | RejectReason::QueueFull
                ));
            }
        }
        prop_assert_eq!(report.completed + report.shed, report.offered);
    }
}
