//! Integration tests for the sharded serving layer (DESIGN.md §7) and the
//! offline sweep harness invariants it builds on.
//!
//! The load-bearing test is the acceptance invariant: on a seeded CI-scale
//! dataset, the sharded serve path must return **identical** top-k to the
//! single-index path. At exhaustive beam width both sides degenerate to
//! exact ADC top-k with deterministic (dist, id) tie-breaking, so equality
//! is id-for-id — any partitioning, id-mapping, or merge bug breaks it.

use std::sync::Arc;

use rpq_anns::serve::{ServeConfig, ServeEngine, ShardedIndex};
use rpq_anns::stream::StreamingConfig;
use rpq_anns::{sweep_disk, sweep_memory, DiskIndex, DiskIndexConfig, InMemoryIndex};
use rpq_bench::Scale;
use rpq_data::brute_force_knn;
use rpq_data::synth::DatasetKind;
use rpq_data::Dataset;
use rpq_graph::{HnswConfig, ProximityGraph, SearchScratch, VamanaConfig};
use rpq_quant::{PqConfig, ProductQuantizer};

fn ci_bench(n_extra_queries: usize, seed: u64) -> (Dataset, Dataset, ProductQuantizer) {
    let s = Scale::ci();
    let (base, queries) = DatasetKind::Sift.generate(s.n_base, n_extra_queries, seed);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 32,
            seed,
            ..Default::default()
        },
        &base,
    );
    (base, queries, pq)
}

fn hnsw(part: &Dataset) -> ProximityGraph {
    HnswConfig {
        m: 16,
        ef_construction: 100,
        seed: 5,
    }
    .build(part)
}

#[test]
fn sharded_top_k_identical_to_single_index_on_seeded_ci_dataset() {
    let (base, queries, pq) = ci_bench(25, 42);
    let single = InMemoryIndex::build(pq.clone(), &base, hnsw(&base));
    let ef = base.len(); // exhaustive: beam covers every reachable vertex
    let mut scratch = SearchScratch::new();

    for n_shards in [2usize, 4] {
        let index = Arc::new(ShardedIndex::build_in_memory(&pq, &base, n_shards, hnsw));
        let engine = ServeEngine::new(Arc::clone(&index), ServeConfig::default());
        let (batch, _) = engine.serve_batch(&queries, ef, 10);
        for (qi, got) in batch.iter().enumerate() {
            let (want, _) = single.search(queries.get(qi), ef, 10, &mut scratch);
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                want.iter().map(|n| n.id).collect::<Vec<_>>(),
                "{n_shards}-shard serve diverged from single index on query {qi}",
            );
        }
    }
}

#[test]
fn concurrent_engine_agrees_with_sequential_fanout_at_operating_beam() {
    // At realistic (non-exhaustive) beam widths the sharded result is not
    // necessarily the single-index result — but the concurrent engine must
    // still agree exactly with the sequential reference merge.
    let (base, queries, pq) = ci_bench(20, 7);
    let index = Arc::new(ShardedIndex::build_in_memory(&pq, &base, 3, hnsw));
    let engine = ServeEngine::new(Arc::clone(&index), ServeConfig::default());
    let (batch, report) = engine.serve_batch(&queries, 40, 10);
    let mut scratch = SearchScratch::new();
    for (qi, got) in batch.iter().enumerate() {
        let (want, _) = index.search(queries.get(qi), 40, 10, &mut scratch);
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            want.iter().map(|n| n.id).collect::<Vec<_>>(),
        );
    }
    assert_eq!(report.latency.count, queries.len());
    assert!(report.latency.p50_us > 0.0);
    assert!(report.latency.p50_us <= report.latency.p95_us);
    assert!(report.latency.p95_us <= report.latency.p99_us);
}

#[test]
fn disk_backed_shards_serve_with_io_accounting() {
    let (base, queries, pq) = ci_bench(10, 13);
    let dir = std::env::temp_dir().join("rpq-serving-test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = DiskIndexConfig::new(dir.join("serving.store"));
    let index = Arc::new(
        ShardedIndex::build_on_disk(&pq, &base, 2, &cfg, |part| {
            VamanaConfig {
                r: 16,
                l: 40,
                ..Default::default()
            }
            .build(part)
        })
        .unwrap(),
    );
    let engine = ServeEngine::new(Arc::clone(&index), ServeConfig::default());
    let (batch, report) = engine.serve_batch(&queries, 40, 10);
    assert_eq!(batch.len(), queries.len());
    assert!(report.mean_io_ms > 0.0, "disk shards must charge I/O time");

    let gt = brute_force_knn(&base, &queries, 10);
    let ids: Vec<Vec<u32>> = batch
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect();
    assert!(gt.recall(&ids) > 0.6, "reranked disk shards lost recall");
}

#[test]
fn memory_sweep_invariants_hold_at_ci_scale() {
    let (base, queries, pq) = ci_bench(15, 3);
    let gt = brute_force_knn(&base, &queries, 10);
    let index = InMemoryIndex::build(pq, &base, hnsw(&base));
    let points = sweep_memory(&index, &queries, &gt, 10, &[10, 40, 120]);
    assert_eq!(points.len(), 3);
    for p in &points {
        assert!(
            (0.0..=1.0).contains(&p.recall),
            "recall out of [0,1]: {}",
            p.recall
        );
        assert_eq!(p.io_ms, 0.0, "in-memory sweep must report zero I/O");
        assert!(p.hops > 0.0, "sweep must route through the graph");
        assert!(p.qps > 0.0);
    }
    // Beam width is the recall knob: the widest beam must not lose to the
    // narrowest by more than noise.
    assert!(points[2].recall >= points[0].recall - 0.02, "{points:?}");
}

#[test]
fn disk_sweep_invariants_hold_at_ci_scale() {
    let (base, queries, pq) = ci_bench(10, 4);
    let gt = brute_force_knn(&base, &queries, 10);
    let graph = VamanaConfig {
        r: 16,
        l: 40,
        ..Default::default()
    }
    .build(&base);
    let dir = std::env::temp_dir().join("rpq-serving-test");
    std::fs::create_dir_all(&dir).unwrap();
    let index = DiskIndex::build(
        pq,
        &base,
        &graph,
        DiskIndexConfig::new(dir.join("sweep-invariants.store")),
    )
    .unwrap();
    let points = sweep_disk(&index, &queries, &gt, 10, &[10, 40]);
    for p in &points {
        assert!((0.0..=1.0).contains(&p.recall));
        assert!(p.io_ms > 0.0, "hybrid sweep must charge I/O time");
        assert!(p.hops > 0.0);
        assert!(p.qps > 0.0);
    }
}

#[test]
fn tombstoned_points_never_appear_in_sharded_results() {
    // Acceptance invariant for the streaming serve path: once a global id
    // is removed, no query may return it — not while it sits tombstoned in
    // its shard, and not after consolidation compacts it away.
    let (base, queries, pq) = ci_bench(12, 31);
    let mut index = ShardedIndex::build_streaming(&pq, &base, 3, StreamingConfig::default());
    let mut scratch = SearchScratch::new();

    let removed: Vec<u32> = (0..base.len() as u32).step_by(9).collect();
    for &g in &removed {
        assert!(index.remove(g), "removing live global id {g}");
    }
    assert_eq!(index.live_len(), base.len() - removed.len());

    let assert_clean = |index: &ShardedIndex, scratch: &mut SearchScratch| {
        for qi in 0..queries.len() {
            // Exhaustive beam: every live point is reachable and ranked.
            let (top, _) = index.search(queries.get(qi), base.len(), 10, scratch);
            assert_eq!(top.len(), 10);
            for n in &top {
                assert!(
                    !removed.contains(&n.id),
                    "tombstoned global id {} surfaced on query {qi}",
                    n.id
                );
            }
        }
    };
    assert_clean(&index, &mut scratch);

    let reclaimed = index.consolidate(true);
    assert_eq!(reclaimed, removed.len(), "every tombstone reclaimed");
    assert_eq!(index.live_len(), base.len() - removed.len());
    assert_clean(&index, &mut scratch);

    // Removed ids are gone for good: a second remove is refused.
    assert!(removed.iter().all(|&g| !index.remove(g)));
}

#[test]
fn examples_and_experiments_route_workers_through_serve_config_defaults() {
    // Audit (DESIGN.md §11): user-facing code must not hardcode a worker
    // count — `ServeConfig::default()` routes through `default_workers()`,
    // which respects RPQ_THREADS and the machine's cores. A literal like
    // `workers: 4` in an example silently pins benchmarks to the author's
    // laptop, so this test greps for it.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut offenders = Vec::new();
    let mut audited = 0usize;
    let mut stack = vec![root.join("examples"), root.join("crates/bench/src")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("audit dir must exist") {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            audited += 1;
            let text = std::fs::read_to_string(&path).unwrap();
            for (ln, line) in text.lines().enumerate() {
                let Some(pos) = line.find("workers:") else {
                    continue;
                };
                let rest = line[pos + "workers:".len()..].trim_start();
                if rest.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    offenders.push(format!("{}:{}: {}", path.display(), ln + 1, line.trim()));
                }
            }
        }
    }
    assert!(audited > 5, "audit scanned too few files ({audited})");
    assert!(
        offenders.is_empty(),
        "hardcoded worker counts found — route through ServeConfig::default():\n{}",
        offenders.join("\n")
    );
}

#[test]
fn serve_config_default_workers_respect_the_environment() {
    // The default every example and experiment inherits: worker count
    // comes from `default_workers()` (RPQ_THREADS-aware), never a literal.
    let cfg = ServeConfig::default();
    assert_eq!(cfg.workers, rpq_anns::serve::default_workers());
    assert!(cfg.workers >= 1);
}

#[test]
fn shard_merge_matches_brute_force_over_the_partition() {
    // Merge correctness at the system level: for every query, the union of
    // exhaustive per-shard results merged to top-k equals the exact ADC
    // top-k over the whole base — computed here independently by brute
    // force over the shared compressor's estimator.
    let (base, queries, pq) = ci_bench(8, 21);
    use rpq_quant::VectorCompressor;
    let codes = pq.encode_dataset(&base);
    let index = Arc::new(ShardedIndex::build_in_memory(&pq, &base, 3, hnsw));
    let mut scratch = SearchScratch::new();
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let est = pq.estimator(&codes, q);
        let mut exact: Vec<(f32, u32)> = (0..base.len() as u32)
            .map(|i| (rpq_graph::DistanceEstimator::distance(&est, i), i))
            .collect();
        exact.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let want: Vec<u32> = exact.iter().take(10).map(|&(_, i)| i).collect();
        let (got, _) = index.search(q, base.len(), 10, &mut scratch);
        assert_eq!(got.iter().map(|n| n.id).collect::<Vec<_>>(), want);
    }
}
