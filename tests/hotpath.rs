//! Exactness harness for the batched ADC hot path (DESIGN.md §9).
//!
//! The batched SoA kernel is only allowed to exist because it is
//! **bit-identical** to the scalar LUT walk — these tests pin that
//! contract end to end with *trained* quantizers (the in-crate unit tests
//! cover synthetic tables): odd candidate counts that straddle block
//! boundaries, every PQ shape the repo runs, the 4-bit kernel's proven
//! error bound, its recall floor against the 8-bit path, and the
//! streaming lifecycle (tombstones + consolidation) on the batched path.

use rpq_anns::stream::{StreamingConfig, StreamingIndex};
use rpq_anns::InMemoryIndex;
use rpq_data::synth::{SynthConfig, ValueTransform};
use rpq_data::{brute_force_knn, Dataset};
use rpq_graph::{beam_search, DistanceEstimator, HnswConfig, SearchScratch};
use rpq_quant::{
    BatchAdcEstimator, Packed4AdcEstimator, PackedCodes4, PqConfig, ProductQuantizer, QuantizedLut,
    SoaCodes, VectorCompressor, ADC_BLOCK,
};

fn world(n: usize, dim: usize, seed: u64) -> Dataset {
    SynthConfig {
        dim,
        intrinsic_dim: (dim / 2).max(2),
        clusters: 6,
        cluster_std: 0.8,
        noise_std: 0.05,
        transform: ValueTransform::Identity,
    }
    .generate(n, seed)
}

fn train(data: &Dataset, m: usize, k: usize) -> ProductQuantizer {
    ProductQuantizer::train(
        &PqConfig {
            m,
            k,
            ..Default::default()
        },
        data,
    )
}

/// Bit-for-bit scalar/batched agreement over every repo PQ shape and over
/// candidate counts that are *not* multiples of the block: partial tail
/// blocks must run the same f32 operation order as full ones.
#[test]
fn batched_bit_equals_scalar_across_shapes_and_odd_sizes() {
    // n = 37 + ADC_BLOCK * 3 is never block-aligned (ADC_BLOCK = 32).
    let n = ADC_BLOCK * 3 + 37;
    for &(m, k) in &[(1usize, 16usize), (4, 16), (8, 16), (8, 256), (16, 256)] {
        let dim = (m * 2).max(8);
        let data = world(n + 5, dim, 7 + m as u64);
        let (base, queries) = data.split_at(n);
        let pq = train(&base, m, k);
        let codes = pq.encode_dataset(&base);
        let soa = SoaCodes::from_compact(&codes);
        for qi in 0..queries.len() {
            let q = queries.get(qi);
            let lut = pq.lookup_table(q);
            let est = BatchAdcEstimator::new(pq.lookup_table(q), &soa);
            // Odd slice lengths: 1, block-1, block+1, and everything.
            for count in [1usize, ADC_BLOCK - 1, ADC_BLOCK + 1, n] {
                let ids: Vec<u32> = (0..count as u32).collect();
                let mut out = vec![0.0f32; count];
                est.distance_batch(&ids, &mut out);
                for (&id, &got) in ids.iter().zip(&out) {
                    let expect = lut.distance(codes.code(id as usize));
                    assert_eq!(
                        got.to_bits(),
                        expect.to_bits(),
                        "m={m} k={k} count={count} id={id}: batched {got} != scalar {expect}"
                    );
                }
            }
        }
    }
}

/// The SoA transposition is lossless on trained codes, both directions,
/// for block-aligned and unaligned stores.
#[test]
fn soa_roundtrip_lossless_on_trained_codes() {
    for &(m, k, n) in &[(4usize, 16usize, 64usize), (8, 256, 65), (16, 16, 37)] {
        let data = world(n, (m * 2).max(8), 31 + n as u64);
        let pq = train(&data, m, k);
        let codes = pq.encode_dataset(&data);
        let back = SoaCodes::from_compact(&codes).to_compact();
        assert_eq!(back.len(), codes.len());
        for i in 0..codes.len() {
            assert_eq!(back.code(i), codes.code(i), "m={m} k={k} code {i}");
        }
    }
}

/// The 4-bit kernel's observed error stays within its proven `M·Δ/2`
/// bound on trained codebooks and real queries.
#[test]
fn packed4_error_within_proven_bound() {
    let data = world(400, 16, 5);
    let (base, queries) = data.split_at(380);
    let pq = train(&base, 8, 16);
    let codes = pq.encode_dataset(&base);
    let packed = PackedCodes4::from_compact(&codes);
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let lut = pq.lookup_table(q);
        let qlut = QuantizedLut::new(&lut);
        let bound = qlut.error_bound();
        let est = Packed4AdcEstimator::new(qlut, &packed);
        for i in 0..codes.len() as u32 {
            let exact = lut.distance(codes.code(i as usize));
            let approx = est.distance(i);
            assert!(
                (approx - exact).abs() <= bound * 1.0001 + 1e-5,
                "query {qi} code {i}: |{approx} - {exact}| > bound {bound}"
            );
        }
    }
}

/// End-to-end recall: beam search driven by the 4-bit kernel must land
/// within a small margin of the 8-bit batched path (and above an absolute
/// floor) — the quantized LUT trades a provably bounded distance error
/// for 4× smaller tables, not search quality.
#[test]
fn packed4_recall_within_floor_of_8bit() {
    let data = world(640, 16, 9);
    let (base, queries) = data.split_at(600);
    let gt = brute_force_knn(&base, &queries, 10);
    let graph = HnswConfig {
        m: 8,
        ef_construction: 40,
        seed: 0,
    }
    .build(&base);
    let pq = train(&base, 8, 16);
    let codes = pq.encode_dataset(&base);
    let packed = PackedCodes4::from_compact(&codes);
    let index = InMemoryIndex::build(pq, &base, graph);
    let mut scratch = SearchScratch::new();

    let mut results8 = Vec::new();
    let mut results4 = Vec::new();
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let (res, _) = index.search(q, 80, 10, &mut scratch);
        results8.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        let est = Packed4AdcEstimator::new(
            QuantizedLut::new(&index.compressor().lookup_table(q)),
            &packed,
        );
        let (res, _) = beam_search(index.graph(), &est, 80, 10, &mut scratch);
        results4.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
    }
    let recall8 = gt.recall(&results8);
    let recall4 = gt.recall(&results4);
    assert!(
        recall4 >= recall8 - 0.05,
        "4-bit recall {recall4} fell more than 0.05 below 8-bit {recall8}"
    );
    assert!(recall4 >= 0.55, "4-bit recall floor violated: {recall4}");
}

/// The streaming lifecycle on the batched path: tombstoned points are
/// never returned, every returned distance is bit-identical to the scalar
/// LUT's, and inserts after a consolidation keep both properties.
#[test]
fn streaming_batched_path_respects_tombstones_and_scalar_bits() {
    let data = world(300, 16, 13);
    let (base, rest) = data.split_at(240);
    let (inserts, queries) = rest.split_at(40);
    let pq = train(&base, 4, 16);
    let mut index = StreamingIndex::build(
        pq,
        &base,
        StreamingConfig {
            r: 8,
            l: 16,
            ..Default::default()
        },
    );
    let mut scratch = SearchScratch::new();
    for id in (0..240u32).step_by(5) {
        index.remove(id);
    }

    let check = |index: &StreamingIndex<ProductQuantizer>, scratch: &mut SearchScratch| {
        for qi in 0..queries.len() {
            let q = queries.get(qi);
            let (res, _) = index.search(q, 50, 10, scratch);
            assert!(!res.is_empty());
            let lut = index.compressor().lookup_table(q);
            for n in &res {
                assert!(
                    !index.is_tombstoned(n.id),
                    "tombstoned id {} returned",
                    n.id
                );
                let scalar = lut.distance(index.codes().code(n.id as usize));
                assert_eq!(
                    n.dist.to_bits(),
                    scalar.to_bits(),
                    "batched streaming distance for id {} diverged from scalar",
                    n.id
                );
            }
        }
    };
    check(&index, &mut scratch);

    // Consolidate (compacts the SoA mirror too), then keep inserting — the
    // mirror must stay in lock-step through both mutations.
    index.consolidate(true).expect("tombstones above threshold");
    for i in 0..inserts.len() {
        index.insert(inserts.get(i), &mut scratch);
    }
    check(&index, &mut scratch);
}
