//! Cluster serving: replicas, admission control, and live reconfiguration.
//!
//! ```text
//! cargo run --release -p rpq --example cluster
//! ```
//!
//! Pipeline (DESIGN.md §11): shard a dataset and replicate each shard →
//! replay one open-loop Poisson arrival schedule against 1/2/4 replicas
//! and watch goodput climb while shed fraction falls → then grow the
//! cluster live (a third shard joins, points rebalance) and verify the
//! answers never change.

use rpq_anns::serve::{
    AdmissionConfig, ArrivalSchedule, ClusterEngine, ClusterIndex, CostModel, LoadBalancePolicy,
};
use rpq_anns::stream::{StreamingConfig, StreamingIndex};
use rpq_data::synth::DatasetKind;
use rpq_graph::{HnswConfig, SearchScratch};
use rpq_quant::{PqConfig, ProductQuantizer, VectorCompressor};

fn main() {
    // 1. Data and one shared compressor (shard-invariant ADC distances
    //    keep the cross-shard merge exact, replicated or not).
    let (base, queries) = DatasetKind::Sift.generate(4000, 60, 42);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 64,
            ..Default::default()
        },
        &base,
    );
    println!(
        "dataset: {} base vectors ({} dims), compressor: {}",
        base.len(),
        base.dim(),
        pq.name()
    );

    // 2. Probe single-replica capacity, then hold the offered load FIXED
    //    at 2.5x that while the replica count grows. Arrivals, service
    //    times, and queue waits all live on a virtual clock, so these
    //    numbers are reproducible on any machine.
    let mk_engine = |replicas: usize| {
        let index = ClusterIndex::build_in_memory(
            &pq,
            &base,
            2,
            replicas,
            LoadBalancePolicy::QueueAware,
            |part| {
                HnswConfig {
                    m: 16,
                    ef_construction: 100,
                    seed: 7,
                }
                .build(part)
            },
        );
        ClusterEngine::new(
            index,
            AdmissionConfig {
                queue_cap: 64,
                ..Default::default()
            },
            CostModel::default(),
        )
    };
    let probe = ArrivalSchedule::open_loop(128, 1.0, queries.len(), 1, 1);
    let e1 = mk_engine(1);
    let (_, unloaded) = e1.serve_open_loop(&queries, &probe, 60, 10);
    let capacity = 1e6 / unloaded.latency.mean_us as f64;
    let offered = ArrivalSchedule::open_loop(4000, 2.5 * capacity, queries.len(), 1, 2);
    println!("\nsingle-replica capacity ~{capacity:.0} QPS; offering 2.5x that to every cluster:");
    for replicas in [1usize, 2, 4] {
        let engine = mk_engine(replicas);
        let (_, r) = engine.serve_open_loop(&queries, &offered, 60, 10);
        println!(
            "replicas={replicas} | goodput {:>7.0} QPS | shed {:>5.1}% | \
             p50 {:>6.0}µs p99 {:>6.0}µs",
            r.goodput_qps,
            100.0 * r.shed as f32 / r.offered as f32,
            r.latency.p50_us,
            r.latency.p99_us,
        );
    }

    // 3. Live reconfiguration on a mutable cluster: a third shard joins
    //    and points rebalance to the g % n_groups rule — while answer
    //    *quality* never moves. At exhaustive beam width both sides are
    //    the exact ADC top-k over the same live set, so the per-rank
    //    distance profile is bit-identical; ids are only free to permute
    //    within exactly-tied distances (at this quantization scale many
    //    points share a code). tests/cluster.rs pins the stricter
    //    id-for-id form where ties are controlled.
    let cfg = StreamingConfig::default();
    let cluster =
        ClusterIndex::build_streaming(&pq, &base, 2, 2, LoadBalancePolicy::RoundRobin, cfg);
    let engine = ClusterEngine::new(cluster, AdmissionConfig::default(), CostModel::default());
    let mut scratch = SearchScratch::new();
    let ef = base.len();
    let profile = |engine: &ClusterEngine, scratch: &mut SearchScratch| -> Vec<Vec<u32>> {
        (0..queries.len())
            .map(|qi| {
                engine
                    .search(queries.get(qi), ef, 10, scratch)
                    .expect("healthy cluster")
                    .iter()
                    .map(|n| n.dist.to_bits())
                    .collect()
            })
            .collect()
    };
    let before = profile(&engine, &mut scratch);
    engine.reconfigure(|c| {
        let mut scratch = SearchScratch::new();
        c.add_shard(Box::new(StreamingIndex::new(pq.clone(), cfg)), &mut scratch);
    });
    let (n_groups, live) = engine.with_read(|c| (c.n_groups(), c.live_len()));
    let after = profile(&engine, &mut scratch);
    let unchanged = before.iter().zip(&after).filter(|(b, a)| b == a).count();
    println!(
        "\nlive reconfig: 2 -> {n_groups} shards, {live} live points, \
         {unchanged}/{} exact distance profiles unchanged",
        queries.len()
    );
    assert_eq!(
        unchanged,
        queries.len(),
        "rebalance must not change answer quality"
    );

    println!("\ngoodput scales with replicas; overload sheds instead of stalling.");
}
