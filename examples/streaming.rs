//! Streaming: build a small index, then live through a churn cycle —
//! insert a batch, tombstone a batch, consolidate, and query throughout.
//!
//! ```text
//! cargo run --release -p rpq --example streaming
//! ```
//!
//! Pipeline (DESIGN.md §8): batch-build a [`StreamingIndex`] on a seed
//! corpus → greedy-insert a reserve batch → tombstone a spread of points
//! (search keeps traversing them, never returns them) → consolidate to
//! reclaim the tombstones and compact ids → query the surviving set.

use rpq_anns::stream::{StreamingConfig, StreamingIndex};
use rpq_data::synth::DatasetKind;
use rpq_graph::SearchScratch;
use rpq_quant::{PqConfig, ProductQuantizer};

fn main() {
    // 1. Seed corpus + insert reserve; the compressor trains on the seed
    //    only (in the streaming regime future points are unknown).
    let (base, queries) = DatasetKind::Sift.generate(3000, 5, 42);
    let (seed_set, reserve) = base.split_at(2400);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 64,
            ..Default::default()
        },
        &seed_set,
    );

    // 2. Batch-build on the seed corpus.
    let mut index = StreamingIndex::build(pq, &seed_set, StreamingConfig::default());
    let mut scratch = SearchScratch::new();
    println!(
        "built: {} live points, {:.1} MiB resident",
        index.live_len(),
        index.memory_bytes() as f32 / (1024.0 * 1024.0)
    );

    // 3. Insert the reserve batch.
    for i in 0..reserve.len() {
        index.insert(reserve.get(i), &mut scratch);
    }
    println!("inserted {}: {} live", reserve.len(), index.live_len());

    // 4. Tombstone a spread of points. O(1) each, no graph edits; they
    //    vanish from results immediately.
    let mut removed = 0;
    for id in (0..index.len() as u32).step_by(4) {
        removed += index.remove(id) as usize;
    }
    println!(
        "tombstoned {removed}: {} live of {} resident ({:.0}% dead)",
        index.live_len(),
        index.len(),
        index.tombstone_fraction() * 100.0
    );
    let (top, _) = index.search(queries.get(0), 60, 10, &mut scratch);
    assert!(top.iter().all(|n| !index.is_tombstoned(n.id)));

    // 5. Consolidate: reclaim the tombstones, re-link their neighborhoods,
    //    compact the id space.
    let report = index.consolidate(true).expect("tombstones to reclaim");
    println!(
        "consolidated: reclaimed {}, {} live, ids compacted dense",
        report.reclaimed,
        index.live_len()
    );

    // 6. Query the survivors.
    for qi in 0..queries.len() {
        let (top, stats) = index.search(queries.get(qi), 60, 10, &mut scratch);
        let ids: Vec<u32> = top.iter().map(|n| n.id).collect();
        println!(
            "query {qi}: top-10 {ids:?} ({} hops, {} distance computations)",
            stats.hops, stats.dist_comps
        );
    }
    println!("\nevery returned id is live; the graph survived the churn.");
}
