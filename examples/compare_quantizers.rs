//! Side-by-side comparison of all five quantizers on one dataset: PQ, OPQ,
//! Catalyst, L&C and RPQ, in the in-memory scenario over HNSW — a
//! miniature of the paper's Figure 6.
//!
//! ```text
//! cargo run -p rpq-bench --release --example compare_quantizers
//! ```

use std::sync::Arc;

use rpq_anns::{sweep_memory, InMemoryIndex};
use rpq_bench::setup::{build_graph, make_bench, GraphKind, Method};
use rpq_bench::Scale;
use rpq_data::synth::DatasetKind;
use rpq_graph::ProximityGraph;

fn main() {
    let scale = Scale::from_env();
    let bench = make_bench(DatasetKind::Sift, scale.n_base, scale.n_query, scale.k, 3);
    println!(
        "SIFT-like, {} base / {} queries — in-memory over HNSW\n",
        bench.base.len(),
        bench.queries.len()
    );
    let graph = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, 0));

    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "method", "train s", "model KiB", "recall@10", "qps", "hops"
    );
    for method in Method::MEMORY_HNSW {
        let compressor = method.build(&bench.base, &graph, &scale);
        let name = compressor.name();
        let train_s = compressor.train_seconds();
        let model_kib = compressor.model_bytes() / 1024;
        let index = InMemoryIndex::build(compressor, &bench.base, ProximityGraph::clone(&graph));
        let pts = sweep_memory(&index, &bench.queries, &bench.gt, scale.k, &[80]);
        let p = pts[0];
        println!(
            "{:<10} {:>10.1} {:>12} {:>10.3} {:>10.0} {:>10.1}",
            name, train_s, model_kib, p.recall, p.qps, p.hops
        );
    }
    println!("\n(RPQ should match or beat the baselines on recall at equal ef; L&C\ntrades QPS for recall by decoding neighbors on the fly.)");
}
