//! Serving: shard a dataset, stand up the concurrent query engine, and
//! read the operational metrics a production deployment watches.
//!
//! ```text
//! cargo run --release -p rpq --example serving
//! ```
//!
//! Pipeline (DESIGN.md §7): generate vectors → train one shared PQ model →
//! partition round-robin into shards, each with its own HNSW graph → serve
//! a query stream through a worker pool with per-worker reusable scratch →
//! merge per-shard top-k and report QPS + p50/p95/p99 latency.

use std::sync::Arc;

use rpq_anns::serve::{ServeConfig, ServeEngine, ShardedIndex};
use rpq_data::brute_force_knn;
use rpq_data::synth::DatasetKind;
use rpq_graph::HnswConfig;
use rpq_quant::{PqConfig, ProductQuantizer, VectorCompressor};

fn main() {
    // 1. Data + one compressor shared by every shard (shard-invariant ADC
    //    distances are what make the cross-shard merge exact).
    let (base, queries) = DatasetKind::Sift.generate(4000, 60, 42);
    let gt = brute_force_knn(&base, &queries, 10);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 64,
            ..Default::default()
        },
        &base,
    );
    println!(
        "dataset: {} base vectors ({} dims), compressor: {} ({} B model)",
        base.len(),
        base.dim(),
        pq.name(),
        pq.model_bytes()
    );

    // 2. Serve the same traffic at increasing shard counts.
    for n_shards in [1usize, 2, 4] {
        let index = Arc::new(ShardedIndex::build_in_memory(
            &pq,
            &base,
            n_shards,
            |part| {
                HnswConfig {
                    m: 16,
                    ef_construction: 100,
                    seed: 7,
                }
                .build(part)
            },
        ));
        let engine = ServeEngine::new(
            Arc::clone(&index),
            ServeConfig {
                max_batch: 32,
                ..Default::default()
            },
        );

        // Warm-up wave, then the measured batch.
        let _ = engine.serve_batch(&queries, 60, 10);
        let (results, report) = engine.serve_batch(&queries, 60, 10);
        let ids: Vec<Vec<u32>> = results
            .iter()
            .map(|r| r.iter().map(|n| n.id).collect())
            .collect();
        println!(
            "shards={n_shards} workers={} | recall@10 {:.3} | {:.0} QPS | \
             p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs | {:.1} MiB resident",
            report.workers,
            gt.recall(&ids),
            report.qps,
            report.latency.p50_us,
            report.latency.p95_us,
            report.latency.p99_us,
            index.resident_bytes() as f32 / (1024.0 * 1024.0),
        );
    }

    println!("\nrecall is shard-invariant; QPS and tails move with fan-out.");
}
