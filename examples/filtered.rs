//! Filtered search: constrain ANN results to points satisfying a label
//! predicate, comparing the two filter strategies (DESIGN.md §12).
//!
//! ```text
//! cargo run --release -p rpq --example filtered
//! ```
//!
//! Pipeline: generate a clustered corpus whose labels correlate with the
//! cluster geometry (`generate_labeled` — the hard case: matching points
//! are clumped, so an unconstrained traversal can wander label deserts) →
//! build a disk index with labels attached (PQ routing + exact rerank) →
//! answer the same queries with **in-traversal** filtering (route
//! everywhere, admit only matches) and **post-filter** (search wider,
//! filter afterwards) → compare recall against filtered exact ground
//! truth per selectivity rung.

use rpq_anns::{DiskIndex, DiskIndexConfig, FilterStrategy};
use rpq_data::synth::DatasetKind;
use rpq_data::{brute_force_knn_filtered, LabelPredicate};
use rpq_graph::{HnswConfig, SearchScratch};
use rpq_quant::{PqConfig, ProductQuantizer};

fn main() {
    // 1. Labeled corpus: SIFT-like clusters, vocabulary of 8 labels
    //    derived from each point's generating cluster. The fold gives a
    //    selectivity ladder: label 0 ≈ 50%, label 2 ≈ 12%, label 5 ≈ 2%.
    let cfg = DatasetKind::Sift.config();
    let (all, all_labels) = cfg.generate_labeled(2120, 42, 8);
    let (base, queries) = all.split_at(2000);
    let labels = all_labels.subset(&(0..2000).collect::<Vec<_>>());

    // 2. Disk index with labels attached (one u32 mask per vector, kept
    //    in RAM next to the codes; vectors + graph live in the store
    //    file). The final exact-distance rerank means recall reflects
    //    the filter strategy, not the ADC quantization floor.
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 64,
            ..Default::default()
        },
        &base,
    );
    let graph = HnswConfig {
        m: 16,
        ef_construction: 100,
        seed: 0,
    }
    .build(&base);
    let store = std::env::temp_dir().join(format!("rpq-example-filtered-{}", std::process::id()));
    let mut index =
        DiskIndex::build(pq, &base, &graph, DiskIndexConfig::new(&store)).expect("store build");
    index.set_labels(labels.clone());
    let mut scratch = SearchScratch::new();

    // 3. Sweep the selectivity ladder with both strategies.
    println!("label  selectivity  strategy      recall@10  mean hops");
    for label in [0usize, 2, 5] {
        let pred = LabelPredicate::single(label);
        let selectivity = labels.selectivity(pred);
        let gt = brute_force_knn_filtered(&base, &queries, 10, &labels, pred);
        for strategy in [
            FilterStrategy::DuringTraversal,
            FilterStrategy::PostFilter { inflation: 4 },
        ] {
            let mut hops = 0usize;
            let ids: Vec<Vec<u32>> = queries
                .iter()
                .map(|q| {
                    let (res, stats) =
                        index.search_filtered(q, pred, strategy, 100, 10, &mut scratch);
                    hops += stats.hops;
                    // The predicate contract: every returned id matches.
                    assert!(res.iter().all(|n| labels.matches(n.id as usize, pred)));
                    res.iter().map(|n| n.id).collect()
                })
                .collect();
            println!(
                "{label:>5}  {selectivity:>11.3}  {:<12}  {:>9.3}  {:>9.1}",
                strategy.name(),
                gt.recall(&ids),
                hops as f32 / queries.len() as f32,
            );
        }
    }

    // 4. Predicates compose: `any_of` unions labels, widening selectivity.
    let union = LabelPredicate::any_of(&[2, 5]);
    println!(
        "\nany_of([2, 5]): selectivity {:.3} (union of {:.3} and {:.3})",
        labels.selectivity(union),
        labels.selectivity(LabelPredicate::single(2)),
        labels.selectivity(LabelPredicate::single(5)),
    );
    let (res, _) = index.search_filtered(
        queries.get(0),
        union,
        FilterStrategy::DuringTraversal,
        100,
        10,
        &mut scratch,
    );
    println!(
        "query 0 under the union predicate: {:?}",
        res.iter().map(|n| n.id).collect::<Vec<_>>()
    );
    let _ = std::fs::remove_file(&store);
}
