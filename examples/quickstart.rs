//! Quickstart: train RPQ end to end and search with it.
//!
//! ```text
//! cargo run -p rpq-bench --release --example quickstart
//! ```
//!
//! Pipeline (paper Fig. 2): generate vectors → build a proximity graph →
//! train the routing-guided quantizer → build a PQ-integrated in-memory
//! index → answer queries and report recall@10.

use std::sync::Arc;

use rpq_anns::InMemoryIndex;
use rpq_core::quantizer::DiffQuantizerConfig;
use rpq_core::{train_rpq, RpqTrainerConfig, TrainingMode};
use rpq_data::brute_force_knn;
use rpq_data::synth::DatasetKind;
use rpq_graph::{HnswConfig, SearchScratch};
use rpq_quant::VectorCompressor;

fn main() {
    // 1. Data: a SIFT-like synthetic set (swap in rpq_data::io::read_fvecs
    //    for the real thing).
    let (base, queries) = DatasetKind::Sift.generate(4000, 50, 42);
    println!(
        "dataset: {} base vectors, {} queries, {} dims",
        base.len(),
        queries.len(),
        base.dim()
    );

    // 2. Proximity graph (HNSW here; NSG / Vamana are drop-in).
    let graph = Arc::new(HnswConfig::default().build(&base));
    println!(
        "graph: avg degree {:.1}, entry {}",
        graph.avg_degree(),
        graph.entry()
    );

    // 3. Train RPQ: neighborhood + routing features, joint loss.
    let cfg = RpqTrainerConfig {
        quantizer: DiffQuantizerConfig {
            m: 8,
            k: 64,
            ..Default::default()
        },
        mode: TrainingMode::Full,
        epochs: 3,
        steps_per_epoch: 10,
        ..Default::default()
    };
    let (rpq, stats) = train_rpq(&cfg, &base, &graph);
    println!(
        "trained {} in {:.1}s ({} triplets, {} routing decisions, loss {:?})",
        rpq.name(),
        stats.seconds,
        stats.triplets_sampled,
        stats.decisions_sampled,
        stats.epoch_losses
    );

    // 4. Build the in-memory PQ-integrated index (codes replace vectors).
    let raw_bytes = base.memory_bytes();
    let index = InMemoryIndex::build(rpq, &base, Arc::unwrap_or_clone(graph));
    println!(
        "index resident bytes: {} (raw vectors would be {}; codes+model are {:.1}% of raw)",
        index.memory_bytes(),
        raw_bytes,
        100.0 * (index.memory_bytes() - index.graph().memory_bytes()) as f32 / raw_bytes as f32,
    );

    // 5. Search and score.
    let gt = brute_force_knn(&base, &queries, 10);
    let mut scratch = SearchScratch::new();
    let mut results = Vec::new();
    let mut hops = 0usize;
    for q in queries.iter() {
        let (res, s) = index.search(q, 80, 10, &mut scratch);
        hops += s.hops;
        results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
    }
    println!(
        "recall@10 = {:.3} at ef=80 ({:.1} hops/query)",
        gt.recall(&results),
        hops as f32 / queries.len() as f32
    );
}
