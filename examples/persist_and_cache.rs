//! Operational features: persist a trained quantizer to disk and serve a
//! hybrid index with DiskANN-style cached beam search.
//!
//! Train once, save the model (rotation + codebook, a few hundred KiB),
//! reload it in a serving process, and pin the entry region of the graph in
//! RAM to cut per-query disk reads.
//!
//! ```text
//! cargo run -p rpq-bench --release --example persist_and_cache
//! ```

use std::sync::Arc;

use rpq_anns::{DiskIndex, DiskIndexConfig};
use rpq_bench::setup::{rpq_config, store_path};
use rpq_core::{train_rpq, TrainingMode};
use rpq_data::synth::DatasetKind;
use rpq_graph::VamanaConfig;
use rpq_quant::{read_rotated_pq, write_rotated_pq, VectorCompressor};

fn main() {
    let scale = rpq_bench::Scale::from_env();
    let (base, queries) = DatasetKind::Sift.generate(scale.n_base.min(4000), 20, 99);
    let graph = Arc::new(VamanaConfig::default().build(&base));

    // --- training process: fit RPQ and persist the model ------------------
    let cfg = rpq_config(TrainingMode::Full, &scale, 8, scale.kk);
    let (rpq, stats) = train_rpq(&cfg, &base, &graph);
    let model_path = std::env::temp_dir().join("rpq-example-model.bin");
    {
        let mut f = std::fs::File::create(&model_path).expect("create model file");
        write_rotated_pq(&mut f, rpq.inner()).expect("persist model");
    }
    let size = std::fs::metadata(&model_path).unwrap().len();
    println!(
        "trained RPQ in {:.1}s, persisted {} KiB model to {}",
        stats.seconds,
        size / 1024,
        model_path.display()
    );

    // --- serving process: reload the model, build cached + uncached indexes
    let loaded = {
        let mut f = std::fs::File::open(&model_path).expect("open model file");
        read_rotated_pq(&mut f).expect("load model")
    };
    println!(
        "reloaded model: dim {}, {} KiB resident",
        loaded.dim(),
        loaded.model_bytes() / 1024
    );

    let plain = DiskIndex::build(
        read_model(&model_path),
        &base,
        &graph,
        DiskIndexConfig::new(store_path("example-persist-plain")),
    )
    .expect("build plain index");
    let cached = DiskIndex::build(
        loaded,
        &base,
        &graph,
        DiskIndexConfig {
            cache_nodes: base.len() / 10, // pin ~10% of nodes around the entry
            ..DiskIndexConfig::new(store_path("example-persist-cached"))
        },
    )
    .expect("build cached index");

    let (mut io_plain, mut io_cached) = (0usize, 0usize);
    for q in queries.iter() {
        io_plain += plain.search(q, 60, 10).1.io_reads;
        io_cached += cached.search(q, 60, 10).1.io_reads;
    }
    let n = queries.len();
    println!(
        "disk reads/query: {} uncached vs {} with cached beam search ({:.0}% hit rate)",
        io_plain / n,
        io_cached / n,
        cached.cache_stats().hit_rate() * 100.0
    );
}

fn read_model(path: &std::path::Path) -> rpq_quant::OptimizedProductQuantizer {
    let mut f = std::fs::File::open(path).expect("open model file");
    read_rotated_pq(&mut f).expect("load model")
}
