//! Image-retrieval scenario (the paper's SIFT/BigANN motivation): a
//! billion-scale image descriptor collection cannot keep full vectors in
//! RAM, so the index runs in the SSD+memory **hybrid** mode — compact codes
//! in RAM for routing, descriptors + graph on disk for reranking.
//!
//! Compares DiskANN-PQ against DiskANN-RPQ at matched recall, reporting the
//! paper's Figure 5 metrics (QPS, hops, disk I/O) at miniature scale.
//!
//! ```text
//! cargo run -p rpq-bench --release --example image_retrieval
//! ```

use std::sync::Arc;

use rpq_anns::{qps_at_recall, sweep_disk, DiskIndex, DiskIndexConfig};
use rpq_bench::setup::{rpq_config, store_path};
use rpq_core::{train_rpq, TrainingMode};
use rpq_data::brute_force_knn;
use rpq_data::synth::DatasetKind;
use rpq_graph::VamanaConfig;
use rpq_quant::{PqConfig, ProductQuantizer, VectorCompressor};

fn main() {
    let scale = rpq_bench::Scale::from_env();
    let (base, queries) = DatasetKind::BigAnn.generate(scale.n_base, scale.n_query, 7);
    let gt = brute_force_knn(&base, &queries, 10);
    println!(
        "image corpus: {} SIFT-like descriptors ({} dims), {} queries",
        base.len(),
        base.dim(),
        queries.len()
    );

    // DiskANN substrate: Vamana graph, node-per-sector store.
    let graph = Arc::new(VamanaConfig::default().build(&base));

    let efs = [10usize, 20, 40, 80, 160];
    let mut curves = Vec::new();
    for which in ["PQ", "RPQ"] {
        let compressor: Box<dyn VectorCompressor> = if which == "PQ" {
            Box::new(ProductQuantizer::train(
                &PqConfig {
                    m: 8,
                    k: scale.kk,
                    ..Default::default()
                },
                &base,
            ))
        } else {
            let cfg = rpq_config(TrainingMode::Full, &scale, 8, scale.kk);
            Box::new(train_rpq(&cfg, &base, &graph).0)
        };
        println!(
            "\nDiskANN-{which}: model {} KiB resident alongside {} KiB of codes",
            compressor.model_bytes() / 1024,
            base.len() * 8 / 1024,
        );
        let index = DiskIndex::build(
            compressor,
            &base,
            &graph,
            DiskIndexConfig::new(store_path(&format!("example-image-{which}"))),
        )
        .expect("store build failed");
        println!(
            "  resident/disk = {} KiB / {} KiB ({:.1}% in RAM)",
            index.resident_bytes() / 1024,
            index.disk_bytes() / 1024,
            100.0 * index.resident_bytes() as f32 / index.disk_bytes() as f32
        );
        let points = sweep_disk(&index, &queries, &gt, 10, &efs);
        for p in &points {
            println!(
                "  ef={:<4} recall@10={:.3} qps={:<8.0} hops={:<6.1} io={:.2} ms/query",
                p.ef, p.recall, p.qps, p.hops, p.io_ms
            );
        }
        curves.push((which, points));
    }

    let target = curves
        .iter()
        .map(|(_, pts)| pts.iter().map(|p| p.recall).fold(0.0f32, f32::max))
        .fold(f32::INFINITY, f32::min)
        * 0.98;
    println!("\nQPS at matched recall {target:.3}:");
    for (which, pts) in &curves {
        println!(
            "  DiskANN-{which}: {:.0}",
            qps_at_recall(pts, target).unwrap_or(0.0)
        );
    }
}
