//! RAG / semantic-retrieval scenario (the paper's LLM-motivation in §1): an
//! embedding store that must fit a strict memory budget. Demonstrates the
//! **in-memory** deployment — compact codes + codebook replace the full
//! embedding matrix — under the paper's f = 1/32 (~3%) budget rule, and
//! shows what that costs in recall with PQ vs RPQ.
//!
//! ```text
//! cargo run -p rpq-bench --release --example rag_memory_budget
//! ```

use std::sync::Arc;

use rpq_anns::{sweep_memory, InMemoryIndex};
use rpq_bench::setup::rpq_config;
use rpq_core::{train_rpq, TrainingMode};
use rpq_data::brute_force_knn;
use rpq_data::synth::DatasetKind;
use rpq_graph::{HnswConfig, ProximityGraph};
use rpq_quant::{PqConfig, ProductQuantizer, VectorCompressor};

fn main() {
    let scale = rpq_bench::Scale::from_env();
    // Deep-like: normalised CNN/encoder embeddings — the shape of text
    // embedding stores.
    let (base, queries) = DatasetKind::Deep.generate(scale.n_base, scale.n_query, 11);
    let gt = brute_force_knn(&base, &queries, 10);
    let raw = base.memory_bytes();
    println!(
        "embedding store: {} × {}-dim = {} KiB of raw vectors",
        base.len(),
        base.dim(),
        raw / 1024
    );

    let graph = Arc::new(HnswConfig::default().build(&base));
    let budget = (raw + graph.memory_bytes()) / 32;
    println!(
        "memory budget (paper's f = 1/32 of data+graph): {} KiB for codes + model",
        budget / 1024
    );

    for which in ["PQ", "RPQ"] {
        let compressor: Box<dyn VectorCompressor> = if which == "PQ" {
            Box::new(ProductQuantizer::train(
                &PqConfig {
                    m: 8,
                    k: scale.kk,
                    ..Default::default()
                },
                &base,
            ))
        } else {
            let cfg = rpq_config(TrainingMode::Full, &scale, 8, scale.kk);
            Box::new(train_rpq(&cfg, &base, &graph).0)
        };
        let index = InMemoryIndex::build(compressor, &base, ProximityGraph::clone(&graph));
        let quant_resident = index.codes().memory_bytes() + index.compressor().model_bytes();
        println!(
            "\n{which}: codes+model resident = {} KiB ({} budget)",
            quant_resident / 1024,
            if quant_resident <= budget {
                "WITHIN"
            } else {
                "OVER"
            },
        );
        let points = sweep_memory(&index, &queries, &gt, 10, &[20, 60, 180]);
        for p in &points {
            println!(
                "  ef={:<4} recall@10={:.3} qps={:.0}",
                p.ef, p.recall, p.qps
            );
        }
    }
    println!("\n(The gap between the two recall columns at equal ef is the value of\nrouting-guided learning under the same memory budget.)");
}
