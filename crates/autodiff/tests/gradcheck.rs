//! Finite-difference gradient checks for every differentiable op.
//!
//! Strategy: for each op, build a scalar loss `L(θ)` through the op, compute
//! the analytic gradient with the tape, then compare against central
//! differences `(L(θ+h) − L(θ−h)) / 2h` element by element.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rpq_autodiff::{Tape, Var};
use rpq_linalg::Matrix;

/// Builds a loss from a single parameter matrix and returns (loss value,
/// analytic gradient).
fn analytic(param: &Matrix, build: &dyn Fn(&mut Tape, Var) -> Var) -> (f32, Matrix) {
    let mut t = Tape::new();
    let p = t.param(param.clone());
    let loss = build(&mut t, p);
    let lv = t.value(loss)[(0, 0)];
    let grads = t.backward(loss);
    let g = grads
        .get(p)
        .expect("parameter must receive a gradient")
        .clone();
    (lv, g)
}

fn loss_value(param: &Matrix, build: &dyn Fn(&mut Tape, Var) -> Var) -> f32 {
    let mut t = Tape::new();
    let p = t.param(param.clone());
    let loss = build(&mut t, p);
    t.value(loss)[(0, 0)]
}

/// Central-difference gradient check with mixed absolute/relative tolerance.
fn grad_check(param: &Matrix, build: &dyn Fn(&mut Tape, Var) -> Var, h: f32, tol: f32) {
    let (_, g) = analytic(param, build);
    let mut perturbed = param.clone();
    for i in 0..param.data.len() {
        let orig = perturbed.data[i];
        perturbed.data[i] = orig + h;
        let lp = loss_value(&perturbed, build);
        perturbed.data[i] = orig - h;
        let lm = loss_value(&perturbed, build);
        perturbed.data[i] = orig;
        let fd = (lp - lm) / (2.0 * h);
        let an = g.data[i];
        let scale = an.abs().max(fd.abs()).max(1.0);
        assert!(
            (an - fd).abs() <= tol * scale,
            "grad mismatch at {i}: analytic {an}, finite-diff {fd}"
        );
    }
}

fn rng() -> SmallRng {
    SmallRng::seed_from_u64(0xC0FFEE)
}

#[test]
fn grad_add_sub_mul_chain() {
    let mut r = rng();
    let p = Matrix::random_uniform(3, 4, 1.0, &mut r);
    let c = Matrix::random_uniform(3, 4, 1.0, &mut r);
    grad_check(
        &p,
        &move |t, x| {
            let k = t.constant(c.clone());
            let a = t.add(x, k);
            let s = t.sub(a, x);
            let m = t.mul(s, x);
            t.sum_all(m)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_matmul_both_sides() {
    let mut r = rng();
    let p = Matrix::random_uniform(3, 3, 1.0, &mut r);
    let c = Matrix::random_uniform(3, 3, 1.0, &mut r);
    let c2 = c.clone();
    // Left operand.
    grad_check(
        &p,
        &move |t, x| {
            let k = t.constant(c.clone());
            let y = t.matmul(x, k);
            let sq = t.square(y);
            t.sum_all(sq)
        },
        1e-3,
        1e-2,
    );
    // Right operand.
    grad_check(
        &p,
        &move |t, x| {
            let k = t.constant(c2.clone());
            let y = t.matmul(k, x);
            let sq = t.square(y);
            t.sum_all(sq)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_transpose() {
    let mut r = rng();
    let p = Matrix::random_uniform(2, 5, 1.0, &mut r);
    grad_check(
        &p,
        &|t, x| {
            let xt = t.transpose(x);
            let y = t.matmul(x, xt);
            t.sum_all(y)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_exp_ln() {
    let mut r = rng();
    let p = Matrix::random_uniform(2, 3, 0.5, &mut r).map(|v| v + 1.5); // keep positive for ln
    grad_check(
        &p,
        &|t, x| {
            let e = t.exp(x);
            let l = t.ln(e);
            let m = t.mul(l, x);
            t.sum_all(m)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_relu() {
    // Values away from the kink.
    let p = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[-0.7, 3.0, -1.1]]);
    grad_check(
        &p,
        &|t, x| {
            let y = t.relu(x);
            let sq = t.square(y);
            t.sum_all(sq)
        },
        1e-4,
        1e-2,
    );
}

#[test]
fn grad_softplus() {
    let mut r = rng();
    let p = Matrix::random_uniform(2, 2, 2.0, &mut r);
    grad_check(
        &p,
        &|t, x| {
            let y = t.softplus(x);
            t.sum_all(y)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_row_softmax() {
    let mut r = rng();
    let p = Matrix::random_uniform(3, 5, 2.0, &mut r);
    let w = Matrix::random_uniform(3, 5, 1.0, &mut r);
    grad_check(
        &p,
        &move |t, x| {
            let sm = t.row_softmax(x);
            let k = t.constant(w.clone());
            let weighted = t.mul(sm, k);
            t.sum_all(weighted)
        },
        1e-3,
        2e-2,
    );
}

#[test]
fn grad_row_logsumexp() {
    let mut r = rng();
    let p = Matrix::random_uniform(4, 3, 2.0, &mut r);
    grad_check(
        &p,
        &|t, x| {
            let lse = t.row_logsumexp(x);
            let sq = t.square(lse);
            t.sum_all(sq)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_sum_and_mean() {
    let mut r = rng();
    let p = Matrix::random_uniform(3, 3, 1.0, &mut r);
    grad_check(
        &p,
        &|t, x| {
            let sc = t.sum_cols(x);
            let sq = t.square(sc);
            t.mean_all(sq)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_broadcasts() {
    let mut r = rng();
    let p = Matrix::random_uniform(3, 1, 1.0, &mut r);
    let base = Matrix::random_uniform(3, 4, 1.0, &mut r);
    grad_check(
        &p,
        &move |t, x| {
            let b = t.constant(base.clone());
            let y = t.add_col_broadcast(b, x);
            let sq = t.square(y);
            t.sum_all(sq)
        },
        1e-3,
        1e-2,
    );
    let mut r = rng();
    let p_row = Matrix::random_uniform(1, 4, 1.0, &mut r);
    let base2 = Matrix::random_uniform(3, 4, 1.0, &mut r);
    grad_check(
        &p_row,
        &move |t, x| {
            let b = t.constant(base2.clone());
            let y = t.add_row_broadcast(b, x);
            let sq = t.square(y);
            t.sum_all(sq)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_slice_concat_reshape() {
    let mut r = rng();
    let p = Matrix::random_uniform(4, 6, 1.0, &mut r);
    grad_check(
        &p,
        &|t, x| {
            let left = t.slice_cols(x, 0, 3);
            let right = t.slice_cols(x, 3, 6);
            let back = t.concat_cols(&[&right, &left].map(|v| *v));
            let top = t.slice_rows(back, 0, 2);
            let bot = t.slice_rows(back, 2, 4);
            let stacked = t.concat_rows(&[bot, top]);
            let flat = t.reshape(stacked, 2, 12);
            let sq = t.square(flat);
            t.sum_all(sq)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_gather_and_select() {
    let mut r = rng();
    let p = Matrix::random_uniform(5, 3, 1.0, &mut r);
    grad_check(
        &p,
        &|t, x| {
            let g = t.gather_rows(x, &[0, 2, 2, 4]);
            let sel = t.select_per_row(g, &[1, 0, 2, 1]);
            let sq = t.square(sel);
            t.sum_all(sq)
        },
        1e-3,
        1e-2,
    );
}

#[test]
fn grad_matrix_exp() {
    let mut r = rng();
    let p = Matrix::random_uniform(4, 4, 0.4, &mut r);
    grad_check(
        &p,
        &|t, x| {
            let e = t.matrix_exp(x);
            let sq = t.square(e);
            t.sum_all(sq)
        },
        1e-3,
        3e-2,
    );
}

#[test]
fn grad_matrix_exp_through_skew_parameterisation() {
    // The exact structure RPQ uses: R = exp(W - Wᵀ), loss on rotated data.
    let mut r = rng();
    let p = Matrix::random_uniform(4, 4, 0.3, &mut r);
    let x = Matrix::random_uniform(6, 4, 1.0, &mut r);
    let target = Matrix::random_uniform(6, 4, 1.0, &mut r);
    grad_check(
        &p,
        &move |t, w| {
            let wt = t.transpose(w);
            let a = t.sub(w, wt);
            let rot = t.matrix_exp(a);
            let xc = t.constant(x.clone());
            let rot_t = t.transpose(rot);
            let xr = t.matmul(xc, rot_t);
            let tg = t.constant(target.clone());
            let diff = t.sub(xr, tg);
            let sq = t.square(diff);
            t.mean_all(sq)
        },
        1e-3,
        3e-2,
    );
}

#[test]
fn grad_pairwise_sq_dist() {
    let mut r = rng();
    let p = Matrix::random_uniform(4, 3, 1.0, &mut r);
    let c = Matrix::random_uniform(5, 3, 1.0, &mut r);
    // Gradient w.r.t. the query side.
    let c2 = c.clone();
    grad_check(
        &p,
        &move |t, x| {
            let cb = t.constant(c.clone());
            let d = t.pairwise_sq_dist(x, cb);
            t.sum_all(d)
        },
        1e-3,
        2e-2,
    );
    // Gradient w.r.t. the codebook side.
    grad_check(
        &p,
        &move |t, cvar| {
            let xc = t.constant(c2.clone());
            let d = t.pairwise_sq_dist(xc, cvar);
            let sq = t.square(d);
            t.sum_all(sq)
        },
        1e-3,
        2e-2,
    );
}

#[test]
fn pairwise_sq_dist_matches_direct() {
    let mut r = rng();
    let x = Matrix::random_uniform(4, 6, 1.0, &mut r);
    let c = Matrix::random_uniform(3, 6, 1.0, &mut r);
    let mut t = Tape::new();
    let xv = t.constant(x.clone());
    let cv = t.constant(c.clone());
    let d = t.pairwise_sq_dist(xv, cv);
    let dv = t.value(d);
    for i in 0..4 {
        for j in 0..3 {
            let expect = rpq_linalg::distance::sq_l2(x.row(i), c.row(j));
            assert!(
                (dv[(i, j)] - expect).abs() < 1e-3,
                "{} vs {expect}",
                dv[(i, j)]
            );
        }
    }
}

#[test]
fn gumbel_softmax_rows_sum_to_one() {
    let mut r = rng();
    let mut t = Tape::new();
    let logits = t.param(Matrix::random_uniform(6, 8, 2.0, &mut r));
    let y = t.gumbel_softmax(logits, 0.5, &mut r);
    let v = t.value(y);
    for i in 0..v.rows {
        let s: f32 = v.row(i).iter().sum();
        assert!((s - 1.0).abs() < 1e-4, "row {i} sums to {s}");
        assert!(v.row(i).iter().all(|&p| p >= 0.0));
    }
    // And the whole thing is differentiable end to end.
    let sq = t.square(y);
    let loss = t.sum_all(sq);
    let grads = t.backward(loss);
    assert!(grads.get(logits).is_some());
}

#[test]
fn constants_receive_no_gradient() {
    let mut t = Tape::new();
    let c = t.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
    let p = t.param(Matrix::from_rows(&[&[3.0, 4.0]]));
    let y = t.mul(c, p);
    let loss = t.sum_all(y);
    let grads = t.backward(loss);
    assert!(grads.get(c).is_none());
    assert_eq!(grads.get(p).unwrap().data, vec![1.0, 2.0]);
}

#[test]
fn fan_out_accumulates() {
    // x used twice: d/dx (x·x + x·x) summed = 4x
    let mut t = Tape::new();
    let p = t.param(Matrix::from_rows(&[&[2.0]]));
    let a = t.mul(p, p);
    let b = t.mul(p, p);
    let s = t.add(a, b);
    let loss = t.sum_all(s);
    let grads = t.backward(loss);
    assert_eq!(grads.get(p).unwrap().data, vec![8.0]);
}

#[test]
#[should_panic(expected = "backward requires a scalar")]
fn backward_rejects_non_scalar() {
    let mut t = Tape::new();
    let p = t.param(Matrix::zeros(2, 2));
    let y = t.square(p);
    let _ = t.backward(y);
}
