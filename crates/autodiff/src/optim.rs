//! Optimizers and learning-rate schedules.
//!
//! The paper trains with mini-batch Adam and a one-cycle learning-rate
//! schedule ("LR = 1e-3, decay rate = 0.2", §6). Parameters live *outside*
//! the tape as plain matrices; each training step rebuilds the tape, runs
//! backward, and feeds `(param, grad)` pairs to the optimizer.

use rpq_linalg::Matrix;

/// Configuration for [`Adam`].
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam optimizer (Kingma & Ba 2014), one slot of first/second-moment state
/// per parameter tensor.
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    /// Per-parameter-slot multiplier on the learning rate (all 1 by
    /// default). Used to move global parameters (e.g. a rotation) more
    /// conservatively than local ones (codebooks).
    lr_scales: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates the optimizer for a fixed set of parameter shapes (element
    /// counts). The order of `sizes` must match the order in which
    /// `(param, grad)` pairs are later passed to [`Adam::step`].
    pub fn new(cfg: AdamConfig, sizes: &[usize]) -> Self {
        Self {
            cfg,
            m: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            v: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            lr_scales: vec![1.0; sizes.len()],
            t: 0,
        }
    }

    /// Like [`Adam::new`] with a per-slot learning-rate multiplier.
    pub fn with_lr_scales(cfg: AdamConfig, sizes: &[usize], scales: &[f32]) -> Self {
        assert_eq!(sizes.len(), scales.len(), "one scale per parameter slot");
        let mut adam = Self::new(cfg, sizes);
        adam.lr_scales = scales.to_vec();
        adam
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Overrides the learning rate (used by schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Applies one update. `updates` pairs each mutable parameter with its
    /// gradient; a `None` gradient (parameter unused this batch) is skipped
    /// but still consumes its moment slot.
    pub fn step(&mut self, updates: &mut [(&mut Matrix, Option<&Matrix>)]) {
        assert_eq!(
            updates.len(),
            self.m.len(),
            "Adam: parameter count mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for (slot, (param, grad)) in updates.iter_mut().enumerate() {
            let Some(grad) = grad else { continue };
            let lr = self.cfg.lr * self.lr_scales[slot];
            assert_eq!(
                param.data.len(),
                grad.data.len(),
                "Adam: param/grad size mismatch in slot {slot}"
            );
            let m = &mut self.m[slot];
            let v = &mut self.v[slot];
            assert_eq!(
                m.len(),
                param.data.len(),
                "Adam: state size mismatch in slot {slot}"
            );
            for i in 0..param.data.len() {
                let mut g = grad.data[i];
                if self.cfg.weight_decay > 0.0 {
                    g += self.cfg.weight_decay * param.data[i];
                }
                m[i] = self.cfg.beta1 * m[i] + (1.0 - self.cfg.beta1) * g;
                v[i] = self.cfg.beta2 * v[i] + (1.0 - self.cfg.beta2) * g * g;
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                param.data[i] -= lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
    }
}

/// Plain SGD, mainly as a baseline and for tests.
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    pub fn step(&self, updates: &mut [(&mut Matrix, Option<&Matrix>)]) {
        for (param, grad) in updates.iter_mut() {
            let Some(grad) = grad else { continue };
            param.add_scaled_inplace(grad, -self.lr);
        }
    }
}

/// A learning-rate schedule mapping step index → learning rate.
pub trait LrSchedule {
    fn lr_at(&self, step: usize) -> f32;
}

/// One-cycle learning rate (Smith 2018): linear warm-up to `max_lr` for the
/// first `pct_start` of training, then cosine annealing down to
/// `max_lr * final_decay`.
#[derive(Clone, Copy, Debug)]
pub struct OneCycleLr {
    pub max_lr: f32,
    pub total_steps: usize,
    pub pct_start: f32,
    /// LR at step 0 is `max_lr / div_factor`.
    pub div_factor: f32,
    /// Final LR is `max_lr * final_decay` (paper: decay rate 0.2).
    pub final_decay: f32,
}

impl OneCycleLr {
    /// Schedule with the paper's hyper-parameters: max LR 1e-3, final decay
    /// 0.2, 30% warm-up.
    pub fn paper_defaults(total_steps: usize) -> Self {
        Self {
            max_lr: 1e-3,
            total_steps: total_steps.max(1),
            pct_start: 0.3,
            div_factor: 10.0,
            final_decay: 0.2,
        }
    }
}

impl LrSchedule for OneCycleLr {
    fn lr_at(&self, step: usize) -> f32 {
        let total = self.total_steps.max(1);
        let step = step.min(total - 1);
        let warm = ((total as f32) * self.pct_start).max(1.0);
        if (step as f32) < warm {
            let frac = step as f32 / warm;
            let lo = self.max_lr / self.div_factor;
            lo + frac * (self.max_lr - lo)
        } else {
            let span = (total as f32 - warm).max(1.0);
            let frac = (step as f32 - warm) / span;
            let lo = self.max_lr * self.final_decay;
            lo + 0.5 * (self.max_lr - lo) * (1.0 + (std::f32::consts::PI * frac).cos())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_quadratic() {
        // minimise f(x) = ||x - target||^2
        let target = Matrix::from_rows(&[&[3.0, -2.0, 0.5]]);
        let mut x = Matrix::zeros(1, 3);
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.1,
                ..Default::default()
            },
            &[3],
        );
        for _ in 0..400 {
            let grad = x.sub(&target).scale(2.0);
            adam.step(&mut [(&mut x, Some(&grad))]);
        }
        for (a, b) in x.data.iter().zip(&target.data) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let target = Matrix::from_rows(&[&[1.0, 1.0]]);
        let mut x = Matrix::zeros(1, 2);
        let sgd = Sgd::new(0.1);
        for _ in 0..200 {
            let grad = x.sub(&target).scale(2.0);
            sgd.step(&mut [(&mut x, Some(&grad))]);
        }
        for (a, b) in x.data.iter().zip(&target.data) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn adam_skips_missing_grads() {
        let mut x = Matrix::from_rows(&[&[1.0]]);
        let mut adam = Adam::new(AdamConfig::default(), &[1]);
        adam.step(&mut [(&mut x, None)]);
        assert_eq!(x.data[0], 1.0);
    }

    #[test]
    fn one_cycle_shape() {
        let sched = OneCycleLr::paper_defaults(100);
        let start = sched.lr_at(0);
        let peak = sched.lr_at(30);
        let end = sched.lr_at(99);
        assert!(start < peak, "warm-up should increase: {start} vs {peak}");
        assert!(
            (peak - 1e-3).abs() < 1e-4,
            "peak should be max_lr, got {peak}"
        );
        assert!(end < peak, "should anneal down");
        assert!(end >= 1e-3 * 0.2 - 1e-6, "end {end} not below final floor");
    }

    #[test]
    fn one_cycle_handles_tiny_totals() {
        let sched = OneCycleLr::paper_defaults(1);
        assert!(sched.lr_at(0).is_finite());
        assert!(sched.lr_at(5).is_finite());
    }
}
