//! The Wengert tape: node storage, forward construction, reverse sweep.

use rpq_linalg::Matrix;

use crate::ops::Op;

/// Handle to a value on a [`Tape`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

pub(crate) struct Node {
    pub value: Matrix,
    pub op: Op,
    pub needs_grad: bool,
}

/// Gradients produced by [`Tape::backward`]: one optional matrix per tape
/// node (only nodes on a differentiable path to the loss are populated).
pub struct Gradients {
    pub(crate) grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// The gradient of the loss w.r.t. `var`, if `var` participated in the
    /// differentiable graph.
    pub fn get(&self, var: Var) -> Option<&Matrix> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }
}

/// A reverse-mode autodiff tape.
///
/// Build a computation by calling the op methods (each returns a [`Var`]),
/// then call [`Tape::backward`] on a scalar (1×1) loss node. Tapes are
/// single-use per step: rebuild per mini-batch (construction is cheap
/// relative to the matmuls inside).
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current value of a node.
    pub fn value(&self, var: Var) -> &Matrix {
        &self.nodes[var.0].value
    }

    /// Registers a trainable leaf (gradients will be computed for it).
    pub fn param(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Registers a constant leaf (no gradient).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    pub(crate) fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Runs the reverse sweep from a scalar loss node and returns the
    /// gradients. Panics if `loss` is not 1×1.
    pub fn backward(&self, loss: Var) -> Gradients {
        let lv = &self.nodes[loss.0].value;
        assert_eq!(
            (lv.rows, lv.cols),
            (1, 1),
            "backward requires a scalar (1x1) loss, got {}x{}",
            lv.rows,
            lv.cols
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));
        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].needs_grad {
                continue;
            }
            let Some(g) = grads[idx].take() else { continue };
            self.accumulate_inputs(idx, &g, &mut grads);
            grads[idx] = Some(g);
        }
        Gradients { grads }
    }

    fn accumulate_inputs(&self, idx: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        let node = &self.nodes[idx];
        node.op
            .backward(self, idx, g, &mut |input: Var, contribution: Matrix| {
                if !self.nodes[input.0].needs_grad {
                    return;
                }
                match &mut grads[input.0] {
                    Some(existing) => existing.add_scaled_inplace(&contribution, 1.0),
                    slot @ None => *slot = Some(contribution),
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_len_and_values() {
        let mut t = Tape::new();
        assert!(t.is_empty());
        let a = t.constant(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.param(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let c = t.add(a, b);
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(c).data, vec![4.0, 6.0]);
    }

    #[test]
    fn gradients_only_for_param_paths() {
        let mut t = Tape::new();
        let c = t.constant(Matrix::from_vec(1, 1, vec![5.0]));
        let p = t.param(Matrix::from_vec(1, 1, vec![2.0]));
        let dead = t.square(c); // constant-only branch
        let live = t.square(p);
        let both = t.add(dead, live);
        let loss = t.sum_all(both);
        let grads = t.backward(loss);
        assert!(
            grads.get(dead).is_none(),
            "constant branch must not be tracked"
        );
        assert_eq!(grads.get(p).unwrap().data, vec![4.0]);
    }

    #[test]
    fn backward_twice_is_consistent() {
        // The tape is immutable during backward: two sweeps agree.
        let mut t = Tape::new();
        let p = t.param(Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]));
        let s = t.square(p);
        let loss = t.mean_all(s);
        let g1 = t.backward(loss);
        let g2 = t.backward(loss);
        assert_eq!(g1.get(p).unwrap().data, g2.get(p).unwrap().data);
    }

    #[test]
    fn diamond_graph_accumulates_once_per_path() {
        // loss = (p + p) ⊙ p  => d/dp = 2p + 2p = 4p ... verify numerically.
        let mut t = Tape::new();
        let p = t.param(Matrix::from_vec(1, 1, vec![3.0]));
        let twice = t.add(p, p);
        let prod = t.mul(twice, p);
        let loss = t.sum_all(prod);
        let grads = t.backward(loss);
        // d/dp (2p·p) = 4p = 12
        assert_eq!(grads.get(p).unwrap().data, vec![12.0]);
    }
}
