//! # rpq-autodiff
//!
//! A small tape-based reverse-mode automatic-differentiation engine over
//! dense [`rpq_linalg::Matrix`] values, purpose-built for training RPQ's
//! differentiable quantizer (paper §4–§6) in pure Rust.
//!
//! Why build one: RPQ's training loop needs gradients through
//!
//! * a matrix exponential (`R = exp(A)`, adaptive vector decomposition),
//! * Gumbel-Softmax codeword assignment (softmax / log / gather),
//! * triplet and listwise (log-likelihood) losses over batches,
//!
//! and the offline Rust ecosystem has no learned-codebook training tooling.
//! The engine is a classic Wengert tape: every operation appends a node, so
//! the tape is topologically ordered by construction and a single reverse
//! sweep computes all gradients.
//!
//! ```
//! use rpq_autodiff::Tape;
//! use rpq_linalg::Matrix;
//!
//! let mut t = Tape::new();
//! let x = t.param(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let y = t.square(x);
//! let loss = t.sum_all(y);
//! let grads = t.backward(loss);
//! let gx = grads.get(x).unwrap();
//! assert_eq!(gx.data, vec![2.0, 4.0]); // d/dx sum(x²) = 2x
//! ```

mod ops;
mod optim;
mod tape;

pub use optim::{Adam, AdamConfig, LrSchedule, OneCycleLr, Sgd};
pub use tape::{Gradients, Tape, Var};

/// Numerically-safe epsilon used inside `ln` and division-like backward
/// passes.
pub(crate) const SAFE_EPS: f32 = 1e-12;
