//! Differentiable operations: forward construction methods on [`Tape`] and
//! the reverse-mode rules for each op.
//!
//! Conventions:
//! * every op validates shapes eagerly with a panic message naming the op,
//! * backward receives the node's own index (so it can read its cached
//!   output, e.g. softmax) and a sink that accumulates per-input gradients.

use rand::Rng;
use rpq_linalg::{cayley, cayley_vjp, expm, expm_vjp, Matrix};

use crate::tape::{Tape, Var};
use crate::SAFE_EPS;

#[allow(dead_code)] // scalar payloads kept for tape debugging/introspection
pub(crate) enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    Neg(Var),
    MatMul(Var, Var),
    Transpose(Var),
    Exp(Var),
    Ln(Var),
    Relu(Var),
    Square(Var),
    Softplus(Var),
    RowSoftmax(Var),
    RowLogSumExp(Var),
    SumCols(Var),
    SumAll(Var),
    MeanAll(Var),
    AddColBroadcast(Var, Var),
    AddRowBroadcast(Var, Var),
    SliceCols(Var, usize, usize),
    SliceRows(Var, usize, usize),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    Reshape(Var),
    GatherRows(Var, Vec<usize>),
    SelectPerRow(Var, Vec<usize>),
    MatrixExp(Var),
    CayleyMap(Var),
}

impl Op {
    /// Propagates the upstream gradient `g` of node `idx` to its inputs via
    /// `sink(input, contribution)`.
    pub(crate) fn backward(
        &self,
        tape: &Tape,
        idx: usize,
        g: &Matrix,
        sink: &mut dyn FnMut(Var, Matrix),
    ) {
        match self {
            Op::Leaf => {}
            Op::Add(a, b) => {
                sink(*a, g.clone());
                sink(*b, g.clone());
            }
            Op::Sub(a, b) => {
                sink(*a, g.clone());
                sink(*b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                sink(*a, g.hadamard(tape.value(*b)));
                sink(*b, g.hadamard(tape.value(*a)));
            }
            Op::Scale(a, s) => sink(*a, g.scale(*s)),
            Op::AddScalar(a, _) => sink(*a, g.clone()),
            Op::Neg(a) => sink(*a, g.scale(-1.0)),
            Op::MatMul(a, b) => {
                // C = A B  =>  Ā = Ḡ Bᵀ,  B̄ = Aᵀ Ḡ
                sink(*a, g.matmul_nt(tape.value(*b)));
                sink(*b, tape.value(*a).matmul_tn(g));
            }
            Op::Transpose(a) => sink(*a, g.transpose()),
            Op::Exp(a) => sink(*a, g.hadamard(&tape.nodes[idx].value)),
            Op::Ln(a) => {
                let x = tape.value(*a);
                sink(*a, g.hadamard(&x.map(|v| 1.0 / (v + SAFE_EPS))));
            }
            Op::Relu(a) => {
                let x = tape.value(*a);
                sink(*a, g.hadamard(&x.map(|v| if v > 0.0 { 1.0 } else { 0.0 })));
            }
            Op::Square(a) => {
                let x = tape.value(*a);
                sink(*a, g.hadamard(&x.scale(2.0)));
            }
            Op::Softplus(a) => {
                let x = tape.value(*a);
                sink(*a, g.hadamard(&x.map(sigmoid)));
            }
            Op::RowSoftmax(a) => {
                // y = softmax(x) rowwise; x̄ = y ⊙ (ḡ − rowsum(ḡ ⊙ y))
                let y = &tape.nodes[idx].value;
                let mut out = Matrix::zeros(y.rows, y.cols);
                for i in 0..y.rows {
                    let yr = y.row(i);
                    let gr = g.row(i);
                    let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    for (o, (yv, gv)) in out.row_mut(i).iter_mut().zip(yr.iter().zip(gr)) {
                        *o = yv * (gv - dot);
                    }
                }
                sink(*a, out);
            }
            Op::RowLogSumExp(a) => {
                // out[i] = lse(x[i,:]); x̄[i,j] = ḡ[i] · softmax(x)[i,j]
                let x = tape.value(*a);
                let mut out = Matrix::zeros(x.rows, x.cols);
                for i in 0..x.rows {
                    let row = x.row(i);
                    let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let denom: f32 = row.iter().map(|v| (v - m).exp()).sum();
                    let gi = g[(i, 0)];
                    for (o, v) in out.row_mut(i).iter_mut().zip(row) {
                        *o = gi * (v - m).exp() / denom;
                    }
                }
                sink(*a, out);
            }
            Op::SumCols(a) => {
                let x = tape.value(*a);
                let mut out = Matrix::zeros(x.rows, x.cols);
                for i in 0..x.rows {
                    let gi = g[(i, 0)];
                    for o in out.row_mut(i) {
                        *o = gi;
                    }
                }
                sink(*a, out);
            }
            Op::SumAll(a) => {
                let x = tape.value(*a);
                sink(*a, Matrix::full(x.rows, x.cols, g[(0, 0)]));
            }
            Op::MeanAll(a) => {
                let x = tape.value(*a);
                let n = (x.rows * x.cols) as f32;
                sink(*a, Matrix::full(x.rows, x.cols, g[(0, 0)] / n));
            }
            Op::AddColBroadcast(a, b) => {
                sink(*a, g.clone());
                let mut gb = Matrix::zeros(g.rows, 1);
                for i in 0..g.rows {
                    gb[(i, 0)] = g.row(i).iter().sum();
                }
                sink(*b, gb);
            }
            Op::AddRowBroadcast(a, b) => {
                sink(*a, g.clone());
                let mut gb = Matrix::zeros(1, g.cols);
                for i in 0..g.rows {
                    for (o, v) in gb.row_mut(0).iter_mut().zip(g.row(i)) {
                        *o += v;
                    }
                }
                sink(*b, gb);
            }
            Op::SliceCols(a, c0, _c1) => {
                let x = tape.value(*a);
                let mut out = Matrix::zeros(x.rows, x.cols);
                for i in 0..g.rows {
                    out.row_mut(i)[*c0..*c0 + g.cols].copy_from_slice(g.row(i));
                }
                sink(*a, out);
            }
            Op::SliceRows(a, r0, _r1) => {
                let x = tape.value(*a);
                let mut out = Matrix::zeros(x.rows, x.cols);
                for i in 0..g.rows {
                    out.row_mut(r0 + i).copy_from_slice(g.row(i));
                }
                sink(*a, out);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for p in parts {
                    let w = tape.value(*p).cols;
                    sink(*p, g.slice_cols(off, off + w));
                    off += w;
                }
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for p in parts {
                    let h = tape.value(*p).rows;
                    sink(*p, g.slice_rows(off, off + h));
                    off += h;
                }
            }
            Op::Reshape(a) => {
                let x = tape.value(*a);
                sink(*a, Matrix::from_vec(x.rows, x.cols, g.data.clone()));
            }
            Op::GatherRows(a, indices) => {
                let x = tape.value(*a);
                let mut out = Matrix::zeros(x.rows, x.cols);
                for (src, &dst) in indices.iter().enumerate() {
                    for (o, v) in out.row_mut(dst).iter_mut().zip(g.row(src)) {
                        *o += v;
                    }
                }
                sink(*a, out);
            }
            Op::SelectPerRow(a, indices) => {
                let x = tape.value(*a);
                let mut out = Matrix::zeros(x.rows, x.cols);
                for (i, &j) in indices.iter().enumerate() {
                    out[(i, j)] += g[(i, 0)];
                }
                sink(*a, out);
            }
            Op::MatrixExp(a) => {
                sink(*a, expm_vjp(tape.value(*a), g));
            }
            Op::CayleyMap(a) => {
                sink(*a, cayley_vjp(tape.value(*a), g));
            }
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Tape {
    fn same_shape(&self, a: Var, b: Var, op: &str) {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(
            (va.rows, va.cols),
            (vb.rows, vb.cols),
            "{op}: shape mismatch {}x{} vs {}x{}",
            va.rows,
            va.cols,
            vb.rows,
            vb.cols
        );
    }

    /// Element-wise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.same_shape(a, b, "add");
        let v = self.value(a).add(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Add(a, b), ng)
    }

    /// Element-wise `a − b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.same_shape(a, b, "sub");
        let v = self.value(a).sub(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Sub(a, b), ng)
    }

    /// Element-wise (Hadamard) `a ⊙ b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.same_shape(a, b, "mul");
        let v = self.value(a).hadamard(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Mul(a, b), ng)
    }

    /// Scalar multiple `a * s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, s), ng)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).map(|x| x + s);
        let ng = self.needs(a);
        self.push(v, Op::AddScalar(a, s), ng)
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).scale(-1.0);
        let ng = self.needs(a);
        self.push(v, Op::Neg(a), ng)
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatMul(a, b), ng)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        let ng = self.needs(a);
        self.push(v, Op::Transpose(a), ng)
    }

    /// Element-wise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::exp);
        let ng = self.needs(a);
        self.push(v, Op::Exp(a), ng)
    }

    /// Element-wise natural log of `x + ε` (safe for zero inputs).
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| (x + SAFE_EPS).ln());
        let ng = self.needs(a);
        self.push(v, Op::Ln(a), ng)
    }

    /// Element-wise `max(0, x)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(v, Op::Relu(a), ng)
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x * x);
        let ng = self.needs(a);
        self.push(v, Op::Square(a), ng)
    }

    /// Element-wise `softplus(x) = ln(1 + eˣ)`, the positive
    /// reparameterisation used for the learnable loss coefficient α.
    pub fn softplus(&mut self, a: Var) -> Var {
        let v = self
            .value(a)
            .map(|x| if x > 20.0 { x } else { (1.0 + x.exp()).ln() });
        let ng = self.needs(a);
        self.push(v, Op::Softplus(a), ng)
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn row_softmax(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let mut v = Matrix::zeros(x.rows, x.cols);
        for i in 0..x.rows {
            let row = x.row(i);
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (o, &xv) in v.row_mut(i).iter_mut().zip(row) {
                *o = (xv - m).exp();
                denom += *o;
            }
            let inv = 1.0 / denom;
            for o in v.row_mut(i) {
                *o *= inv;
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::RowSoftmax(a), ng)
    }

    /// Row-wise log-sum-exp, producing an `r×1` column.
    pub fn row_logsumexp(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let mut v = Matrix::zeros(x.rows, 1);
        for i in 0..x.rows {
            let row = x.row(i);
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let s: f32 = row.iter().map(|&xv| (xv - m).exp()).sum();
            v[(i, 0)] = m + s.ln();
        }
        let ng = self.needs(a);
        self.push(v, Op::RowLogSumExp(a), ng)
    }

    /// Sums each row, producing an `r×1` column.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let mut v = Matrix::zeros(x.rows, 1);
        for i in 0..x.rows {
            v[(i, 0)] = x.row(i).iter().sum();
        }
        let ng = self.needs(a);
        self.push(v, Op::SumCols(a), ng)
    }

    /// Sums all elements into a 1×1 scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let s: f32 = x.data.iter().sum();
        let ng = self.needs(a);
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SumAll(a), ng)
    }

    /// Mean of all elements into a 1×1 scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let s: f32 = x.data.iter().sum::<f32>() / (x.rows * x.cols) as f32;
        let ng = self.needs(a);
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::MeanAll(a), ng)
    }

    /// Broadcast add of an `r×1` column `b` to each column of `a` (`r×c`).
    pub fn add_col_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(y.cols, 1, "add_col_broadcast: b must be a column");
        assert_eq!(x.rows, y.rows, "add_col_broadcast: row mismatch");
        let mut v = x.clone();
        for i in 0..v.rows {
            let bi = y[(i, 0)];
            for o in v.row_mut(i) {
                *o += bi;
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::AddColBroadcast(a, b), ng)
    }

    /// Broadcast add of a `1×c` row `b` to each row of `a` (`r×c`).
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(y.rows, 1, "add_row_broadcast: b must be a row");
        assert_eq!(x.cols, y.cols, "add_row_broadcast: col mismatch");
        let mut v = x.clone();
        for i in 0..v.rows {
            for (o, bv) in v.row_mut(i).iter_mut().zip(y.row(0)) {
                *o += bv;
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::AddRowBroadcast(a, b), ng)
    }

    /// Column slice `[c0, c1)`.
    pub fn slice_cols(&mut self, a: Var, c0: usize, c1: usize) -> Var {
        let v = self.value(a).slice_cols(c0, c1);
        let ng = self.needs(a);
        self.push(v, Op::SliceCols(a, c0, c1), ng)
    }

    /// Row slice `[r0, r1)`.
    pub fn slice_rows(&mut self, a: Var, r0: usize, r1: usize) -> Var {
        let v = self.value(a).slice_rows(r0, r1);
        let ng = self.needs(a);
        self.push(v, Op::SliceRows(a, r0, r1), ng)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let values: Vec<&Matrix> = parts.iter().map(|p| self.value(*p)).collect();
        let v = Matrix::hstack(&values);
        let ng = parts.iter().any(|p| self.needs(*p));
        self.push(v, Op::ConcatCols(parts.to_vec()), ng)
    }

    /// Vertical concatenation.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let values: Vec<&Matrix> = parts.iter().map(|p| self.value(*p)).collect();
        let v = Matrix::vstack(&values);
        let ng = parts.iter().any(|p| self.needs(*p));
        self.push(v, Op::ConcatRows(parts.to_vec()), ng)
    }

    /// Reshapes to `rows×cols` (element count must match; row-major order
    /// preserved).
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let x = self.value(a);
        assert_eq!(
            x.rows * x.cols,
            rows * cols,
            "reshape: element count mismatch"
        );
        let v = Matrix::from_vec(rows, cols, x.data.clone());
        let ng = self.needs(a);
        self.push(v, Op::Reshape(a), ng)
    }

    /// Gathers rows of `a` by index (duplicates allowed; backward scatters
    /// with accumulation).
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let v = self.value(a).gather_rows(indices);
        let ng = self.needs(a);
        self.push(v, Op::GatherRows(a, indices.to_vec()), ng)
    }

    /// Selects one element per row: output `r×1` with `out[i] = a[i, idx[i]]`.
    pub fn select_per_row(&mut self, a: Var, indices: &[usize]) -> Var {
        let x = self.value(a);
        assert_eq!(
            indices.len(),
            x.rows,
            "select_per_row: index count must equal rows"
        );
        let mut v = Matrix::zeros(x.rows, 1);
        for (i, &j) in indices.iter().enumerate() {
            assert!(j < x.cols, "select_per_row: column index {j} out of range");
            v[(i, 0)] = x[(i, j)];
        }
        let ng = self.needs(a);
        self.push(v, Op::SelectPerRow(a, indices.to_vec()), ng)
    }

    /// Matrix exponential of a square matrix, with exact reverse-mode via the
    /// adjoint Fréchet derivative.
    pub fn matrix_exp(&mut self, a: Var) -> Var {
        let v = expm(self.value(a));
        let ng = self.needs(a);
        self.push(v, Op::MatrixExp(a), ng)
    }

    /// Cayley transform `(I − A)⁻¹(I + A)` of a square (skew-symmetric)
    /// matrix — the cheaper alternative rotation parameterisation
    /// (DESIGN.md ablation; valid vjp only on the skew tangent space, which
    /// is where RPQ evaluates it).
    pub fn cayley_map(&mut self, a: Var) -> Var {
        let v = cayley(self.value(a));
        let ng = self.needs(a);
        self.push(v, Op::CayleyMap(a), ng)
    }

    // ---- composites -------------------------------------------------------

    /// Squared norm of each row, as an `r×1` column.
    pub fn row_sq_norm(&mut self, a: Var) -> Var {
        let sq = self.square(a);
        self.sum_cols(sq)
    }

    /// All-pairs squared Euclidean distances between the rows of `x` (`n×d`)
    /// and the rows of `c` (`k×d`), as an `n×k` matrix:
    /// `‖x‖² − 2 x·cᵀ + ‖c‖²`.
    pub fn pairwise_sq_dist(&mut self, x: Var, c: Var) -> Var {
        let xc_t = self.transpose(c);
        let cross = self.matmul(x, xc_t);
        let m2 = self.scale(cross, -2.0);
        let xn = self.row_sq_norm(x);
        let with_x = self.add_col_broadcast(m2, xn);
        let cn = self.row_sq_norm(c);
        let cn_row = self.transpose(cn);
        self.add_row_broadcast(with_x, cn_row)
    }

    /// Gumbel-Softmax over rows: `softmax((logits + gumbel_noise) / τ)`
    /// (Jang et al. 2016; paper Eq. 7). The noise is sampled here and enters
    /// the tape as a constant, so gradients flow only through `logits`.
    pub fn gumbel_softmax<R: Rng + ?Sized>(&mut self, logits: Var, tau: f32, rng: &mut R) -> Var {
        assert!(tau > 0.0, "gumbel_softmax: temperature must be positive");
        let l = self.value(logits);
        let noise = Matrix::from_vec(
            l.rows,
            l.cols,
            (0..l.rows * l.cols)
                .map(|_| {
                    let u: f32 = rng.gen_range(f32::EPSILON..1.0);
                    -(-(u.ln())).ln()
                })
                .collect(),
        );
        let z = self.constant(noise);
        let shifted = self.add(logits, z);
        let scaled = self.scale(shifted, 1.0 / tau);
        self.row_softmax(scaled)
    }
}
