//! Umbrella crate for the RPQ workspace: one `use rpq::…` entry point over
//! the layered member crates, and the owner of the repository-root
//! cross-crate tests (`tests/`) and runnable examples (`examples/`).
//!
//! Layering (each layer depends only on the ones before it):
//!
//! ```text
//! linalg ── autodiff ┐
//!    │               ├── quant ── core ── anns ── bench
//!    └───── data ── graph ┘
//! ```

pub use rpq_anns as anns;
pub use rpq_autodiff as autodiff;
pub use rpq_bench as bench;
pub use rpq_core as core;
pub use rpq_data as data;
pub use rpq_graph as graph;
pub use rpq_linalg as linalg;
pub use rpq_quant as quant;
