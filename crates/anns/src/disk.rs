//! The SSD+memory hybrid scenario (paper §7): a DiskANN-style index.
//!
//! Layout: one sector-aligned block per node in a single file,
//! `[degree u32][neighbor ids u32 × R][vector f32 × D]`, mirroring
//! DiskANN's node-per-sector packing. In RAM: compact codes + codebook
//! (+ the lookup table per query). Routing ranks candidates with ADC; every
//! expansion fetches the node's block (counted I/O) which also yields the
//! full vector for exact-distance reranking — DiskANN's
//! "PQ distance to route, full precision to rerank" recipe.
//!
//! Substitution (DESIGN.md §4): instead of a datacenter SSD we use a real
//! file plus a configurable per-read latency model; reported "disk I/O
//! time" is `reads × latency`, and QPS charges that virtual time alongside
//! the measured compute. The trade-off curves (Figure 5) are governed by
//! the number of I/Os per query, which is counted exactly.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use rpq_data::Dataset;
use rpq_graph::{Neighbor, ProximityGraph};
use rpq_linalg::distance::sq_l2;
use rpq_quant::{CompactCodes, SoaCodes, VectorCompressor};

use crate::cache::{CacheStats, NodeCache};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Hybrid-index configuration.
#[derive(Clone, Debug)]
pub struct DiskIndexConfig {
    /// Sector size the store aligns blocks to (SSD page, 4 KiB).
    pub sector_bytes: usize,
    /// Modelled latency per sector read, in microseconds (NVMe-class
    /// default).
    pub per_read_latency_us: f32,
    /// How many top-ADC candidates get exact-distance reranking at the end
    /// (DiskANN reranks the search list; extra reads are charged for
    /// candidates not already fetched).
    pub rerank: usize,
    /// Where the store file lives.
    pub path: PathBuf,
    /// Nodes to pin in RAM around the entry vertex (DiskANN's cached beam
    /// search; 0 disables the cache).
    pub cache_nodes: usize,
}

impl DiskIndexConfig {
    /// Defaults with a caller-chosen store path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            sector_bytes: 4096,
            per_read_latency_us: 100.0,
            rerank: 32,
            path: path.into(),
            cache_nodes: 0,
        }
    }
}

/// Per-query statistics for the hybrid scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskSearchStats {
    /// Next-hop selections.
    pub hops: usize,
    /// ADC estimator invocations.
    pub dist_comps: usize,
    /// Sector reads issued.
    pub io_reads: usize,
    /// Modelled I/O time for those reads, in seconds.
    pub io_seconds: f32,
}

/// Sector-aligned on-disk node store.
struct DiskStore {
    file: File,
    block_bytes: usize,
    sectors_per_block: usize,
    max_degree: usize,
    dim: usize,
    n: usize,
    reads: AtomicU64,
}

impl DiskStore {
    fn build(
        path: &Path,
        data: &Dataset,
        graph: &ProximityGraph,
        sector_bytes: usize,
    ) -> io::Result<Self> {
        let n = data.len();
        let dim = data.dim();
        let max_degree = graph.max_degree().max(1);
        let raw = 4 + 4 * max_degree + 4 * dim;
        let block_bytes = raw.div_ceil(sector_bytes) * sector_bytes;
        let mut f = File::create(path)?;
        let mut block = vec![0u8; block_bytes];
        for i in 0..n {
            block.iter_mut().for_each(|b| *b = 0);
            let nbrs = graph.neighbors(i as u32);
            block[0..4].copy_from_slice(&(nbrs.len() as u32).to_le_bytes());
            for (s, &u) in nbrs.iter().enumerate() {
                block[4 + s * 4..8 + s * 4].copy_from_slice(&u.to_le_bytes());
            }
            let voff = 4 + 4 * max_degree;
            for (s, &x) in data.get(i).iter().enumerate() {
                block[voff + s * 4..voff + s * 4 + 4].copy_from_slice(&x.to_le_bytes());
            }
            f.write_all(&block)?;
        }
        f.flush()?;
        let file = File::open(path)?;
        Ok(Self {
            file,
            block_bytes,
            sectors_per_block: block_bytes / sector_bytes,
            max_degree,
            dim,
            n,
            reads: AtomicU64::new(0),
        })
    }

    /// Reads node `i`'s block: returns (neighbors, vector). Counts I/O.
    fn read_node(&self, i: u32, buf: &mut Vec<u8>, vec_out: &mut [f32]) -> io::Result<Vec<u32>> {
        assert!((i as usize) < self.n, "node {i} out of range");
        buf.resize(self.block_bytes, 0);
        let off = (i as u64) * (self.block_bytes as u64);
        #[cfg(unix)]
        self.file.read_exact_at(buf, off)?;
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(buf)?;
        }
        self.reads
            .fetch_add(self.sectors_per_block as u64, Ordering::Relaxed);
        let deg = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let mut nbrs = Vec::with_capacity(deg);
        for s in 0..deg.min(self.max_degree) {
            nbrs.push(u32::from_le_bytes(
                buf[4 + s * 4..8 + s * 4].try_into().unwrap(),
            ));
        }
        let voff = 4 + 4 * self.max_degree;
        for (s, v) in vec_out.iter_mut().enumerate().take(self.dim) {
            *v = f32::from_le_bytes(buf[voff + s * 4..voff + s * 4 + 4].try_into().unwrap());
        }
        Ok(nbrs)
    }

    fn file_bytes(&self) -> usize {
        self.n * self.block_bytes
    }
}

/// A DiskANN-style hybrid index.
///
/// # Example
///
/// ```
/// use rpq_anns::{DiskIndex, DiskIndexConfig};
/// use rpq_data::synth::{SynthConfig, ValueTransform};
/// use rpq_graph::VamanaConfig;
/// use rpq_quant::{PqConfig, ProductQuantizer};
///
/// let data = SynthConfig {
///     dim: 8,
///     intrinsic_dim: 4,
///     clusters: 2,
///     cluster_std: 0.5,
///     noise_std: 0.05,
///     transform: ValueTransform::Identity,
/// }
/// .generate(120, 1);
/// let (base, queries) = data.split_at(100);
/// let graph = VamanaConfig { r: 8, l: 16, ..Default::default() }.build(&base);
/// let pq = ProductQuantizer::train(
///     &PqConfig { m: 4, k: 16, ..Default::default() },
///     &base,
/// );
///
/// // Unique per-process path: concurrent test runs must not share stores.
/// let store = std::env::temp_dir().join(format!("rpq-doctest-{}.store", std::process::id()));
/// let index = DiskIndex::build(pq, &base, &graph, DiskIndexConfig::new(store)).unwrap();
/// let (top, stats) = index.search(queries.get(0), 32, 5);
/// assert_eq!(top.len(), 5);
/// assert!(stats.io_reads > 0); // routing fetched blocks from the store
/// ```
pub struct DiskIndex<C: VectorCompressor> {
    store: DiskStore,
    compressor: C,
    codes: CompactCodes,
    /// Chunk-major mirror of `codes` for the batched ADC kernels
    /// (DESIGN.md §9); routing scores each fetched block's neighbors as one
    /// batch.
    soa: SoaCodes,
    entry: u32,
    cache: Option<NodeCache>,
    cfg: DiskIndexConfig,
}

impl<C: VectorCompressor> DiskIndex<C> {
    /// Writes the node store to `cfg.path` and keeps codes + codebook in
    /// memory.
    pub fn build(
        compressor: C,
        data: &Dataset,
        graph: &ProximityGraph,
        cfg: DiskIndexConfig,
    ) -> io::Result<Self> {
        assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
        assert_eq!(compressor.dim(), data.dim(), "compressor dim mismatch");
        let store = DiskStore::build(&cfg.path, data, graph, cfg.sector_bytes.max(512))?;
        let codes = compressor.encode_dataset(data);
        let soa = SoaCodes::from_compact(&codes);
        let cache = (cfg.cache_nodes > 0).then(|| NodeCache::warm(graph, data, cfg.cache_nodes));
        Ok(Self {
            store,
            compressor,
            codes,
            soa,
            entry: graph.entry(),
            cache,
            cfg,
        })
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.store.n
    }

    /// True when empty (unreachable for built indexes; API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident (RAM) bytes: compact codes (both layouts) + model + node
    /// cache. The graph and vectors are on disk.
    pub fn resident_bytes(&self) -> usize {
        self.codes.memory_bytes()
            + self.soa.memory_bytes()
            + self.compressor.model_bytes()
            + self
                .cache
                .as_ref()
                .map(NodeCache::memory_bytes)
                .unwrap_or(0)
    }

    /// Cache hit/miss counters (zeros when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(NodeCache::stats)
            .unwrap_or_default()
    }

    /// Bytes of the on-disk store (graph + full vectors) — the denominator
    /// of the paper's memory-fraction constraint.
    pub fn disk_bytes(&self) -> usize {
        self.store.file_bytes()
    }

    /// DiskANN beam search: ADC-ranked candidates, per-expansion block
    /// fetches, exact rerank of the final list.
    pub fn search(&self, query: &[f32], ef: usize, k: usize) -> (Vec<Neighbor>, DiskSearchStats) {
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashMap};

        #[derive(PartialEq)]
        struct S(f32, u32);
        impl Eq for S {}
        impl PartialOrd for S {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for S {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
            }
        }

        let ef = ef.max(k).max(1);
        let mut stats = DiskSearchStats::default();
        // Batched SoA estimator when the compressor has one (bit-identical
        // to the scalar path by contract); routing batches each fetched
        // block's unvisited neighbors below either way.
        let est = self
            .compressor
            .batch_estimator(&self.soa, query)
            .unwrap_or_else(|| self.compressor.estimator(&self.codes, query));
        let mut visited: HashMap<u32, ()> = HashMap::new();
        let mut exact: HashMap<u32, f32> = HashMap::new();
        let mut block = Vec::new();
        let mut vec_buf = vec![0.0f32; self.store.dim];
        let mut unvisited: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();

        let start_reads = self.store.reads.load(Ordering::Relaxed);
        let entry = self.entry;
        visited.insert(entry, ());
        let d0 = est.distance(entry);
        stats.dist_comps += 1;

        let mut frontier: BinaryHeap<Reverse<S>> = BinaryHeap::new();
        let mut pool: BinaryHeap<S> = BinaryHeap::with_capacity(ef + 1);
        frontier.push(Reverse(S(d0, entry)));
        pool.push(S(d0, entry));

        while let Some(Reverse(S(d, v))) = frontier.pop() {
            let worst = pool.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
            if pool.len() == ef && d > worst {
                break;
            }
            stats.hops += 1;
            // Fetch v's block: RAM if pinned (cached beam search), else one
            // counted disk read.
            let nbrs: Vec<u32> = match self.cache.as_ref().and_then(|c| c.get(v)) {
                Some((nbrs, vec)) => {
                    exact.insert(v, sq_l2(query, vec));
                    nbrs.to_vec()
                }
                None => {
                    let nbrs = self
                        .store
                        .read_node(v, &mut block, &mut vec_buf)
                        .expect("disk store read failed");
                    exact.insert(v, sq_l2(query, &vec_buf));
                    nbrs
                }
            };
            // Gather the block's unvisited neighbors and score them as one
            // batch; admission runs in the same order with the same values,
            // so results match the per-neighbor loop bit for bit.
            unvisited.clear();
            for u in nbrs {
                if visited.contains_key(&u) {
                    continue;
                }
                visited.insert(u, ());
                unvisited.push(u);
            }
            dists.clear();
            dists.resize(unvisited.len(), 0.0);
            est.distance_batch(&unvisited, &mut dists);
            stats.dist_comps += unvisited.len();
            for (&u, &du) in unvisited.iter().zip(dists.iter()) {
                let worst = pool.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
                if pool.len() < ef || du < worst {
                    frontier.push(Reverse(S(du, u)));
                    pool.push(S(du, u));
                    if pool.len() > ef {
                        pool.pop();
                    }
                }
            }
        }

        // Final rerank: top candidates by ADC get exact distances; those
        // not fetched during routing cost extra reads.
        let mut candidates: Vec<(f32, u32)> = pool.into_iter().map(|S(d, v)| (d, v)).collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        candidates.truncate(self.cfg.rerank.max(k));
        let mut reranked: Vec<Neighbor> = candidates
            .into_iter()
            .map(|(_, v)| {
                let dist = *exact.entry(v).or_insert_with(|| {
                    if let Some((_, vec)) = self.cache.as_ref().and_then(|c| c.get(v)) {
                        return sq_l2(query, vec);
                    }
                    let _ = self
                        .store
                        .read_node(v, &mut block, &mut vec_buf)
                        .expect("rerank read");
                    sq_l2(query, &vec_buf)
                });
                Neighbor { id: v, dist }
            })
            .collect();
        reranked.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        reranked.truncate(k);

        stats.io_reads = (self.store.reads.load(Ordering::Relaxed) - start_reads) as usize;
        stats.io_seconds = stats.io_reads as f32 * self.cfg.per_read_latency_us * 1e-6;
        (reranked, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::ground_truth::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::VamanaConfig;
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let data = SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n + 20, seed);
        data.split_at(n)
    }

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rpq-disk-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.store"))
    }

    fn build_index(
        n: usize,
        seed: u64,
        tag: &str,
    ) -> (DiskIndex<ProductQuantizer>, Dataset, Dataset) {
        let (base, queries) = setup(n, seed);
        let graph = VamanaConfig {
            r: 8,
            l: 32,
            ..Default::default()
        }
        .build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let index =
            DiskIndex::build(pq, &base, &graph, DiskIndexConfig::new(tmp_path(tag))).unwrap();
        (index, base, queries)
    }

    #[test]
    fn rerank_makes_results_exact_quality() {
        let (index, base, queries) = build_index(600, 1, "rerank");
        let gt = brute_force_knn(&base, &queries, 10);
        let mut results = Vec::new();
        for q in queries.iter() {
            let (res, stats) = index.search(q, 60, 10);
            assert!(stats.io_reads > 0, "hybrid search must hit the disk");
            assert!(stats.io_seconds > 0.0);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        // Reranking with exact distances should beat pure-ADC quality.
        assert!(recall > 0.8, "hybrid recall too low: {recall}");
    }

    #[test]
    fn exact_distances_are_reported() {
        let (index, base, queries) = build_index(300, 2, "exactd");
        let q = queries.get(0);
        let (res, _) = index.search(q, 40, 5);
        for n in &res {
            let expect = sq_l2(q, base.get(n.id as usize));
            assert!((n.dist - expect).abs() < 1e-4, "{} vs {expect}", n.dist);
        }
    }

    #[test]
    fn io_grows_with_beam_width() {
        let (index, _, queries) = build_index(600, 3, "iobeam");
        let q = queries.get(0);
        let (_, s_small) = index.search(q, 8, 4);
        let (_, s_large) = index.search(q, 80, 4);
        assert!(
            s_large.io_reads > s_small.io_reads,
            "wider beam must read more: {} vs {}",
            s_large.io_reads,
            s_small.io_reads
        );
    }

    #[test]
    fn resident_memory_is_a_fraction_of_disk() {
        let (index, _, _) = build_index(500, 4, "memfrac");
        let resident = index.resident_bytes();
        let disk = index.disk_bytes();
        assert!(
            resident * 4 < disk,
            "codes+model ({resident}) should be far below the store ({disk})"
        );
    }

    #[test]
    fn node_cache_cuts_io_without_changing_results() {
        let (base, queries) = setup(500, 6);
        let graph = VamanaConfig {
            r: 8,
            l: 32,
            ..Default::default()
        }
        .build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let plain = DiskIndex::build(
            pq.clone(),
            &base,
            &graph,
            DiskIndexConfig::new(tmp_path("nocache")),
        )
        .unwrap();
        let cached = DiskIndex::build(
            pq,
            &base,
            &graph,
            DiskIndexConfig {
                cache_nodes: 200,
                ..DiskIndexConfig::new(tmp_path("cache"))
            },
        )
        .unwrap();
        let q = queries.get(0);
        let (r_plain, s_plain) = plain.search(q, 40, 10);
        let (r_cached, s_cached) = cached.search(q, 40, 10);
        assert_eq!(
            r_plain.iter().map(|n| n.id).collect::<Vec<_>>(),
            r_cached.iter().map(|n| n.id).collect::<Vec<_>>(),
            "cache must not change results"
        );
        assert!(
            s_cached.io_reads < s_plain.io_reads,
            "cache should cut I/O: {} vs {}",
            s_cached.io_reads,
            s_plain.io_reads
        );
        assert!(cached.cache_stats().hits > 0);
    }

    #[test]
    fn store_roundtrips_vectors_and_adjacency() {
        let (base, _) = setup(100, 5);
        let graph = VamanaConfig {
            r: 6,
            l: 16,
            ..Default::default()
        }
        .build(&base);
        let store = DiskStore::build(&tmp_path("roundtrip"), &base, &graph, 4096).unwrap();
        let mut buf = Vec::new();
        let mut v = vec![0.0f32; base.dim()];
        for i in [0u32, 50, 99] {
            let nbrs = store.read_node(i, &mut buf, &mut v).unwrap();
            assert_eq!(nbrs, graph.neighbors(i));
            assert_eq!(&v[..], base.get(i as usize));
        }
    }
}
