//! The SSD+memory hybrid scenario (paper §7): a DiskANN-style index with a
//! pipelined, batch-issue I/O engine.
//!
//! Layout: one sector-aligned block per node in a single file,
//! `[degree u32][neighbor ids u32 × R][vector f32 × D]`, mirroring
//! DiskANN's node-per-sector packing. In RAM: compact codes + codebook
//! (+ the lookup table per query). Routing ranks candidates with ADC; every
//! expansion fetches the node's block (counted I/O) which also yields the
//! full vector for exact-distance reranking — DiskANN's
//! "PQ distance to route, full precision to rerank" recipe.
//!
//! The search loop is staged (DESIGN.md §10): each iteration pops up to
//! [`DiskIndexConfig::io_width`] frontier candidates (DiskANN's beam width
//! `W`), issues their block reads as one batch (`SectorStore::read_batch`)
//! — which coalesces adjacent blocks into single modeled I/O commands — and
//! charges only the I/O time **not hidden** by the previous stage's ADC
//! scoring (`max(io, compute)` pipeline model, tracked as
//! [`DiskSearchStats::io_stall_seconds`]). At `io_width = 1` the traversal
//! is bit-identical to the serial engine ([`DiskIndex::search_serial`], the
//! frozen pre-pipeline reference); wider widths trade extra speculative
//! reads for stage-level overlap, an explicit sweep axis of the `diskio`
//! experiment.
//!
//! Substitution (DESIGN.md §4.2, §10): instead of a datacenter SSD we use a
//! real file plus the queue-depth-aware [`SsdModel`]; reported "disk I/O
//! time" is modeled, and QPS charges the modeled stall alongside measured
//! compute. The trade-off curves (Figure 5) are governed by the number of
//! I/Os per query, which is counted exactly (raw sectors and coalesced
//! commands both).

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rpq_data::{Dataset, LabelPredicate, Labels};
use rpq_graph::{Frontier, Neighbor, ProximityGraph, SearchScratch};
use rpq_linalg::distance::sq_l2;
use rpq_quant::{CompactCodes, SoaCodes, VectorCompressor};

use crate::cache::{CacheStats, NodeCache};
use crate::filter::FilterStrategy;
use crate::ssd::{SsdClock, SsdModel};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Hybrid-index configuration.
#[derive(Clone, Debug)]
pub struct DiskIndexConfig {
    /// Sector size the store aligns blocks to (SSD page, 4 KiB).
    pub sector_bytes: usize,
    /// How many top-ADC candidates get exact-distance reranking at the end
    /// (DiskANN reranks the search list; extra reads are charged for
    /// candidates not already fetched).
    pub rerank: usize,
    /// Where the store file lives.
    pub path: PathBuf,
    /// Nodes to pin in RAM (DiskANN's cached beam search; 0 disables the
    /// cache). Warmed by BFS from the entry at build time; replaceable with
    /// trace-driven admission via [`DiskIndex::warm_cache_by_trace`].
    pub cache_nodes: usize,
    /// Frontier candidates fetched per pipeline stage (DiskANN's beam
    /// width `W`). 1 = the serial best-first engine, bit-identical to
    /// [`DiskIndex::search_serial`].
    pub io_width: usize,
    /// The simulated device (DESIGN.md §10). The default reproduces the
    /// legacy fixed 100 µs/sector model exactly.
    pub ssd: SsdModel,
}

impl DiskIndexConfig {
    /// Defaults with a caller-chosen store path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            sector_bytes: 4096,
            rerank: 32,
            path: path.into(),
            cache_nodes: 0,
            io_width: 1,
            ssd: SsdModel::fixed(100.0),
        }
    }
}

/// Per-query statistics for the hybrid scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskSearchStats {
    /// Next-hop selections.
    pub hops: usize,
    /// ADC estimator invocations.
    pub dist_comps: usize,
    /// Raw sector reads issued (coalescing does not change this count).
    pub io_reads: usize,
    /// Modeled I/O commands after coalescing adjacent blocks — what the
    /// device actually services.
    pub coalesced_ios: usize,
    /// Raw sector reads attributable to the final rerank (candidates never
    /// fetched during routing); included in `io_reads`.
    pub rerank_reads: usize,
    /// Node lookups served from the RAM cache.
    pub cache_hits: usize,
    /// Node lookups that went to the store (or would have, with no cache).
    pub cache_misses: usize,
    /// Modeled device time for all commands, in seconds.
    pub io_seconds: f32,
    /// The part of `io_seconds` **not hidden** behind ADC compute by the
    /// stage pipeline — what the query actually waits for. Equals
    /// `io_seconds` at `io_width = 1` (no overlap in the serial engine).
    pub io_stall_seconds: f32,
    /// Queue wait observed on a shared [`SsdClock`] under concurrent
    /// serving (0 when no clock is attached).
    pub io_queue_seconds: f32,
}

/// Max-heap entry for the bounded result pool (distance then id, matching
/// the deterministic tie-break everywhere else).
#[derive(PartialEq)]
struct Pooled(f32, u32);
impl Eq for Pooled {}
impl PartialOrd for Pooled {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Pooled {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
    }
}

/// A staged expansion with its cache probe resolved: `Some((neighbors,
/// vector))` on a hit, `None` when the block must come from the batch read.
type StagedNode<'a> = (u32, Option<(&'a [u32], &'a [f32])>);

/// One node block parsed out of the store.
#[derive(Default)]
struct NodeBlock {
    neighbors: Vec<u32>,
    vector: Vec<f32>,
}

/// Reusable result of a [`SectorStore::read_batch`]: parsed blocks aligned
/// with the (ascending) requested ids, plus the modeled I/O shape.
#[derive(Default)]
struct BatchRead {
    ids: Vec<u32>,
    blocks: Vec<NodeBlock>,
    /// Sectors per coalesced command (adjacent requested blocks merge).
    spans: Vec<usize>,
    /// Total raw sectors read (== Σ spans).
    raw_sectors: usize,
    bytes: Vec<u8>,
}

impl BatchRead {
    /// The parsed block for `id`; panics if it was not in the batch.
    fn block(&self, id: u32) -> &NodeBlock {
        let i = self.ids.binary_search(&id).expect("id not in batch read");
        &self.blocks[i]
    }
}

/// Sector-aligned on-disk node store.
struct SectorStore {
    file: File,
    block_bytes: usize,
    sectors_per_block: usize,
    max_degree: usize,
    dim: usize,
    n: usize,
    reads: AtomicU64,
}

impl SectorStore {
    fn build(
        path: &Path,
        data: &Dataset,
        graph: &ProximityGraph,
        sector_bytes: usize,
    ) -> io::Result<Self> {
        let n = data.len();
        let dim = data.dim();
        let max_degree = graph.max_degree().max(1);
        let raw = 4 + 4 * max_degree + 4 * dim;
        let block_bytes = raw.div_ceil(sector_bytes) * sector_bytes;
        let mut f = File::create(path)?;
        let mut block = vec![0u8; block_bytes];
        for i in 0..n {
            block.iter_mut().for_each(|b| *b = 0);
            let nbrs = graph.neighbors(i as u32);
            block[0..4].copy_from_slice(&(nbrs.len() as u32).to_le_bytes());
            for (s, &u) in nbrs.iter().enumerate() {
                block[4 + s * 4..8 + s * 4].copy_from_slice(&u.to_le_bytes());
            }
            let voff = 4 + 4 * max_degree;
            for (s, &x) in data.get(i).iter().enumerate() {
                block[voff + s * 4..voff + s * 4 + 4].copy_from_slice(&x.to_le_bytes());
            }
            f.write_all(&block)?;
        }
        f.flush()?;
        let file = File::open(path)?;
        Ok(Self {
            file,
            block_bytes,
            sectors_per_block: block_bytes / sector_bytes,
            max_degree,
            dim,
            n,
            reads: AtomicU64::new(0),
        })
    }

    fn read_exact_at_off(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        #[cfg(unix)]
        return self.file.read_exact_at(buf, off);
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(buf)
        }
    }

    /// Parses a raw block image into adjacency + vector.
    fn parse_block(&self, bytes: &[u8], out: &mut NodeBlock) {
        let deg = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        out.neighbors.clear();
        for s in 0..deg.min(self.max_degree) {
            out.neighbors.push(u32::from_le_bytes(
                bytes[4 + s * 4..8 + s * 4].try_into().unwrap(),
            ));
        }
        let voff = 4 + 4 * self.max_degree;
        out.vector.clear();
        for s in 0..self.dim {
            out.vector.push(f32::from_le_bytes(
                bytes[voff + s * 4..voff + s * 4 + 4].try_into().unwrap(),
            ));
        }
    }

    /// Reads node `i`'s block: returns (neighbors, vector). Counts I/O.
    /// The serial engine's primitive; the pipelined path uses
    /// [`SectorStore::read_batch`].
    fn read_node(&self, i: u32, buf: &mut Vec<u8>, vec_out: &mut [f32]) -> io::Result<Vec<u32>> {
        assert!((i as usize) < self.n, "node {i} out of range");
        buf.resize(self.block_bytes, 0);
        let off = (i as u64) * (self.block_bytes as u64);
        self.read_exact_at_off(buf, off)?;
        self.reads
            .fetch_add(self.sectors_per_block as u64, Ordering::Relaxed);
        let deg = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let mut nbrs = Vec::with_capacity(deg);
        for s in 0..deg.min(self.max_degree) {
            nbrs.push(u32::from_le_bytes(
                buf[4 + s * 4..8 + s * 4].try_into().unwrap(),
            ));
        }
        let voff = 4 + 4 * self.max_degree;
        for (s, v) in vec_out.iter_mut().enumerate().take(self.dim) {
            *v = f32::from_le_bytes(buf[voff + s * 4..voff + s * 4 + 4].try_into().unwrap());
        }
        Ok(nbrs)
    }

    /// Reads the blocks of `ids` (ascending, unique) as a batch, coalescing
    /// runs of adjacent blocks into single commands: one modeled I/O per
    /// run, `run length × sectors_per_block` sectors each. Raw sector
    /// counts are unchanged by coalescing — only the command count (and
    /// with a nonzero per-command cost, the modeled time) shrinks.
    fn read_batch(&self, ids: &[u32], out: &mut BatchRead) -> io::Result<()> {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        out.ids.clear();
        out.ids.extend_from_slice(ids);
        out.spans.clear();
        out.raw_sectors = 0;
        out.blocks
            .resize_with(ids.len().max(out.blocks.len()), NodeBlock::default);
        if ids.is_empty() {
            return Ok(());
        }
        assert!((ids[ids.len() - 1] as usize) < self.n, "node out of range");
        let mut parsed = 0usize;
        let mut run_start = 0usize;
        while run_start < ids.len() {
            let mut run_end = run_start + 1;
            while run_end < ids.len() && ids[run_end] == ids[run_end - 1] + 1 {
                run_end += 1;
            }
            let run_len = run_end - run_start;
            out.bytes.resize(run_len * self.block_bytes, 0);
            let off = (ids[run_start] as u64) * (self.block_bytes as u64);
            self.read_exact_at_off(&mut out.bytes, off)?;
            for j in 0..run_len {
                let img = &out.bytes[j * self.block_bytes..(j + 1) * self.block_bytes];
                self.parse_block(img, &mut out.blocks[parsed]);
                parsed += 1;
            }
            let sectors = run_len * self.sectors_per_block;
            out.spans.push(sectors);
            out.raw_sectors += sectors;
            run_start = run_end;
        }
        self.reads
            .fetch_add(out.raw_sectors as u64, Ordering::Relaxed);
        Ok(())
    }

    fn file_bytes(&self) -> usize {
        self.n * self.block_bytes
    }
}

/// A DiskANN-style hybrid index.
///
/// # Example
///
/// ```
/// use rpq_anns::{DiskIndex, DiskIndexConfig};
/// use rpq_data::synth::{SynthConfig, ValueTransform};
/// use rpq_graph::VamanaConfig;
/// use rpq_quant::{PqConfig, ProductQuantizer};
///
/// let data = SynthConfig {
///     dim: 8,
///     intrinsic_dim: 4,
///     clusters: 2,
///     cluster_std: 0.5,
///     noise_std: 0.05,
///     transform: ValueTransform::Identity,
/// }
/// .generate(120, 1);
/// let (base, queries) = data.split_at(100);
/// let graph = VamanaConfig { r: 8, l: 16, ..Default::default() }.build(&base);
/// let pq = ProductQuantizer::train(
///     &PqConfig { m: 4, k: 16, ..Default::default() },
///     &base,
/// );
///
/// // Unique per-process path: concurrent test runs must not share stores.
/// let store = std::env::temp_dir().join(format!("rpq-doctest-{}.store", std::process::id()));
/// let index = DiskIndex::build(pq, &base, &graph, DiskIndexConfig::new(store)).unwrap();
/// let (top, stats) = index.search(queries.get(0), 32, 5);
/// assert_eq!(top.len(), 5);
/// assert!(stats.io_reads > 0); // routing fetched blocks from the store
/// assert!(stats.coalesced_ios <= stats.io_reads);
/// ```
pub struct DiskIndex<C: VectorCompressor> {
    store: SectorStore,
    compressor: C,
    codes: CompactCodes,
    /// Chunk-major mirror of `codes` for the batched ADC kernels
    /// (DESIGN.md §9); routing scores each fetched block's neighbors as one
    /// batch.
    soa: SoaCodes,
    entry: u32,
    cache: Option<NodeCache>,
    /// Shared device timeline for concurrent serving (queue wait).
    clock: Option<Arc<SsdClock>>,
    /// Per-vector label sets for filtered search (DESIGN.md §12); labels
    /// live in RAM next to the codes — one u32 per vector.
    labels: Option<Labels>,
    cfg: DiskIndexConfig,
}

impl<C: VectorCompressor> DiskIndex<C> {
    /// Writes the node store to `cfg.path` and keeps codes + codebook in
    /// memory.
    pub fn build(
        compressor: C,
        data: &Dataset,
        graph: &ProximityGraph,
        cfg: DiskIndexConfig,
    ) -> io::Result<Self> {
        assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
        assert_eq!(compressor.dim(), data.dim(), "compressor dim mismatch");
        let store = SectorStore::build(&cfg.path, data, graph, cfg.sector_bytes.max(512))?;
        let codes = compressor.encode_dataset(data);
        let soa = SoaCodes::from_compact(&codes);
        let cache = (cfg.cache_nodes > 0).then(|| NodeCache::warm(graph, data, cfg.cache_nodes));
        Ok(Self {
            store,
            compressor,
            codes,
            soa,
            entry: graph.entry(),
            cache,
            clock: None,
            labels: None,
            cfg,
        })
    }

    /// Attaches per-vector labels, enabling [`DiskIndex::search_filtered`].
    /// Labels stay resident (one `u32` per vector, next to the codes).
    pub fn set_labels(&mut self, labels: Labels) {
        assert_eq!(labels.len(), self.store.n, "labels/index size mismatch");
        self.labels = Some(labels);
    }

    /// The attached labels, if any.
    pub fn labels(&self) -> Option<&Labels> {
        self.labels.as_ref()
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.store.n
    }

    /// True when empty (unreachable for built indexes; API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident (RAM) bytes: compact codes (both layouts) + model + node
    /// cache. The graph and vectors are on disk.
    pub fn resident_bytes(&self) -> usize {
        self.codes.memory_bytes()
            + self.soa.memory_bytes()
            + self.compressor.model_bytes()
            + self
                .cache
                .as_ref()
                .map(NodeCache::memory_bytes)
                .unwrap_or(0)
            + self.labels.as_ref().map_or(0, Labels::memory_bytes)
    }

    /// Cache hit/miss counters (zeros when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(NodeCache::stats)
            .unwrap_or_default()
    }

    /// Bytes of the on-disk store (graph + full vectors) — the denominator
    /// of the paper's memory-fraction constraint.
    pub fn disk_bytes(&self) -> usize {
        self.store.file_bytes()
    }

    /// Re-points the engine at a different I/O policy (beam width `W` and
    /// device model) without rebuilding the store — how the `diskio`
    /// experiment sweeps `io_width × queue depth` over one index.
    pub fn set_io_policy(&mut self, io_width: usize, ssd: SsdModel) {
        self.cfg.io_width = io_width.max(1);
        self.cfg.ssd = ssd;
    }

    /// Attaches a shared device timeline: every batch issued by this index
    /// reserves its modeled occupancy on `clock` and observes queue wait
    /// ([`DiskSearchStats::io_queue_seconds`]). Sharded serving attaches
    /// one clock to all disk shards so concurrent queries contend for one
    /// modeled device.
    pub fn attach_clock(&mut self, clock: Arc<SsdClock>) {
        self.clock = Some(clock);
    }

    /// Replaces the BFS-warmed cache with **frequency-based admission**:
    /// runs `queries` as warm-up traffic, counts every node-block access
    /// (cache hits included, rerank fetches included), and pins the
    /// `cfg.cache_nodes` most-accessed nodes — ties broken by id for
    /// determinism. Returns the number of pinned nodes. Hit/miss counters
    /// start fresh; warm-up reads are not charged to any query's stats.
    pub fn warm_cache_by_trace(&mut self, queries: &Dataset, ef: usize) -> usize {
        let capacity = self.cfg.cache_nodes;
        if capacity == 0 || queries.is_empty() {
            return self.cache.as_ref().map(NodeCache::len).unwrap_or(0);
        }
        let mut counts = vec![0u64; self.store.n];
        let mut scratch = SearchScratch::with_capacity(self.store.n);
        let k = ef.clamp(1, 10);
        for q in queries.iter() {
            let _ = self.search_impl(q, ef, k, &mut scratch, Some(&mut counts), None);
        }
        let mut ranked: Vec<(u64, u32)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (c, i as u32))
            .collect();
        // Most-frequent first; ascending id on ties keeps admission
        // deterministic.
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.truncate(capacity);
        let mut ids: Vec<u32> = ranked.iter().map(|&(_, v)| v).collect();
        ids.sort_unstable();
        let mut batch = BatchRead::default();
        self.store
            .read_batch(&ids, &mut batch)
            .expect("cache warm-up read failed");
        let entries = ids.iter().enumerate().map(|(i, &v)| {
            (
                v,
                batch.blocks[i].neighbors.clone(),
                batch.blocks[i].vector.clone(),
            )
        });
        let cache = NodeCache::pin(entries);
        let pinned = cache.len();
        self.cache = Some(cache);
        pinned
    }

    /// DiskANN beam search through the pipelined engine, allocating a
    /// fresh scratch. Sweeps and serving reuse a scratch via
    /// [`DiskIndex::search_with_scratch`] instead.
    pub fn search(&self, query: &[f32], ef: usize, k: usize) -> (Vec<Neighbor>, DiskSearchStats) {
        let mut scratch = SearchScratch::with_capacity(self.store.n);
        self.search_with_scratch(query, ef, k, &mut scratch)
    }

    /// DiskANN beam search: ADC-ranked candidates, staged batch block
    /// fetches ([`DiskIndexConfig::io_width`] per stage), exact rerank of
    /// the final list through the same batch API. At `io_width = 1`
    /// results are bit-identical to [`DiskIndex::search_serial`].
    pub fn search_with_scratch(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, DiskSearchStats) {
        self.search_impl(query, ef, k, scratch, None, None)
    }

    /// DiskANN beam search restricted to vectors satisfying `pred`
    /// (DESIGN.md §12). [`FilterStrategy::DuringTraversal`] mirrors the
    /// in-memory dual-heap kernel: the unfiltered pool still drives
    /// admission and termination (routing survives low selectivity) while
    /// a second bounded heap collects matches, which then rerank as usual.
    /// [`FilterStrategy::PostFilter`] searches unfiltered at an inflated
    /// `ef` and filters the reranked results. Panics unless labels were
    /// attached with [`DiskIndex::set_labels`].
    pub fn search_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, DiskSearchStats) {
        let labels = self
            .labels
            .as_ref()
            .expect("search_filtered requires labels (DiskIndex::set_labels)");
        match strategy {
            FilterStrategy::DuringTraversal => {
                let accept = labels.accept_fn(pred);
                self.search_impl(query, ef, k, scratch, None, Some(&accept))
            }
            FilterStrategy::PostFilter { .. } => {
                let big_ef = strategy.inflated_ef(ef);
                let (mut res, stats) = self.search_impl(query, big_ef, big_ef, scratch, None, None);
                res.retain(|n| labels.matches(n.id as usize, pred));
                res.truncate(k);
                (res, stats)
            }
        }
    }

    fn search_impl(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
        mut trace: Option<&mut Vec<u64>>,
        accept: Option<&dyn Fn(u32) -> bool>,
    ) -> (Vec<Neighbor>, DiskSearchStats) {
        use std::collections::BinaryHeap;

        let ef = ef.max(k).max(1);
        let io_width = self.cfg.io_width.max(1);
        let ssd = &self.cfg.ssd;
        let mut stats = DiskSearchStats::default();
        let est = self
            .compressor
            .batch_estimator(&self.soa, query)
            .unwrap_or_else(|| self.compressor.estimator(&self.codes, query));

        scratch.begin(self.store.n);
        let entry = self.entry;
        scratch.visit(entry);
        let d0 = est.distance(entry);
        stats.dist_comps += 1;

        let mut frontier = Frontier::new();
        let mut pool: BinaryHeap<Pooled> = BinaryHeap::with_capacity(ef + 1);
        frontier.push(d0, entry);
        pool.push(Pooled(d0, entry));
        // Filtered traversal keeps a second bounded heap of matches — the
        // disk-engine twin of `beam_search_filtered`'s accepted heap. The
        // unfiltered pool is untouched, so routing (and the unfiltered
        // path's bit-identity to the serial oracle) is unaffected.
        let mut accepted: BinaryHeap<Pooled> = BinaryHeap::new();
        if let Some(acc) = accept {
            if acc(entry) {
                accepted.push(Pooled(d0, entry));
            }
        }

        let mut batch = BatchRead::default();
        let mut miss_ids: Vec<u32> = Vec::new();
        // Stage nodes with their cache lookups resolved at pop time (one
        // counted cache probe per expansion, hit or miss).
        let mut plan: Vec<StagedNode> = Vec::new();
        let (mut unvisited, mut dists) = scratch.take_gather();
        // Compute seconds of the previous stage — the budget this stage's
        // modeled I/O can hide behind (max(io, compute) pipeline model).
        let mut prev_compute = 0.0f32;

        loop {
            let bound = if pool.len() == ef {
                pool.peek().map(|s| s.0).unwrap_or(f32::INFINITY)
            } else {
                f32::INFINITY
            };
            let stage = scratch.pop_frontier_batch(&mut frontier, io_width, bound);
            if stage.is_empty() {
                scratch.recycle_stage(stage);
                break;
            }
            stats.hops += stage.len();

            // Resolve cache hits and gather the miss set (ascending for
            // coalescing; stage nodes are unique by the visited discipline).
            plan.clear();
            miss_ids.clear();
            for &(_, v) in &stage {
                if let Some(t) = trace.as_deref_mut() {
                    t[v as usize] += 1;
                }
                match self.cache.as_ref().and_then(|c| c.get(v)) {
                    Some(hit) => {
                        stats.cache_hits += 1;
                        plan.push((v, Some(hit)));
                    }
                    None => {
                        stats.cache_misses += 1;
                        miss_ids.push(v);
                        plan.push((v, None));
                    }
                }
            }
            miss_ids.sort_unstable();
            let stage_io_us = if miss_ids.is_empty() {
                0.0
            } else {
                self.store
                    .read_batch(&miss_ids, &mut batch)
                    .expect("disk store read failed");
                stats.io_reads += batch.raw_sectors;
                stats.coalesced_ios += batch.spans.len();
                ssd.batch_us(batch.spans.iter().copied(), io_width)
            };
            if stage_io_us > 0.0 {
                if let Some(clock) = &self.clock {
                    stats.io_queue_seconds += clock.reserve(stage_io_us) * 1e-6;
                }
            }
            stats.io_seconds += stage_io_us * 1e-6;

            // Score and admit, in popped (distance) order — identical to
            // the serial loop at io_width = 1.
            let t0 = Instant::now();
            for &(v, cached) in &plan {
                let (nbrs, vector): (&[u32], &[f32]) = match cached {
                    Some((nbrs, vec)) => (nbrs, vec),
                    None => {
                        let b = batch.block(v);
                        (&b.neighbors, &b.vector)
                    }
                };
                scratch.memo_insert(v, sq_l2(query, vector));
                unvisited.clear();
                for &u in nbrs {
                    if scratch.visit(u) {
                        unvisited.push(u);
                    }
                }
                dists.clear();
                dists.resize(unvisited.len(), 0.0);
                est.distance_batch(&unvisited, &mut dists);
                stats.dist_comps += unvisited.len();
                for (&u, &du) in unvisited.iter().zip(dists.iter()) {
                    let worst = pool.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
                    if pool.len() < ef || du < worst {
                        frontier.push(du, u);
                        pool.push(Pooled(du, u));
                        if pool.len() > ef {
                            pool.pop();
                        }
                    }
                    if let Some(acc) = accept {
                        if acc(u) {
                            let worst_a = accepted.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
                            if accepted.len() < ef || du < worst_a {
                                accepted.push(Pooled(du, u));
                                if accepted.len() > ef {
                                    accepted.pop();
                                }
                            }
                        }
                    }
                }
            }
            let stage_compute = t0.elapsed().as_secs_f32();

            // Pipeline time model: a stage's reads overlap the previous
            // stage's scoring. The serial engine (width 1) cannot overlap —
            // it blocks on every read, exactly like the pre-pipeline model.
            let stall_us = if io_width == 1 {
                stage_io_us
            } else {
                (stage_io_us - prev_compute * 1e6).max(0.0)
            };
            stats.io_stall_seconds += stall_us * 1e-6;
            prev_compute = stage_compute;
            scratch.recycle_stage(stage);
        }
        scratch.put_gather(unvisited, dists);

        // Final rerank: top candidates by ADC get exact distances; those
        // not fetched during routing cost extra (batched, coalesced,
        // separately counted) reads. Filtered traversal reranks the
        // accepted heap instead — matches that routed past without
        // expansion get fetched here.
        let result_pool = if accept.is_some() { accepted } else { pool };
        let mut candidates: Vec<(f32, u32)> =
            result_pool.into_iter().map(|Pooled(d, v)| (d, v)).collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        candidates.truncate(self.cfg.rerank.max(k));
        miss_ids.clear();
        for &(_, v) in &candidates {
            if scratch.memo_get(v).is_some() {
                continue;
            }
            if let Some(t) = trace.as_deref_mut() {
                t[v as usize] += 1;
            }
            match self.cache.as_ref().and_then(|c| c.get(v)) {
                Some((_, vec)) => {
                    stats.cache_hits += 1;
                    scratch.memo_insert(v, sq_l2(query, vec));
                }
                None => {
                    stats.cache_misses += 1;
                    miss_ids.push(v);
                }
            }
        }
        if !miss_ids.is_empty() {
            miss_ids.sort_unstable();
            self.store
                .read_batch(&miss_ids, &mut batch)
                .expect("rerank read failed");
            stats.io_reads += batch.raw_sectors;
            stats.rerank_reads += batch.raw_sectors;
            stats.coalesced_ios += batch.spans.len();
            let io_us = ssd.batch_us(batch.spans.iter().copied(), io_width);
            if let Some(clock) = &self.clock {
                stats.io_queue_seconds += clock.reserve(io_us) * 1e-6;
            }
            stats.io_seconds += io_us * 1e-6;
            // Nothing overlaps the tail rerank: charge it in full.
            stats.io_stall_seconds += io_us * 1e-6;
            for (i, &v) in batch.ids.iter().enumerate() {
                scratch.memo_insert(v, sq_l2(query, &batch.blocks[i].vector));
            }
        }
        let mut reranked: Vec<Neighbor> = candidates
            .into_iter()
            .map(|(_, v)| Neighbor {
                id: v,
                dist: scratch.memo_get(v).expect("reranked candidate memoised"),
            })
            .collect();
        reranked.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        reranked.truncate(k);
        (reranked, stats)
    }

    /// The frozen pre-pipeline engine: one blocking read per expansion,
    /// per-query hash maps, serial rerank reads. Kept verbatim as the
    /// bit-equality oracle for [`DiskIndex::search_with_scratch`] at
    /// `io_width = 1` and as the `diskio` experiment's honest serial
    /// baseline. I/O time is the same [`SsdModel`] with no batching and no
    /// overlap.
    pub fn search_serial(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
    ) -> (Vec<Neighbor>, DiskSearchStats) {
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashMap};

        let ef = ef.max(k).max(1);
        let mut stats = DiskSearchStats::default();
        let est = self
            .compressor
            .batch_estimator(&self.soa, query)
            .unwrap_or_else(|| self.compressor.estimator(&self.codes, query));
        let mut visited: HashMap<u32, ()> = HashMap::new();
        let mut exact: HashMap<u32, f32> = HashMap::new();
        let mut block = Vec::new();
        let mut vec_buf = vec![0.0f32; self.store.dim];
        let mut unvisited: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();
        let per_read_us = self.cfg.ssd.service_time_us(self.store.sectors_per_block);

        let entry = self.entry;
        visited.insert(entry, ());
        let d0 = est.distance(entry);
        stats.dist_comps += 1;

        let mut frontier: BinaryHeap<Reverse<Pooled>> = BinaryHeap::new();
        let mut pool: BinaryHeap<Pooled> = BinaryHeap::with_capacity(ef + 1);
        frontier.push(Reverse(Pooled(d0, entry)));
        pool.push(Pooled(d0, entry));

        while let Some(Reverse(Pooled(d, v))) = frontier.pop() {
            let worst = pool.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
            if pool.len() == ef && d > worst {
                break;
            }
            stats.hops += 1;
            let nbrs: Vec<u32> = match self.cache.as_ref().and_then(|c| c.get(v)) {
                Some((nbrs, vec)) => {
                    stats.cache_hits += 1;
                    exact.insert(v, sq_l2(query, vec));
                    nbrs.to_vec()
                }
                None => {
                    stats.cache_misses += 1;
                    let nbrs = self
                        .store
                        .read_node(v, &mut block, &mut vec_buf)
                        .expect("disk store read failed");
                    stats.io_reads += self.store.sectors_per_block;
                    stats.coalesced_ios += 1;
                    exact.insert(v, sq_l2(query, &vec_buf));
                    nbrs
                }
            };
            unvisited.clear();
            for u in nbrs {
                if visited.contains_key(&u) {
                    continue;
                }
                visited.insert(u, ());
                unvisited.push(u);
            }
            dists.clear();
            dists.resize(unvisited.len(), 0.0);
            est.distance_batch(&unvisited, &mut dists);
            stats.dist_comps += unvisited.len();
            for (&u, &du) in unvisited.iter().zip(dists.iter()) {
                let worst = pool.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
                if pool.len() < ef || du < worst {
                    frontier.push(Reverse(Pooled(du, u)));
                    pool.push(Pooled(du, u));
                    if pool.len() > ef {
                        pool.pop();
                    }
                }
            }
        }

        let mut candidates: Vec<(f32, u32)> = pool.into_iter().map(|Pooled(d, v)| (d, v)).collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        candidates.truncate(self.cfg.rerank.max(k));
        let mut reranked: Vec<Neighbor> = candidates
            .into_iter()
            .map(|(_, v)| {
                let dist = *exact.entry(v).or_insert_with(|| {
                    if let Some((_, vec)) = self.cache.as_ref().and_then(|c| c.get(v)) {
                        return sq_l2(query, vec);
                    }
                    let _ = self
                        .store
                        .read_node(v, &mut block, &mut vec_buf)
                        .expect("rerank read");
                    stats.io_reads += self.store.sectors_per_block;
                    stats.rerank_reads += self.store.sectors_per_block;
                    stats.coalesced_ios += 1;
                    sq_l2(query, &vec_buf)
                });
                Neighbor { id: v, dist }
            })
            .collect();
        reranked.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        reranked.truncate(k);

        // One blocking command per block read: the full per-command service
        // time, every time, nothing overlapped.
        stats.io_seconds =
            (stats.io_reads / self.store.sectors_per_block) as f32 * per_read_us * 1e-6;
        stats.io_stall_seconds = stats.io_seconds;
        (reranked, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::ground_truth::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::VamanaConfig;
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let data = SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n + 20, seed);
        data.split_at(n)
    }

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rpq-disk-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.store"))
    }

    fn build_index(
        n: usize,
        seed: u64,
        tag: &str,
    ) -> (DiskIndex<ProductQuantizer>, Dataset, Dataset) {
        build_index_with(n, seed, tag, 0)
    }

    fn build_index_with(
        n: usize,
        seed: u64,
        tag: &str,
        cache_nodes: usize,
    ) -> (DiskIndex<ProductQuantizer>, Dataset, Dataset) {
        let (base, queries) = setup(n, seed);
        let graph = VamanaConfig {
            r: 8,
            l: 32,
            ..Default::default()
        }
        .build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let index = DiskIndex::build(
            pq,
            &base,
            &graph,
            DiskIndexConfig {
                cache_nodes,
                ..DiskIndexConfig::new(tmp_path(tag))
            },
        )
        .unwrap();
        (index, base, queries)
    }

    fn ids(res: &[Neighbor]) -> Vec<u32> {
        res.iter().map(|n| n.id).collect()
    }

    fn assert_bit_identical(a: &[Neighbor], b: &[Neighbor], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: result lengths differ");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id, "{ctx}: ids diverge");
            assert_eq!(
                x.dist.to_bits(),
                y.dist.to_bits(),
                "{ctx}: distances not bit-identical ({} vs {})",
                x.dist,
                y.dist
            );
        }
    }

    #[test]
    fn rerank_makes_results_exact_quality() {
        let (index, base, queries) = build_index(600, 1, "rerank");
        let gt = brute_force_knn(&base, &queries, 10);
        let mut results = Vec::new();
        for q in queries.iter() {
            let (res, stats) = index.search(q, 60, 10);
            assert!(stats.io_reads > 0, "hybrid search must hit the disk");
            assert!(stats.io_seconds > 0.0);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        // Reranking with exact distances should beat pure-ADC quality.
        assert!(recall > 0.8, "hybrid recall too low: {recall}");
    }

    #[test]
    fn exact_distances_are_reported() {
        let (index, base, queries) = build_index(300, 2, "exactd");
        let q = queries.get(0);
        let (res, _) = index.search(q, 40, 5);
        for n in &res {
            let expect = sq_l2(q, base.get(n.id as usize));
            assert!((n.dist - expect).abs() < 1e-4, "{} vs {expect}", n.dist);
        }
    }

    #[test]
    fn io_grows_with_beam_width() {
        let (index, _, queries) = build_index(600, 3, "iobeam");
        let q = queries.get(0);
        let (_, s_small) = index.search(q, 8, 4);
        let (_, s_large) = index.search(q, 80, 4);
        assert!(
            s_large.io_reads > s_small.io_reads,
            "wider beam must read more: {} vs {}",
            s_large.io_reads,
            s_small.io_reads
        );
    }

    #[test]
    fn resident_memory_is_a_fraction_of_disk() {
        let (index, _, _) = build_index(500, 4, "memfrac");
        let resident = index.resident_bytes();
        let disk = index.disk_bytes();
        assert!(
            resident * 4 < disk,
            "codes+model ({resident}) should be far below the store ({disk})"
        );
    }

    #[test]
    fn node_cache_cuts_io_without_changing_results() {
        let (base, queries) = setup(500, 6);
        let graph = VamanaConfig {
            r: 8,
            l: 32,
            ..Default::default()
        }
        .build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let plain = DiskIndex::build(
            pq.clone(),
            &base,
            &graph,
            DiskIndexConfig::new(tmp_path("nocache")),
        )
        .unwrap();
        let cached = DiskIndex::build(
            pq,
            &base,
            &graph,
            DiskIndexConfig {
                cache_nodes: 200,
                ..DiskIndexConfig::new(tmp_path("cache"))
            },
        )
        .unwrap();
        let q = queries.get(0);
        let (r_plain, s_plain) = plain.search(q, 40, 10);
        let (r_cached, s_cached) = cached.search(q, 40, 10);
        assert_eq!(
            ids(&r_plain),
            ids(&r_cached),
            "cache must not change results"
        );
        assert!(
            s_cached.io_reads < s_plain.io_reads,
            "cache should cut I/O: {} vs {}",
            s_cached.io_reads,
            s_plain.io_reads
        );
        assert!(s_cached.cache_hits > 0, "per-query hit counter must move");
        assert!(cached.cache_stats().hits > 0);
    }

    #[test]
    fn store_roundtrips_vectors_and_adjacency() {
        let (base, _) = setup(100, 5);
        let graph = VamanaConfig {
            r: 6,
            l: 16,
            ..Default::default()
        }
        .build(&base);
        let store = SectorStore::build(&tmp_path("roundtrip"), &base, &graph, 4096).unwrap();
        let mut buf = Vec::new();
        let mut v = vec![0.0f32; base.dim()];
        for i in [0u32, 50, 99] {
            let nbrs = store.read_node(i, &mut buf, &mut v).unwrap();
            assert_eq!(nbrs, graph.neighbors(i));
            assert_eq!(&v[..], base.get(i as usize));
        }
    }

    #[test]
    fn batch_read_coalesces_adjacent_blocks() {
        let (base, _) = setup(120, 8);
        let graph = VamanaConfig {
            r: 6,
            l: 16,
            ..Default::default()
        }
        .build(&base);
        let store = SectorStore::build(&tmp_path("coalesce"), &base, &graph, 4096).unwrap();
        let spb = store.sectors_per_block;

        // Four adjacent blocks collapse into one command spanning 4×spb
        // sectors; raw sectors are unchanged.
        let mut batch = BatchRead::default();
        store.read_batch(&[10, 11, 12, 13], &mut batch).unwrap();
        assert_eq!(batch.spans, vec![4 * spb], "adjacent run must coalesce");
        assert_eq!(batch.raw_sectors, 4 * spb);

        // Disjoint blocks stay separate commands.
        store.read_batch(&[1, 5, 9], &mut batch).unwrap();
        assert_eq!(batch.spans, vec![spb, spb, spb]);
        assert_eq!(batch.raw_sectors, 3 * spb);

        // Mixed: two runs.
        store.read_batch(&[3, 4, 90], &mut batch).unwrap();
        assert_eq!(batch.spans, vec![2 * spb, spb]);

        // Batched contents must match the serial primitive byte for byte.
        let mut buf = Vec::new();
        let mut v = vec![0.0f32; base.dim()];
        store.read_batch(&[3, 4, 90], &mut batch).unwrap();
        for &id in &[3u32, 4, 90] {
            let nbrs = store.read_node(id, &mut buf, &mut v).unwrap();
            let block = batch.block(id);
            assert_eq!(block.neighbors, nbrs);
            assert_eq!(block.vector, v);
        }
    }

    #[test]
    fn width1_is_bit_identical_to_the_serial_oracle() {
        let (index, _, queries) = build_index(600, 9, "bitident");
        for (qi, q) in queries.iter().enumerate() {
            let (pipe, sp) = index.search(q, 50, 10);
            let (serial, ss) = index.search_serial(q, 50, 10);
            assert_bit_identical(&pipe, &serial, &format!("query {qi}"));
            assert_eq!(sp.hops, ss.hops, "query {qi}: hop counts diverge");
            assert_eq!(
                sp.io_reads, ss.io_reads,
                "query {qi}: raw sector counts diverge"
            );
            // Under the fixed model (zero per-command cost, one channel)
            // coalescing cannot change modeled time; the engines only
            // differ in f32 summation order.
            assert!(
                (sp.io_seconds - ss.io_seconds).abs() < 1e-6,
                "query {qi}: modeled io time diverges ({} vs {})",
                sp.io_seconds,
                ss.io_seconds
            );
        }
    }

    #[test]
    fn width1_is_bit_identical_with_a_cache() {
        let (index, _, queries) = build_index_with(600, 10, "bitident-cache", 150);
        for (qi, q) in queries.iter().enumerate() {
            let (pipe, _) = index.search(q, 50, 10);
            let (serial, _) = index.search_serial(q, 50, 10);
            assert_bit_identical(&pipe, &serial, &format!("cached query {qi}"));
        }
    }

    #[test]
    fn rerank_never_rereads_routed_candidates() {
        // The rerank double-read fix: every reranked candidate comes out of
        // the bounded pool, and every pool survivor is expanded (hence
        // fetched and memoised) before the bound can end the search — a
        // frontier entry with d ≤ worst always pops before one with
        // d > worst. The separate counter pins that invariant at zero;
        // would-be extra reads go through the batch API and would show up
        // here instead of inflating io_reads silently.
        let (index, _, queries) = build_index(600, 11, "rerankreads");
        for q in queries.iter() {
            for ef in [10usize, 60] {
                let (_, stats) = index.search(q, ef, 10);
                assert_eq!(
                    stats.rerank_reads, 0,
                    "routing already fetched every reranked candidate"
                );
                let (_, serial) = index.search_serial(q, ef, 10);
                assert_eq!(serial.rerank_reads, 0);
            }
        }
    }

    #[test]
    fn pipeline_hides_io_behind_compute() {
        let (mut index, _, queries) = build_index(600, 12, "pipeline");
        let q = queries.get(0);

        // Serial semantics: every modeled microsecond stalls the query.
        let (_, s1) = index.search(q, 60, 10);
        assert!(
            (s1.io_stall_seconds - s1.io_seconds).abs() < 1e-9,
            "width 1 cannot overlap: stall {} vs io {}",
            s1.io_stall_seconds,
            s1.io_seconds
        );

        // Wider stages overlap reads with the previous stage's scoring and
        // batch commands at depth: the stall can only shrink.
        index.set_io_policy(8, SsdModel::nvme());
        let (_, s8) = index.search(q, 60, 10);
        assert!(
            s8.io_stall_seconds <= s8.io_seconds + 1e-9,
            "stall must never exceed modeled io"
        );
        assert!(s8.coalesced_ios <= s8.io_reads, "commands ≤ raw sectors");
    }

    #[test]
    fn wider_io_width_reads_more_but_keeps_quality() {
        let (mut index, base, queries) = build_index(600, 13, "width");
        let gt = brute_force_knn(&base, &queries, 10);
        let mut reads1 = 0usize;
        let mut results1 = Vec::new();
        for q in queries.iter() {
            let (res, stats) = index.search(q, 60, 10);
            reads1 += stats.io_reads;
            results1.push(ids(&res));
        }
        index.set_io_policy(8, SsdModel::fixed(100.0));
        let mut reads8 = 0usize;
        let mut results8 = Vec::new();
        for q in queries.iter() {
            let (res, stats) = index.search(q, 60, 10);
            reads8 += stats.io_reads;
            results8.push(ids(&res));
        }
        assert!(
            reads8 >= reads1,
            "speculative width-8 frontier cannot read less: {reads8} vs {reads1}"
        );
        let r1 = gt.recall(&results1);
        let r8 = gt.recall(&results8);
        assert!(
            r8 >= r1 - 0.02,
            "width 8 must stay within the recall envelope: {r8} vs {r1}"
        );
    }

    #[test]
    fn trace_warming_pins_hot_nodes_and_preserves_results() {
        let (mut index, _, queries) = build_index_with(600, 14, "tracewarm", 150);
        let (warm, eval) = queries.split_at(10);
        let serial: Vec<_> = eval
            .iter()
            .map(|q| index.search_serial(q, 50, 10).0)
            .collect();

        let pinned = index.warm_cache_by_trace(&warm, 50);
        assert!(pinned > 0, "warm-up traffic must pin something");
        assert!(pinned <= 150, "admission respects capacity");

        let mut hits = 0usize;
        for (qi, q) in eval.iter().enumerate() {
            let (res, stats) = index.search(q, 50, 10);
            assert_bit_identical(&res, &serial[qi], &format!("trace-warmed query {qi}"));
            hits += stats.cache_hits;
        }
        assert!(
            hits > 0,
            "a frequency-admitted cache must hit on like-distributed traffic"
        );
    }

    #[test]
    fn filtered_search_returns_only_matching_and_reranks_exactly() {
        let (mut index, base, queries) = build_index(600, 16, "filtered");
        let labels = Labels::from_masks(2, (0..base.len()).map(|i| 1 << (i % 2)).collect());
        index.set_labels(labels.clone());
        let pred = LabelPredicate::single(0);
        let mut scratch = SearchScratch::with_capacity(base.len());
        for strategy in [
            FilterStrategy::DuringTraversal,
            FilterStrategy::PostFilter { inflation: 4 },
        ] {
            for q in queries.iter() {
                let (res, stats) = index.search_filtered(q, pred, strategy, 40, 10, &mut scratch);
                assert!(!res.is_empty(), "{strategy:?} returned nothing");
                assert!(stats.io_reads > 0);
                for n in &res {
                    assert!(
                        labels.matches(n.id as usize, pred),
                        "{strategy:?} returned non-matching id {}",
                        n.id
                    );
                    // Reranked: reported distances are exact.
                    let expect = sq_l2(q, base.get(n.id as usize));
                    assert!((n.dist - expect).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn filtered_with_all_matching_equals_unfiltered() {
        let (mut index, base, queries) = build_index(400, 17, "filtered-all");
        index.set_labels(Labels::from_masks(1, vec![1; base.len()]));
        let mut scratch = SearchScratch::with_capacity(base.len());
        for q in queries.iter() {
            let (plain, _) = index.search_with_scratch(q, 40, 10, &mut scratch);
            let (filtered, _) = index.search_filtered(
                q,
                LabelPredicate::single(0),
                FilterStrategy::DuringTraversal,
                40,
                10,
                &mut scratch,
            );
            assert_bit_identical(&plain, &filtered, "all-matching filter");
        }
    }

    #[test]
    fn attached_clock_accumulates_queue_wait() {
        let (mut index, _, queries) = build_index(400, 15, "clock");
        index.attach_clock(Arc::new(SsdClock::new()));
        let q = queries.get(0);
        let (_, first) = index.search(q, 40, 10);
        // The first query reserved milliseconds of modeled device time;
        // the second arrives (in wall time) long before that drains.
        let (_, second) = index.search(queries.get(1), 40, 10);
        assert!(first.io_seconds > 0.0);
        assert!(
            second.io_queue_seconds > 0.0,
            "back-to-back queries must observe device occupancy"
        );
    }
}
