//! Batched query execution and the QPS / recall@k sweep machinery behind
//! every evaluation figure.
//!
//! Queries run in parallel over the rayon pool (the paper evaluates with 8
//! search threads; the pool width comes from `RPQ_THREADS` or the machine's
//! available parallelism). For the hybrid scenario, each query's modelled
//! disk time is added to the measured compute wall-time divided by the
//! number of workers that **actually executed the batch**
//! (`rayon::execution_width`, never more) — so modelled I/O overlaps
//! across query threads exactly like compute does, and a single-threaded
//! sweep charges the full I/O bill (see [`hybrid_qps`]).

use rayon::prelude::*;
use rpq_data::{Dataset, GroundTruth};
use rpq_graph::SearchScratch;
use rpq_quant::VectorCompressor;

use crate::disk::DiskIndex;
use crate::memory::InMemoryIndex;

/// One point on a QPS-vs-recall curve.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Beam width used.
    pub ef: usize,
    /// Recall@k against the supplied ground truth.
    pub recall: f32,
    /// Queries per second (all threads).
    pub qps: f32,
    /// Mean next-hop selections per query.
    pub hops: f32,
    /// Mean modelled disk-I/O device time per query, in milliseconds (0 for
    /// the in-memory scenario).
    pub io_ms: f32,
    /// Mean modelled I/O time per query **not hidden** behind compute by
    /// the pipelined engine, in milliseconds — what QPS actually charges.
    /// Equals `io_ms` at `io_width = 1`.
    pub io_stall_ms: f32,
    /// Mean coalesced I/O commands per query (0 in-memory).
    pub coalesced_ios: f32,
    /// Fraction of node lookups served from the RAM node cache (0 with the
    /// cache disabled, and in-memory).
    pub cache_hit_rate: f32,
}

/// Sweeps beam widths over an in-memory index.
///
/// # Example
///
/// ```
/// use rpq_anns::{sweep_memory, InMemoryIndex};
/// use rpq_data::brute_force_knn;
/// use rpq_data::synth::{SynthConfig, ValueTransform};
/// use rpq_graph::HnswConfig;
/// use rpq_quant::{PqConfig, ProductQuantizer};
///
/// let data = SynthConfig {
///     dim: 8,
///     intrinsic_dim: 4,
///     clusters: 2,
///     cluster_std: 0.5,
///     noise_std: 0.05,
///     transform: ValueTransform::Identity,
/// }
/// .generate(110, 2);
/// let (base, queries) = data.split_at(100);
/// let gt = brute_force_knn(&base, &queries, 5);
/// let graph = HnswConfig { m: 8, ef_construction: 32, seed: 0 }.build(&base);
/// let pq = ProductQuantizer::train(
///     &PqConfig { m: 4, k: 16, ..Default::default() },
///     &base,
/// );
/// let index = InMemoryIndex::build(pq, &base, graph);
///
/// let points = sweep_memory(&index, &queries, &gt, 5, &[8, 32]);
/// assert_eq!(points.len(), 2);
/// assert!(points.iter().all(|p| (0.0..=1.0).contains(&p.recall)));
/// assert!(points.iter().all(|p| p.io_ms == 0.0)); // in-memory: no I/O
/// ```
pub fn sweep_memory<C: VectorCompressor>(
    index: &InMemoryIndex<C>,
    queries: &Dataset,
    gt: &GroundTruth,
    k: usize,
    efs: &[usize],
) -> Vec<SweepPoint> {
    efs.iter()
        .map(|&ef| {
            let start = std::time::Instant::now();
            let per_query: Vec<(Vec<u32>, usize)> = (0..queries.len())
                .into_par_iter()
                .map_init(SearchScratch::new, |scratch, qi| {
                    let (res, stats) = index.search(queries.get(qi), ef, k, scratch);
                    (res.iter().map(|n| n.id).collect(), stats.hops)
                })
                .collect();
            let wall = start.elapsed().as_secs_f32().max(1e-9);
            let results: Vec<Vec<u32>> = per_query.iter().map(|(ids, _)| ids.clone()).collect();
            let hops: f32 =
                per_query.iter().map(|&(_, h)| h as f32).sum::<f32>() / queries.len().max(1) as f32;
            SweepPoint {
                ef,
                recall: gt.recall(&results),
                qps: queries.len() as f32 / wall,
                hops,
                io_ms: 0.0,
                io_stall_ms: 0.0,
                coalesced_ios: 0.0,
                cache_hit_rate: 0.0,
            }
        })
        .collect()
}

/// The hybrid-scenario QPS model: modelled I/O time overlaps across the
/// `overlap_workers` query threads that executed the batch, on top of the
/// measured compute wall-time:
/// `qps = n_queries / (wall_seconds + io_total_seconds / overlap_workers)`.
///
/// With one worker the full I/O bill is charged — dividing by anything
/// larger than the executed worker count would silently inflate QPS by
/// that factor (the bug this function exists to pin down).
pub fn hybrid_qps(
    n_queries: usize,
    wall_seconds: f32,
    io_total_seconds: f32,
    overlap_workers: usize,
) -> f32 {
    let denom = wall_seconds.max(1e-9) + io_total_seconds / overlap_workers.max(1) as f32;
    n_queries as f32 / denom
}

/// Number of pool workers a parallel sweep over `n_queries` actually
/// runs on — the executor's own width for this batch (pool width capped
/// by its chunk count), never more.
fn sweep_workers(n_queries: usize) -> usize {
    rayon::execution_width(n_queries)
}

/// Sweeps beam widths over a hybrid (disk) index. QPS charges the modelled
/// I/O **stall** time — the part of device time the pipelined engine could
/// not hide behind compute (equal to the full device time at
/// `io_width = 1`): `total = wall_compute + Σ io_stall_seconds / workers`,
/// where `workers` is the executed parallel width (see [`hybrid_qps`]).
/// Each worker reuses one [`SearchScratch`] across its queries, so the
/// sweep makes no per-query allocations for the visited/memo state.
pub fn sweep_disk<C: VectorCompressor>(
    index: &DiskIndex<C>,
    queries: &Dataset,
    gt: &GroundTruth,
    k: usize,
    efs: &[usize],
) -> Vec<SweepPoint> {
    let workers = sweep_workers(queries.len());
    efs.iter()
        .map(|&ef| {
            let start = std::time::Instant::now();
            let per_query: Vec<(Vec<u32>, crate::disk::DiskSearchStats)> = (0..queries.len())
                .into_par_iter()
                .map_init(SearchScratch::new, |scratch, qi| {
                    let (res, stats) = index.search_with_scratch(queries.get(qi), ef, k, scratch);
                    (res.iter().map(|n| n.id).collect(), stats)
                })
                .collect();
            let wall = start.elapsed().as_secs_f32().max(1e-9);
            let n = queries.len().max(1) as f32;
            let io_total: f32 = per_query.iter().map(|(_, s)| s.io_seconds).sum();
            let stall_total: f32 = per_query.iter().map(|(_, s)| s.io_stall_seconds).sum();
            let coalesced: usize = per_query.iter().map(|(_, s)| s.coalesced_ios).sum();
            let hits: usize = per_query.iter().map(|(_, s)| s.cache_hits).sum();
            let misses: usize = per_query.iter().map(|(_, s)| s.cache_misses).sum();
            let results: Vec<Vec<u32>> = per_query.iter().map(|(ids, _)| ids.clone()).collect();
            let hops: f32 = per_query.iter().map(|(_, s)| s.hops as f32).sum::<f32>() / n;
            SweepPoint {
                ef,
                recall: gt.recall(&results),
                qps: hybrid_qps(queries.len(), wall, stall_total, workers),
                hops,
                io_ms: io_total * 1e3 / n,
                io_stall_ms: stall_total * 1e3 / n,
                coalesced_ios: coalesced as f32 / n,
                cache_hit_rate: if hits + misses == 0 {
                    0.0
                } else {
                    hits as f32 / (hits + misses) as f32
                },
            }
        })
        .collect()
}

/// Interpolates the QPS a method achieves at a target recall (the "QPS at
/// the same Recall@10 of 95%" readout of Tables 6–7 and Figures 8–11).
/// Returns `None` if the sweep never reaches the target.
pub fn qps_at_recall(points: &[SweepPoint], target: f32) -> Option<f32> {
    let mut sorted: Vec<&SweepPoint> = points.iter().collect();
    sorted.sort_by(|a, b| a.recall.total_cmp(&b.recall));
    if sorted.is_empty() || sorted.last().unwrap().recall < target {
        return None;
    }
    if sorted[0].recall >= target {
        // Already above target at the cheapest setting: best QPS among
        // qualifying points.
        return sorted
            .iter()
            .filter(|p| p.recall >= target)
            .map(|p| p.qps)
            .fold(None, |acc: Option<f32>, q| {
                Some(acc.map_or(q, |a| a.max(q)))
            });
    }
    // Linear interpolation between the bracketing points.
    for w in sorted.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo.recall < target && hi.recall >= target {
            let frac = (target - lo.recall) / (hi.recall - lo.recall).max(1e-9);
            return Some(lo.qps + frac * (hi.qps - lo.qps));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::HnswConfig;
    use rpq_quant::{PqConfig, ProductQuantizer};

    #[test]
    fn memory_sweep_end_to_end() {
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(320, 1);
        let (base, queries) = data.split_at(300);
        let gt = brute_force_knn(&base, &queries, 5);
        let graph = HnswConfig {
            m: 8,
            ef_construction: 40,
            seed: 0,
        }
        .build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let index = InMemoryIndex::build(pq, &base, graph);
        let points = sweep_memory(&index, &queries, &gt, 5, &[5, 20, 60]);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.qps > 0.0);
            assert!((0.0..=1.0).contains(&p.recall));
            assert!(p.hops > 0.0);
            assert_eq!(p.io_ms, 0.0, "in-memory sweep must report zero I/O");
        }
        // Wider beams cost throughput.
        assert!(points[0].qps >= points[2].qps * 0.5, "{points:?}");
    }

    #[test]
    fn disk_sweep_end_to_end() {
        use crate::disk::{DiskIndex, DiskIndexConfig};
        use rpq_graph::VamanaConfig;
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(320, 2);
        let (base, queries) = data.split_at(300);
        let gt = brute_force_knn(&base, &queries, 5);
        let graph = VamanaConfig {
            r: 8,
            l: 16,
            ..Default::default()
        }
        .build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let dir = std::env::temp_dir().join("rpq-harness-test");
        std::fs::create_dir_all(&dir).unwrap();
        let index = DiskIndex::build(
            pq,
            &base,
            &graph,
            DiskIndexConfig::new(dir.join("sweep.store")),
        )
        .unwrap();
        let points = sweep_disk(&index, &queries, &gt, 5, &[5, 30]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.io_ms > 0.0, "hybrid sweep must report I/O time");
            // Serial width: nothing is hidden, so the stall is the full
            // device time (modulo f32 summation order).
            assert!(
                (p.io_stall_ms - p.io_ms).abs() < 1e-3,
                "width 1 must charge all I/O: {p:?}"
            );
            assert!(p.coalesced_ios > 0.0, "commands must be counted");
            assert_eq!(p.cache_hit_rate, 0.0, "no cache configured");
        }
        // Reranked recall should be strong even at modest beams.
        assert!(points[1].recall > 0.8, "{points:?}");
    }

    #[test]
    fn hybrid_qps_charges_full_io_on_one_worker() {
        // 100 queries, 0.1 s of compute, 0.4 s of modelled I/O.
        let sequential = hybrid_qps(100, 0.1, 0.4, 1);
        assert!((sequential - 100.0 / 0.5).abs() < 1e-3, "{sequential}");
        // Four workers overlap the I/O: 0.1 + 0.4/4.
        let parallel = hybrid_qps(100, 0.1, 0.4, 4);
        assert!((parallel - 100.0 / 0.2).abs() < 1e-3, "{parallel}");
        // Zero workers is clamped, not a division by zero.
        assert_eq!(hybrid_qps(100, 0.1, 0.4, 0), sequential);
    }

    #[test]
    fn single_thread_sweep_charges_full_io_time() {
        // Regression test for the divisor bug: sweep_disk used to divide
        // the modelled I/O by `current_num_threads()` even when execution
        // was sequential, inflating QPS by the machine's core count. Under
        // one worker, QPS is bounded by the pure-I/O rate
        // `1000 / io_ms_per_query` — a bound the buggy accounting breaks
        // by ~the thread count whenever I/O dominates.
        use crate::disk::{DiskIndex, DiskIndexConfig};
        use rpq_graph::VamanaConfig;
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(320, 9);
        let (base, queries) = data.split_at(300);
        let gt = brute_force_knn(&base, &queries, 5);
        let graph = VamanaConfig {
            r: 8,
            l: 16,
            ..Default::default()
        }
        .build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let dir = std::env::temp_dir().join("rpq-harness-io-accounting");
        std::fs::create_dir_all(&dir).unwrap();
        let index = DiskIndex::build(
            pq,
            &base,
            &graph,
            DiskIndexConfig::new(dir.join("sweep.store")),
        )
        .unwrap();
        let points = rayon::with_num_threads(1, || sweep_disk(&index, &queries, &gt, 5, &[20]));
        let p = &points[0];
        assert!(p.io_ms > 0.0, "hybrid sweep must model I/O");
        let io_bound_qps = 1000.0 / p.io_ms;
        assert!(
            p.qps <= io_bound_qps * 1.001,
            "sequential sweep must charge full I/O: qps={} exceeds the \
             one-worker I/O bound {io_bound_qps}",
            p.qps
        );
    }

    fn pt(recall: f32, qps: f32) -> SweepPoint {
        SweepPoint {
            ef: 0,
            recall,
            qps,
            hops: 0.0,
            io_ms: 0.0,
            io_stall_ms: 0.0,
            coalesced_ios: 0.0,
            cache_hit_rate: 0.0,
        }
    }

    #[test]
    fn qps_interpolates_between_points() {
        let points = vec![pt(0.90, 1000.0), pt(0.96, 400.0)];
        let q = qps_at_recall(&points, 0.95).unwrap();
        assert!(q > 400.0 && q < 1000.0, "interpolated {q}");
        // 5/6 of the way from 0.90 to 0.96.
        assert!((q - (1000.0 + (400.0 - 1000.0) * (0.05 / 0.06))).abs() < 1.0);
    }

    #[test]
    fn qps_none_when_unreachable() {
        let points = vec![pt(0.5, 100.0), pt(0.8, 50.0)];
        assert!(qps_at_recall(&points, 0.95).is_none());
    }

    #[test]
    fn qps_best_when_all_above_target() {
        let points = vec![pt(0.97, 800.0), pt(0.99, 500.0)];
        assert_eq!(qps_at_recall(&points, 0.95), Some(800.0));
    }

    #[test]
    fn qps_empty_points() {
        assert!(qps_at_recall(&[], 0.9).is_none());
    }
}
