//! The in-memory scenario (paper §7): graph + compact codes + codebook in
//! RAM, original vectors discarded, routing and result ranking both driven
//! purely by ADC distances.

use rpq_data::{Dataset, LabelPredicate, Labels};
use rpq_graph::{
    beam_search, beam_search_filtered, Neighbor, ProximityGraph, SearchScratch, SearchStats,
    VertexFilter,
};
use rpq_quant::{CompactCodes, SoaCodes, VectorCompressor};

use crate::filter::FilterStrategy;

/// An in-memory PQ-integrated index over a proximity graph.
///
/// # Example
///
/// ```
/// use rpq_anns::InMemoryIndex;
/// use rpq_data::synth::{SynthConfig, ValueTransform};
/// use rpq_graph::{HnswConfig, SearchScratch};
/// use rpq_quant::{PqConfig, ProductQuantizer};
///
/// let data = SynthConfig {
///     dim: 8,
///     intrinsic_dim: 4,
///     clusters: 2,
///     cluster_std: 0.5,
///     noise_std: 0.05,
///     transform: ValueTransform::Identity,
/// }
/// .generate(120, 0);
/// let (base, queries) = data.split_at(100);
/// let graph = HnswConfig { m: 8, ef_construction: 32, seed: 0 }.build(&base);
/// let pq = ProductQuantizer::train(
///     &PqConfig { m: 4, k: 16, ..Default::default() },
///     &base,
/// );
///
/// let index = InMemoryIndex::build(pq, &base, graph);
/// let mut scratch = SearchScratch::new();
/// let (top, stats) = index.search(queries.get(0), 32, 5, &mut scratch);
/// assert_eq!(top.len(), 5);
/// assert!(stats.hops > 0);
/// ```
pub struct InMemoryIndex<C: VectorCompressor> {
    graph: ProximityGraph,
    codes: CompactCodes,
    /// Chunk-major mirror of `codes`, built once at index time so searches
    /// can use the batched ADC kernels (DESIGN.md §9) when the compressor
    /// provides them.
    soa: SoaCodes,
    compressor: C,
    /// Per-vector label sets for filtered search (DESIGN.md §12); absent
    /// unless attached via [`InMemoryIndex::with_labels`].
    labels: Option<Labels>,
}

impl<C: VectorCompressor> InMemoryIndex<C> {
    /// Encodes `data` with `compressor` and takes ownership of the graph.
    /// The original vectors are *not* retained — that is the scenario's
    /// definition.
    pub fn build(compressor: C, data: &Dataset, graph: ProximityGraph) -> Self {
        assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
        assert_eq!(compressor.dim(), data.dim(), "compressor dim mismatch");
        let codes = compressor.encode_dataset(data);
        let soa = SoaCodes::from_compact(&codes);
        Self {
            graph,
            codes,
            soa,
            compressor,
            labels: None,
        }
    }

    /// Attaches per-vector labels, enabling [`InMemoryIndex::search_filtered`].
    pub fn with_labels(mut self, labels: Labels) -> Self {
        assert_eq!(labels.len(), self.graph.len(), "labels/graph size mismatch");
        self.labels = Some(labels);
        self
    }

    /// The attached labels, if any.
    pub fn labels(&self) -> Option<&Labels> {
        self.labels.as_ref()
    }

    /// Beam search with ADC-only distances; returns top-`k` ids with their
    /// estimated distances.
    ///
    /// When the compressor exposes a batched SoA estimator it is used —
    /// bit-identical to the scalar path by contract
    /// ([`VectorCompressor::batch_estimator`]), so results and stats do not
    /// depend on which path ran.
    pub fn search(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        if let Some(est) = self.compressor.batch_estimator(&self.soa, query) {
            return beam_search(&self.graph, &est, ef, k, scratch);
        }
        let est = self.compressor.estimator(&self.codes, query);
        beam_search(&self.graph, &est, ef, k, scratch)
    }

    /// Beam search restricted to vectors satisfying `pred` (DESIGN.md §12).
    ///
    /// `strategy` selects how the predicate is pushed into the search:
    /// [`FilterStrategy::DuringTraversal`] routes through non-matching
    /// vertices but only admits matches to the result heap;
    /// [`FilterStrategy::PostFilter`] searches unfiltered at an inflated
    /// `ef` and filters the returned candidates. Panics unless labels were
    /// attached with [`InMemoryIndex::with_labels`].
    pub fn search_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        let labels = self
            .labels
            .as_ref()
            .expect("search_filtered requires labels (InMemoryIndex::with_labels)");
        match strategy {
            FilterStrategy::DuringTraversal => {
                let accept = labels.accept_fn(pred);
                let filter = VertexFilter::predicate(&accept);
                if let Some(est) = self.compressor.batch_estimator(&self.soa, query) {
                    return beam_search_filtered(&self.graph, &est, ef, k, scratch, filter);
                }
                let est = self.compressor.estimator(&self.codes, query);
                beam_search_filtered(&self.graph, &est, ef, k, scratch, filter)
            }
            FilterStrategy::PostFilter { .. } => {
                let big_ef = strategy.inflated_ef(ef);
                let (mut res, stats) = self.search(query, big_ef, big_ef, scratch);
                res.retain(|n| labels.matches(n.id as usize, pred));
                res.truncate(k);
                (res, stats)
            }
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &ProximityGraph {
        &self.graph
    }

    /// The compact codes.
    pub fn codes(&self) -> &CompactCodes {
        &self.codes
    }

    /// The compressor.
    pub fn compressor(&self) -> &C {
        &self.compressor
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when empty (unreachable for built indexes; API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident bytes: graph + codes (both layouts) + model — the
    /// quantity the paper's in-memory scenario budgets (memory constraint
    /// `f`·dataset). The SoA mirror doubles the code bytes, which stay tiny
    /// next to the graph and the raw vectors they replace.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self.codes.memory_bytes()
            + self.soa.memory_bytes()
            + self.compressor.model_bytes()
            + self.labels.as_ref().map_or(0, |l| l.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::ground_truth::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::HnswConfig;
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let data = SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n + 20, seed);
        let (base, queries) = data.split_at(n);
        (base, queries)
    }

    #[test]
    fn search_finds_reasonable_neighbors() {
        let (base, queries) = setup(600, 1);
        let graph = HnswConfig::default().build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let index = InMemoryIndex::build(pq, &base, graph);
        let gt = brute_force_knn(&base, &queries, 10);
        let mut scratch = SearchScratch::new();
        let mut results = Vec::new();
        for q in queries.iter() {
            let (res, stats) = index.search(q, 60, 10, &mut scratch);
            assert!(stats.hops > 0);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        assert!(recall > 0.6, "ADC-only recall too low: {recall}");
    }

    #[test]
    fn larger_beam_does_not_reduce_recall() {
        let (base, queries) = setup(500, 2);
        let graph = HnswConfig::default().build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let index = InMemoryIndex::build(pq, &base, graph);
        let gt = brute_force_knn(&base, &queries, 10);
        let mut scratch = SearchScratch::new();
        let mut recalls = Vec::new();
        for ef in [10usize, 40, 120] {
            let mut results = Vec::new();
            for q in queries.iter() {
                let (res, _) = index.search(q, ef, 10, &mut scratch);
                results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
            }
            recalls.push(gt.recall(&results));
        }
        assert!(
            recalls[2] >= recalls[0] - 0.02,
            "recall should not degrade with beam width: {recalls:?}"
        );
    }

    #[test]
    fn memory_accounting_is_far_below_raw_vectors() {
        let (base, _) = setup(500, 3);
        let graph = HnswConfig::default().build(&base);
        let graph_bytes = graph.memory_bytes();
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let index = InMemoryIndex::build(pq, &base, graph);
        let raw = base.memory_bytes();
        let resident = index.memory_bytes() - graph_bytes; // codes + model
        assert!(
            resident * 2 < raw,
            "codes+model ({resident}) should be far below raw vectors ({raw})"
        );
    }

    #[test]
    fn filtered_search_returns_only_matching_ids() {
        let (base, queries) = setup(500, 6);
        let graph = HnswConfig::default().build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        // Alternate two labels over ids.
        let labels =
            rpq_data::Labels::from_masks(2, (0..base.len()).map(|i| 1 << (i % 2)).collect());
        let index = InMemoryIndex::build(pq, &base, graph).with_labels(labels.clone());
        let pred = rpq_data::LabelPredicate::single(1);
        let mut scratch = SearchScratch::new();
        for strategy in [
            crate::filter::FilterStrategy::DuringTraversal,
            crate::filter::FilterStrategy::PostFilter { inflation: 4 },
        ] {
            for q in queries.iter() {
                let (res, _) = index.search_filtered(q, pred, strategy, 40, 10, &mut scratch);
                assert!(!res.is_empty(), "{strategy:?} returned nothing");
                for n in &res {
                    assert!(
                        labels.matches(n.id as usize, pred),
                        "{strategy:?} returned non-matching id {}",
                        n.id
                    );
                }
            }
        }
    }

    #[test]
    fn filtered_search_with_all_predicate_matches_unfiltered() {
        let (base, queries) = setup(400, 7);
        let graph = HnswConfig::default().build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let labels = rpq_data::Labels::from_masks(2, vec![1; base.len()]);
        let index = InMemoryIndex::build(pq, &base, graph).with_labels(labels);
        let pred = rpq_data::LabelPredicate::single(0);
        let mut scratch = SearchScratch::new();
        for q in queries.iter() {
            let (plain, _) = index.search(q, 40, 10, &mut scratch);
            let (filtered, _) = index.search_filtered(
                q,
                pred,
                crate::filter::FilterStrategy::DuringTraversal,
                40,
                10,
                &mut scratch,
            );
            let a: Vec<u32> = plain.iter().map(|n| n.id).collect();
            let b: Vec<u32> = filtered.iter().map(|n| n.id).collect();
            assert_eq!(a, b, "all-matching filter must not change results");
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_graph_panics() {
        let (base, _) = setup(100, 4);
        let (other, _) = setup(50, 5);
        let graph = HnswConfig::default().build(&other);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let _ = InMemoryIndex::build(pq, &base, graph);
    }
}
