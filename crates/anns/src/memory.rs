//! The in-memory scenario (paper §7): graph + compact codes + codebook in
//! RAM, original vectors discarded, routing and result ranking both driven
//! purely by ADC distances.

use rpq_data::Dataset;
use rpq_graph::{beam_search, Neighbor, ProximityGraph, SearchScratch, SearchStats};
use rpq_quant::{CompactCodes, SoaCodes, VectorCompressor};

/// An in-memory PQ-integrated index over a proximity graph.
///
/// # Example
///
/// ```
/// use rpq_anns::InMemoryIndex;
/// use rpq_data::synth::{SynthConfig, ValueTransform};
/// use rpq_graph::{HnswConfig, SearchScratch};
/// use rpq_quant::{PqConfig, ProductQuantizer};
///
/// let data = SynthConfig {
///     dim: 8,
///     intrinsic_dim: 4,
///     clusters: 2,
///     cluster_std: 0.5,
///     noise_std: 0.05,
///     transform: ValueTransform::Identity,
/// }
/// .generate(120, 0);
/// let (base, queries) = data.split_at(100);
/// let graph = HnswConfig { m: 8, ef_construction: 32, seed: 0 }.build(&base);
/// let pq = ProductQuantizer::train(
///     &PqConfig { m: 4, k: 16, ..Default::default() },
///     &base,
/// );
///
/// let index = InMemoryIndex::build(pq, &base, graph);
/// let mut scratch = SearchScratch::new();
/// let (top, stats) = index.search(queries.get(0), 32, 5, &mut scratch);
/// assert_eq!(top.len(), 5);
/// assert!(stats.hops > 0);
/// ```
pub struct InMemoryIndex<C: VectorCompressor> {
    graph: ProximityGraph,
    codes: CompactCodes,
    /// Chunk-major mirror of `codes`, built once at index time so searches
    /// can use the batched ADC kernels (DESIGN.md §9) when the compressor
    /// provides them.
    soa: SoaCodes,
    compressor: C,
}

impl<C: VectorCompressor> InMemoryIndex<C> {
    /// Encodes `data` with `compressor` and takes ownership of the graph.
    /// The original vectors are *not* retained — that is the scenario's
    /// definition.
    pub fn build(compressor: C, data: &Dataset, graph: ProximityGraph) -> Self {
        assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
        assert_eq!(compressor.dim(), data.dim(), "compressor dim mismatch");
        let codes = compressor.encode_dataset(data);
        let soa = SoaCodes::from_compact(&codes);
        Self {
            graph,
            codes,
            soa,
            compressor,
        }
    }

    /// Beam search with ADC-only distances; returns top-`k` ids with their
    /// estimated distances.
    ///
    /// When the compressor exposes a batched SoA estimator it is used —
    /// bit-identical to the scalar path by contract
    /// ([`VectorCompressor::batch_estimator`]), so results and stats do not
    /// depend on which path ran.
    pub fn search(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        if let Some(est) = self.compressor.batch_estimator(&self.soa, query) {
            return beam_search(&self.graph, &est, ef, k, scratch);
        }
        let est = self.compressor.estimator(&self.codes, query);
        beam_search(&self.graph, &est, ef, k, scratch)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &ProximityGraph {
        &self.graph
    }

    /// The compact codes.
    pub fn codes(&self) -> &CompactCodes {
        &self.codes
    }

    /// The compressor.
    pub fn compressor(&self) -> &C {
        &self.compressor
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when empty (unreachable for built indexes; API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident bytes: graph + codes (both layouts) + model — the
    /// quantity the paper's in-memory scenario budgets (memory constraint
    /// `f`·dataset). The SoA mirror doubles the code bytes, which stay tiny
    /// next to the graph and the raw vectors they replace.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self.codes.memory_bytes()
            + self.soa.memory_bytes()
            + self.compressor.model_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::ground_truth::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::HnswConfig;
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let data = SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n + 20, seed);
        let (base, queries) = data.split_at(n);
        (base, queries)
    }

    #[test]
    fn search_finds_reasonable_neighbors() {
        let (base, queries) = setup(600, 1);
        let graph = HnswConfig::default().build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let index = InMemoryIndex::build(pq, &base, graph);
        let gt = brute_force_knn(&base, &queries, 10);
        let mut scratch = SearchScratch::new();
        let mut results = Vec::new();
        for q in queries.iter() {
            let (res, stats) = index.search(q, 60, 10, &mut scratch);
            assert!(stats.hops > 0);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        assert!(recall > 0.6, "ADC-only recall too low: {recall}");
    }

    #[test]
    fn larger_beam_does_not_reduce_recall() {
        let (base, queries) = setup(500, 2);
        let graph = HnswConfig::default().build(&base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &base,
        );
        let index = InMemoryIndex::build(pq, &base, graph);
        let gt = brute_force_knn(&base, &queries, 10);
        let mut scratch = SearchScratch::new();
        let mut recalls = Vec::new();
        for ef in [10usize, 40, 120] {
            let mut results = Vec::new();
            for q in queries.iter() {
                let (res, _) = index.search(q, ef, 10, &mut scratch);
                results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
            }
            recalls.push(gt.recall(&results));
        }
        assert!(
            recalls[2] >= recalls[0] - 0.02,
            "recall should not degrade with beam width: {recalls:?}"
        );
    }

    #[test]
    fn memory_accounting_is_far_below_raw_vectors() {
        let (base, _) = setup(500, 3);
        let graph = HnswConfig::default().build(&base);
        let graph_bytes = graph.memory_bytes();
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let index = InMemoryIndex::build(pq, &base, graph);
        let raw = base.memory_bytes();
        let resident = index.memory_bytes() - graph_bytes; // codes + model
        assert!(
            resident * 2 < raw,
            "codes+model ({resident}) should be far below raw vectors ({raw})"
        );
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_graph_panics() {
        let (base, _) = setup(100, 4);
        let (other, _) = setup(50, 5);
        let graph = HnswConfig::default().build(&other);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let _ = InMemoryIndex::build(pq, &base, graph);
    }
}
