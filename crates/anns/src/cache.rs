//! Hot-node cache for the hybrid index — DiskANN's "cached beam search".
//!
//! DiskANN pins the nodes closest to the entry point (the ones every query
//! traverses) in RAM, cutting the I/Os per query by the depth of the cached
//! region. This implementation caches whole node blocks (adjacency + full
//! vector) for a configurable number of nodes, selected by BFS distance
//! from the entry vertex — the standard warm-up heuristic — and counts hits
//! and misses so experiments can report the I/O reduction.

use std::collections::HashMap;

use rpq_data::Dataset;
use rpq_graph::ProximityGraph;

/// A read-only cache of node blocks (neighbors + vector), pre-populated at
/// build time with the nodes nearest (in hops) to the entry.
pub struct NodeCache {
    entries: HashMap<u32, CachedNode>,
    /// Nodes marked during the warm-up BFS (cached nodes + the frontier
    /// enqueued while filling) — the measure of warm-up work.
    warm_work: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

struct CachedNode {
    neighbors: Vec<u32>,
    vector: Vec<f32>,
}

/// Cache effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from RAM.
    pub fn hit_rate(&self) -> f32 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f32 / total as f32
        }
    }
}

impl NodeCache {
    /// Caches the `capacity` nodes closest to the entry by BFS, copying
    /// their adjacency and vectors.
    ///
    /// Warm-up work is bounded by the cached region's frontier: once the
    /// cache is full no further neighbors are marked or enqueued, so the
    /// BFS touches at most `capacity · (max_degree + 1)` nodes however
    /// large the graph is.
    pub fn warm(graph: &ProximityGraph, data: &Dataset, capacity: usize) -> Self {
        assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
        let mut entries = HashMap::with_capacity(capacity.min(graph.len()));
        let mut warm_work = 0usize;
        let mut seen = vec![false; graph.len()];
        let mut queue = std::collections::VecDeque::new();
        if capacity > 0 {
            queue.push_back(graph.entry());
            seen[graph.entry() as usize] = true;
            warm_work += 1;
        }
        while let Some(v) = queue.pop_front() {
            entries.insert(
                v,
                CachedNode {
                    neighbors: graph.neighbors(v).to_vec(),
                    vector: data.get(v as usize).to_vec(),
                },
            );
            if entries.len() >= capacity {
                break; // full: stop expanding, leave the frontier alone
            }
            for &u in graph.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    warm_work += 1;
                    queue.push_back(u);
                }
            }
        }
        Self {
            entries,
            warm_work,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Pins an explicit set of node blocks — the constructor behind
    /// **trace-driven admission** (`DiskIndex::warm_cache_by_trace`): the
    /// caller ranks nodes by observed access frequency and hands over the
    /// winners' adjacency + vectors. Duplicate ids keep the last entry.
    pub fn pin(entries: impl IntoIterator<Item = (u32, Vec<u32>, Vec<f32>)>) -> Self {
        let entries: HashMap<u32, CachedNode> = entries
            .into_iter()
            .map(|(v, neighbors, vector)| (v, CachedNode { neighbors, vector }))
            .collect();
        let warm_work = entries.len();
        Self {
            entries,
            warm_work,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Nodes marked during the warm-up BFS — cached nodes plus the
    /// frontier enqueued while the cache was still filling. Bounded by
    /// `capacity · (max_degree + 1)` regardless of graph size. For a
    /// [`NodeCache::pin`] cache this is simply the pinned count.
    pub fn warm_work(&self) -> usize {
        self.warm_work
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes (counted against the RAM budget).
    pub fn memory_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.neighbors.len() * 4 + e.vector.len() * 4 + 16)
            .sum()
    }

    /// Looks up a node; `Some` is a RAM hit (no disk I/O).
    pub fn get(&self, v: u32) -> Option<(&[u32], &[f32])> {
        use std::sync::atomic::Ordering;
        match self.entries.get(&v) {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((&e.neighbors, &e.vector))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        use std::sync::atomic::Ordering;
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::VamanaConfig;

    fn setup(n: usize) -> (Dataset, ProximityGraph) {
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n, 5);
        let graph = VamanaConfig {
            r: 8,
            l: 16,
            ..Default::default()
        }
        .build(&data);
        (data, graph)
    }

    #[test]
    fn warm_cache_contains_entry_region() {
        let (data, graph) = setup(200);
        let cache = NodeCache::warm(&graph, &data, 50);
        assert_eq!(cache.len(), 50);
        assert!(cache.get(graph.entry()).is_some(), "entry must be cached");
    }

    #[test]
    fn cache_returns_correct_content() {
        let (data, graph) = setup(100);
        let cache = NodeCache::warm(&graph, &data, 100);
        for v in [0u32, 42, 99] {
            let (nbrs, vec) = cache.get(v).expect("fully cached");
            assert_eq!(nbrs, graph.neighbors(v));
            assert_eq!(vec, data.get(v as usize));
        }
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let (data, graph) = setup(100);
        let cache = NodeCache::warm(&graph, &data, 10);
        let mut hits = 0;
        let mut misses = 0;
        for v in 0..100u32 {
            if cache.get(v).is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        let s = cache.stats();
        assert_eq!(s.hits, hits);
        assert_eq!(s.misses, misses);
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0);
    }

    #[test]
    fn warm_work_is_bounded_by_the_capacity_frontier() {
        let (data, graph) = setup(400);
        let max_degree = (0..graph.len() as u32)
            .map(|v| graph.neighbors(v).len())
            .max()
            .unwrap();
        for capacity in [1usize, 10, 50] {
            let cache = NodeCache::warm(&graph, &data, capacity);
            assert_eq!(cache.len(), capacity);
            // Marked nodes = cached nodes + their enqueued frontier; never
            // the whole graph for a small cache.
            assert!(
                cache.warm_work() <= capacity * (max_degree + 1),
                "capacity {capacity}: warm-up marked {} nodes (max degree {max_degree})",
                cache.warm_work()
            );
        }
        // Capacity 1 is the sharpest case: the entry is cached and nothing
        // is expanded at all (the old code marked the entry's whole
        // neighborhood before noticing it was full).
        let one = NodeCache::warm(&graph, &data, 1);
        assert_eq!(one.warm_work(), 1, "a full cache must not expand");
    }

    #[test]
    fn capacity_larger_than_graph_is_fine() {
        let (data, graph) = setup(30);
        let cache = NodeCache::warm(&graph, &data, 10_000);
        assert_eq!(cache.len(), graph.reachable_from_entry());
    }

    #[test]
    fn pinned_cache_serves_exactly_the_given_entries() {
        let (data, graph) = setup(100);
        let ids = [3u32, 57, 90];
        let cache = NodeCache::pin(ids.iter().map(|&v| {
            (
                v,
                graph.neighbors(v).to_vec(),
                data.get(v as usize).to_vec(),
            )
        }));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.warm_work(), 3);
        for &v in &ids {
            let (nbrs, vec) = cache.get(v).expect("pinned");
            assert_eq!(nbrs, graph.neighbors(v));
            assert_eq!(vec, data.get(v as usize));
        }
        assert!(cache.get(0).is_none(), "unpinned node must miss");
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn zero_capacity_cache() {
        let (data, graph) = setup(30);
        let cache = NodeCache::warm(&graph, &data, 0);
        assert!(cache.is_empty());
        assert!(cache.get(graph.entry()).is_none());
    }
}
