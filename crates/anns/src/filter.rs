//! Filtered-search strategy selection (DESIGN.md §12).
//!
//! Two ways to push a predicate into graph search, both from the
//! filtered-ANN literature:
//!
//! * **Filter during traversal** (Filtered-DiskANN style): the dual-heap
//!   `beam_search_filtered` keeps traversing non-matching vertices (so the
//!   routing path survives) while only admitting matches to the result
//!   heap. One pass, no wasted candidates; at very low selectivity the
//!   accepted heap fills slowly and the traversal runs longer.
//! * **Post-filter with ef inflation** (ACORN style): run the *unfiltered*
//!   search with the beam widened by an inflation factor, then drop
//!   non-matching results and truncate to `k`. Simple and
//!   predicate-agnostic, but pays for every non-matching candidate it
//!   routes — the nodes-expanded gap the `filtered` experiment measures.

/// How a [`rpq_data::LabelPredicate`] is pushed into beam search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterStrategy {
    /// Evaluate the predicate inside the traversal (dual-heap
    /// `beam_search_filtered`): non-matching vertices route but are never
    /// returned.
    DuringTraversal,
    /// Search unfiltered with `ef × inflation`, then filter the results
    /// and truncate to `k`. `inflation` < 1 is clamped to 1.
    PostFilter {
        /// Beam-width multiplier compensating for results lost to the
        /// filter. A rule of thumb is ~`1/selectivity`, capped by cost.
        inflation: u32,
    },
}

impl FilterStrategy {
    /// The post-filter beam width for a requested `ef`.
    pub fn inflated_ef(&self, ef: usize) -> usize {
        match self {
            FilterStrategy::DuringTraversal => ef,
            FilterStrategy::PostFilter { inflation } => {
                ef.saturating_mul((*inflation).max(1) as usize)
            }
        }
    }

    /// Short name for reports and JSON rows.
    pub fn name(&self) -> &'static str {
        match self {
            FilterStrategy::DuringTraversal => "in-traversal",
            FilterStrategy::PostFilter { .. } => "post-filter",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_scales_ef_and_clamps() {
        assert_eq!(FilterStrategy::DuringTraversal.inflated_ef(40), 40);
        assert_eq!(
            FilterStrategy::PostFilter { inflation: 4 }.inflated_ef(40),
            160
        );
        assert_eq!(
            FilterStrategy::PostFilter { inflation: 0 }.inflated_ef(40),
            40
        );
    }
}
