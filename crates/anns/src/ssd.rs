//! Queue-depth-aware simulated SSD (DESIGN.md §10).
//!
//! The hybrid scenario models its device instead of requiring a datacenter
//! SSD (DESIGN.md §4.2). PR 3's model was a constant per-sector latency,
//! which cannot express the two effects that dominate real NVMe behaviour:
//! command overhead amortised by coalescing adjacent sectors, and queue
//! wait growing with outstanding depth until the device saturates.
//! [`SsdModel`] captures both with three parameters:
//!
//! * `service_us` — fixed per-command cost (submission, FTL lookup, NAND
//!   access setup). Paid once per I/O regardless of size, which is what
//!   makes coalescing `r` adjacent blocks into one command cheaper than
//!   `r` commands.
//! * `transfer_us_per_sector` — payload cost, linear in sectors.
//! * `channels` — internal parallelism `c`: how many commands the device
//!   services concurrently. Queue depth beyond `c` waits.
//!
//! Service time of one I/O of `b` sectors: `s(b) = service_us +
//! b · transfer_us_per_sector`. Per-I/O latency with `qd` outstanding
//! commands uses an M/D/c-style linear interference term,
//! `s · (1 + (qd − 1) / c)` — exactly `s` at `qd = 1` (the legacy fixed
//! model), degrading linearly once depth exceeds the device's parallelism.
//! A batch issued together completes in `max(maxᵢ sᵢ, Σ sᵢ / min(qd, c))`:
//! bounded below by its largest member and by total work over effective
//! parallelism.
//!
//! [`SsdModel::fixed`] reproduces the old constant-latency model bit for
//! bit (zero service cost, one channel), so legacy configurations and the
//! pinned accounting tests are unchanged. [`simulate_open_load`] is a
//! deterministic open-loop event simulation over the model — arrivals at a
//! fixed rate, `c` servers — used to show tail-latency saturation without
//! depending on wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Parameters of the simulated device. See the module docs for the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SsdModel {
    /// Fixed per-command cost in microseconds.
    pub service_us: f32,
    /// Payload cost per sector in microseconds.
    pub transfer_us_per_sector: f32,
    /// Commands serviced concurrently (internal parallelism `c`).
    pub channels: usize,
}

impl SsdModel {
    /// The legacy fixed-latency model: every sector costs
    /// `per_sector_latency_us`, no command overhead, no parallelism. An
    /// I/O of `b` sectors takes `b · per_sector_latency_us` at any queue
    /// depth of 1, matching the pre-queueing model exactly.
    pub fn fixed(per_sector_latency_us: f32) -> Self {
        Self {
            service_us: 0.0,
            transfer_us_per_sector: per_sector_latency_us,
            channels: 1,
        }
    }

    /// An NVMe-class device: 80 µs command overhead, 8 µs per 4 KiB
    /// sector, 8 concurrent channels. The `diskio` experiment's default —
    /// command overhead dominates single-sector reads, so coalescing and
    /// depth both pay off visibly.
    pub fn nvme() -> Self {
        Self {
            service_us: 80.0,
            transfer_us_per_sector: 8.0,
            channels: 8,
        }
    }

    /// Service time of one I/O of `sectors` sectors, µs (no queueing).
    pub fn service_time_us(&self, sectors: usize) -> f32 {
        self.service_us + sectors as f32 * self.transfer_us_per_sector
    }

    /// Latency of one I/O when `qd` commands are outstanding:
    /// `s · (1 + (qd − 1) / c)`. Equals [`SsdModel::service_time_us`] at
    /// `qd = 1` and grows monotonically with depth.
    pub fn io_latency_us(&self, sectors: usize, qd: usize) -> f32 {
        let s = self.service_time_us(sectors);
        let c = self.channels.max(1) as f32;
        s * (1.0 + (qd.max(1) - 1) as f32 / c)
    }

    /// Completion time of a batch of I/Os issued together at queue depth
    /// `qd`: `max(maxᵢ sᵢ, Σ sᵢ / p)` with effective parallelism
    /// `p = min(qd, channels, batch size)`. At `qd = 1` this is the serial
    /// sum — the legacy model's bill for the same reads.
    pub fn batch_us<I: IntoIterator<Item = usize>>(&self, sector_counts: I, qd: usize) -> f32 {
        let mut work = 0.0f32;
        let mut smax = 0.0f32;
        let mut count = 0usize;
        for sectors in sector_counts {
            let s = self.service_time_us(sectors);
            work += s;
            smax = smax.max(s);
            count += 1;
        }
        if count == 0 {
            return 0.0;
        }
        let p = qd.max(1).min(self.channels.max(1)).min(count) as f32;
        smax.max(work / p)
    }

    /// Sustained throughput ceiling in I/Os per second at `sectors`
    /// sectors each: `c / s`.
    pub fn max_iops(&self, sectors: usize) -> f32 {
        self.channels.max(1) as f32 * 1e6 / self.service_time_us(sectors).max(1e-9)
    }

    /// Closed-form mean queue wait (µs) at an offered load of
    /// `offered_iops` I/Os per second of `sectors` sectors each —
    /// Sakasegawa's M/M/c approximation halved for deterministic service
    /// (M/D/c). Exact for `c = 1` (Pollaczek–Khinchine:
    /// `ρ·s / (2(1 − ρ))`), infinite at or past saturation.
    pub fn mean_wait_us(&self, offered_iops: f32, sectors: usize) -> f32 {
        let s = self.service_time_us(sectors);
        let c = self.channels.max(1) as f32;
        let rho = offered_iops * s / (c * 1e6);
        if rho >= 1.0 {
            return f32::INFINITY;
        }
        if rho <= 0.0 {
            return 0.0;
        }
        let exponent = (2.0 * (c + 1.0)).sqrt() - 1.0;
        0.5 * (s / c) * rho.powf(exponent) / (1.0 - rho)
    }
}

/// Latency distribution of a [`simulate_open_load`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpenLoadReport {
    /// Mean end-to-end latency (queue wait + service), µs.
    pub mean_us: f32,
    /// Median latency, µs.
    pub p50_us: f32,
    /// 99th-percentile latency, µs.
    pub p99_us: f32,
    /// Fraction of channel-time busy over the simulated horizon.
    pub utilization: f32,
}

/// Deterministic open-loop simulation: requests with the given per-request
/// device occupancies (µs each, e.g. one query's [`SsdModel::batch_us`]
/// total) arrive at a fixed `qps`, and the model's `channels` serve them
/// FIFO. Latency of request `i` is completion minus arrival. No clock and
/// no randomness — the saturation tests stay exact on any machine.
pub fn simulate_open_load(model: &SsdModel, per_request_us: &[f32], qps: f32) -> OpenLoadReport {
    if per_request_us.is_empty() || qps <= 0.0 {
        return OpenLoadReport::default();
    }
    let c = model.channels.max(1);
    let gap_us = 1e6 / qps;
    let mut next_free = vec![0.0f64; c];
    let mut latencies: Vec<f64> = Vec::with_capacity(per_request_us.len());
    let mut busy = 0.0f64;
    let mut horizon = 0.0f64;
    for (i, &s) in per_request_us.iter().enumerate() {
        let arrival = i as f64 * gap_us as f64;
        // FIFO onto the earliest-free channel.
        let (slot, _) = next_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("channels >= 1");
        let start = next_free[slot].max(arrival);
        let done = start + s as f64;
        next_free[slot] = done;
        latencies.push(done - arrival);
        busy += s as f64;
        horizon = horizon.max(done);
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f32 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx] as f32
    };
    OpenLoadReport {
        mean_us: (latencies.iter().sum::<f64>() / latencies.len() as f64) as f32,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        utilization: (busy / (c as f64 * horizon.max(1e-9))) as f32,
    }
}

/// A busy-until horizon over an arbitrary time base: the primitive under
/// both [`SsdClock`] (wall-clock arrivals) and the serving cluster's
/// per-replica timelines (virtual arrivals from an open-loop schedule,
/// DESIGN.md §11). A reservation of `service_us` starts at
/// `max(now, busy_until)` and the returned wait is `start − now`; because
/// `now` is supplied by the caller, a schedule of arrivals produces
/// bit-reproducible waits on any machine.
pub struct VirtualClock {
    /// Busy-until horizon in nanoseconds on the caller's time base.
    busy_until_ns: AtomicU64,
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualClock {
    pub fn new() -> Self {
        Self {
            busy_until_ns: AtomicU64::new(0),
        }
    }

    /// Reserves `service_us` of occupancy starting no earlier than
    /// `now_us`; returns the queue wait in µs (0 when idle).
    pub fn reserve_at(&self, now_us: f64, service_us: f64) -> f64 {
        let now_ns = (now_us.max(0.0) * 1e3) as u64;
        let add_ns = (service_us.max(0.0) * 1e3) as u64;
        let mut busy = self.busy_until_ns.load(Ordering::Relaxed);
        loop {
            let start = busy.max(now_ns);
            match self.busy_until_ns.compare_exchange_weak(
                busy,
                start + add_ns,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return (start - now_ns) as f64 / 1e3,
                Err(actual) => busy = actual,
            }
        }
    }

    /// Backlog still queued at `now_us`: `max(busy_until − now, 0)` in µs.
    /// What the queue-aware load balancer ranks replicas by.
    pub fn backlog_us(&self, now_us: f64) -> f64 {
        let now_ns = (now_us.max(0.0) * 1e3) as u64;
        let busy = self.busy_until_ns.load(Ordering::Relaxed);
        busy.saturating_sub(now_ns) as f64 / 1e3
    }

    /// Clears the horizon so independent measurement runs don't observe
    /// each other's backlog.
    pub fn reset(&self) {
        self.busy_until_ns.store(0, Ordering::Relaxed);
    }
}

/// A shared virtual device timeline for concurrent serving: every disk
/// shard of a [`crate::serve::ShardedIndex`] reserves its batch occupancy
/// on one clock, so queries arriving while the device is busy observe
/// queue wait — the mechanism behind p99 saturation under offered load
/// beyond [`SsdModel::max_iops`].
///
/// The timeline is a [`VirtualClock`] driven by a real monotonic clock:
/// arrival times come from `Instant` (concurrency decides interleaving),
/// but the *cost* added per reservation is fully modeled.
pub struct SsdClock {
    epoch: Instant,
    timeline: VirtualClock,
}

impl Default for SsdClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SsdClock {
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            timeline: VirtualClock::new(),
        }
    }

    /// Reserves `device_us` of device occupancy starting no earlier than
    /// now; returns the queue wait in µs (0 when the device is idle).
    pub fn reserve(&self, device_us: f32) -> f32 {
        let now_us = self.epoch.elapsed().as_nanos() as f64 / 1e3;
        self.timeline.reserve_at(now_us, device_us as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_model_matches_legacy_per_sector_accounting() {
        // QD=1 closed form: no queue wait, and an I/O of b sectors costs
        // exactly b × latency — the pre-queueing model.
        let m = SsdModel::fixed(100.0);
        for sectors in [1usize, 2, 7] {
            assert_eq!(m.io_latency_us(sectors, 1), sectors as f32 * 100.0);
            assert_eq!(m.service_time_us(sectors), sectors as f32 * 100.0);
        }
        // A batch at QD=1 serialises: the sum of its members, i.e. the
        // legacy bill of `total sectors × latency`.
        let batch = m.batch_us([1usize, 1, 3], 1);
        assert_eq!(batch, 5.0 * 100.0);
        assert_eq!(m.mean_wait_us(0.0, 1), 0.0);
    }

    #[test]
    fn per_io_latency_is_monotone_in_queue_depth() {
        let m = SsdModel::nvme();
        let mut prev = 0.0;
        for qd in 1..=32 {
            let lat = m.io_latency_us(1, qd);
            assert!(
                lat >= prev,
                "latency must not drop with depth: qd={qd} {lat} < {prev}"
            );
            prev = lat;
        }
        // And strictly grows once depth exceeds a single command.
        assert!(m.io_latency_us(1, 16) > m.io_latency_us(1, 1));
    }

    #[test]
    fn batch_completion_shrinks_with_depth_until_channels_bind() {
        let m = SsdModel::nvme();
        let reads = [1usize; 16];
        let serial = m.batch_us(reads, 1);
        let qd4 = m.batch_us(reads, 4);
        let qd8 = m.batch_us(reads, 8);
        let qd32 = m.batch_us(reads, 32);
        assert!(qd4 < serial, "{qd4} vs {serial}");
        assert!(qd8 < qd4);
        // Depth beyond the device's channels buys nothing.
        assert_eq!(qd32, qd8);
        // Never below the slowest member.
        assert!(qd8 >= m.service_time_us(1));
    }

    #[test]
    fn coalescing_beats_separate_commands() {
        // One 4-sector command vs four 1-sector commands: the fixed
        // per-command cost is paid once instead of four times.
        let m = SsdModel::nvme();
        let one = m.batch_us([4usize], 1);
        let four = m.batch_us([1usize; 4], 1);
        assert!(one < four, "{one} vs {four}");
        assert_eq!(four - one, 3.0 * m.service_us);
    }

    #[test]
    fn mean_wait_is_monotone_and_diverges_at_saturation() {
        let m = SsdModel::nvme();
        let cap = m.max_iops(1);
        let mut prev = 0.0;
        for frac in [0.1f32, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let w = m.mean_wait_us(cap * frac, 1);
            assert!(w.is_finite());
            assert!(w >= prev, "wait must grow with load: {w} < {prev}");
            prev = w;
        }
        assert!(prev > 0.0);
        assert_eq!(m.mean_wait_us(cap, 1), f32::INFINITY);
        assert_eq!(m.mean_wait_us(cap * 1.5, 1), f32::INFINITY);
    }

    #[test]
    fn mean_wait_single_channel_matches_pollaczek_khinchine() {
        // c = 1, deterministic service: Wq = ρ·s / (2(1 − ρ)) exactly.
        let m = SsdModel {
            service_us: 0.0,
            transfer_us_per_sector: 100.0,
            channels: 1,
        };
        let s = m.service_time_us(1); // 100 µs → capacity 10k IOPS
        for rho in [0.2f32, 0.5, 0.8] {
            let offered = rho * 1e6 / s;
            let want = rho * s / (2.0 * (1.0 - rho));
            let got = m.mean_wait_us(offered, 1);
            assert!(
                (got - want).abs() < 1e-2,
                "rho={rho}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn open_load_p99_grows_past_saturation() {
        // With deterministic arrivals and service there is no queueing
        // below capacity (D/D/c): p99 sits at the bare service time. Once
        // the arrival rate exceeds max_iops the queue grows without bound
        // and p99 must grow strictly with every extra bit of load.
        let m = SsdModel::nvme();
        let per_request = vec![m.service_time_us(1); 4000];
        let cap_qps = m.max_iops(1);
        for frac in [0.5f32, 0.9] {
            let rep = simulate_open_load(&m, &per_request, cap_qps * frac);
            assert_eq!(rep.p99_us, m.service_time_us(1), "waitless below cap");
        }
        let mut prev = m.service_time_us(1);
        for frac in [1.1f32, 1.3, 1.5] {
            let rep = simulate_open_load(&m, &per_request, cap_qps * frac);
            assert!(
                rep.p99_us > prev,
                "p99 must grow past saturation: {} at {frac}x <= {prev}",
                rep.p99_us
            );
            assert!(rep.p50_us <= rep.p99_us);
            prev = rep.p99_us;
        }
        // Past saturation the queue is unbounded: p99 is dominated by
        // wait, far above the bare service time.
        assert!(prev > 50.0 * m.service_time_us(1));
        // Under-load sanity: almost no waiting.
        let light = simulate_open_load(&m, &per_request, cap_qps * 0.1);
        assert!(light.p99_us < 2.0 * m.service_time_us(1));
        assert!(light.utilization < 0.5);
    }

    #[test]
    fn open_load_handles_empty_and_zero_rate() {
        let m = SsdModel::nvme();
        let rep = simulate_open_load(&m, &[], 1000.0);
        assert_eq!(rep.p99_us, 0.0);
        let rep = simulate_open_load(&m, &[100.0], 0.0);
        assert_eq!(rep.p99_us, 0.0);
    }

    #[test]
    fn clock_reserves_serialise_and_report_wait() {
        let clock = SsdClock::new();
        // First reservation on an idle device: no wait.
        let w0 = clock.reserve(50_000.0);
        assert_eq!(w0, 0.0);
        // Immediately following reservations queue behind it; each waits
        // at least the remaining occupancy of the previous ones.
        let w1 = clock.reserve(50_000.0);
        assert!(w1 > 40_000.0, "second reservation must queue: {w1}");
        let w2 = clock.reserve(0.0);
        assert!(w2 > w1, "horizon keeps advancing: {w2} vs {w1}");
    }
}
