//! # rpq-anns
//!
//! PQ-integrated graph-based ANNS engines for the paper's two deployment
//! scenarios (§7):
//!
//! * [`memory::InMemoryIndex`] — **in-memory scenario**: compact codes and
//!   the codebook replace the original vectors in RAM next to the PG; the
//!   search relies on PQ (ADC) distances only, with no reranking.
//! * [`disk::DiskIndex`] — **SSD+memory hybrid scenario** (DiskANN-style):
//!   only the compact codes and codebook stay in RAM; the graph adjacency
//!   and full vectors live in a sector-aligned on-disk node store. Beam
//!   search ranks candidates by ADC and fetches each expanded node's block
//!   from disk, then reranks the final candidates with exact distances from
//!   the fetched vectors.
//!
//! [`harness`] runs query batches in parallel and produces the
//! QPS / recall@k / hops / disk-I/O curves every figure in the paper's §8
//! is built from. Disk latency is a configurable per-read model added to
//! measured compute time (DESIGN.md §4 substitution: simulated SSD).
//!
//! [`serve`] is the online counterpart of the offline harness: a sharded
//! concurrent serving layer — round-robin partitions over independent
//! shard indexes, a persistent worker pool with per-worker reusable
//! scratch, cross-shard top-k merging, request batching, and p50/p95/p99
//! latency metrics (DESIGN.md §7).
//!
//! [`stream`] is the live-corpus path (DESIGN.md §8): a FreshDiskANN-style
//! [`stream::StreamingIndex`] with greedy graph inserts, tombstoned
//! deletes, and threshold-gated consolidation, pluggable into the sharded
//! layer through the [`serve::MutableShardBackend`] extension.

pub mod cache;
pub mod disk;
pub mod filter;
pub mod harness;
pub mod memory;
pub mod serve;
pub mod ssd;
pub mod stream;

pub use cache::{CacheStats, NodeCache};
pub use disk::{DiskIndex, DiskIndexConfig, DiskSearchStats};
pub use filter::FilterStrategy;
pub use harness::{hybrid_qps, qps_at_recall, sweep_disk, sweep_memory, SweepPoint};
pub use memory::InMemoryIndex;
pub use serve::{
    BatchReport, LatencySummary, MutableShardBackend, ServeConfig, ServeEngine, Shard,
    ShardBackend, ShardQueryStats, ShardedIndex, WorkerPool,
};
pub use ssd::{simulate_open_load, OpenLoadReport, SsdClock, SsdModel};
pub use stream::{ConsolidateReport, StreamingConfig, StreamingIndex};
