//! Replica selection policies (DESIGN.md §11.2).
//!
//! A policy never changes *what* a query returns — every replica of a
//! group is bit-identical, so the §7.3 exact-merge contract holds under
//! any policy (pinned by tests/cluster.rs). It only changes *where* the
//! modeled service time lands, i.e. queue waits, goodput, and tails.
//!
//! All three policies are deterministic functions of the cluster's
//! virtual-time state (cursor positions, outstanding completions, busy
//! horizons), never of wall-clock arrival order, so an open-loop run is
//! bit-reproducible on any machine and at any `RPQ_THREADS`.

/// How a [`super::ReplicaSet`] picks which replica serves a read.
///
/// Ties always break toward the lowest replica index; disabled replicas
/// are never chosen. The preference is an *order*, not a single pick:
/// when the preferred replica fails (fault injection, DESIGN.md §11.5)
/// the set fails over to the next replica in the same order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadBalancePolicy {
    /// Cycle through the replicas with a per-set cursor. Oblivious to
    /// load, optimal when every request costs the same.
    #[default]
    RoundRobin,
    /// Fewest requests admitted-but-not-yet-completed (in virtual time)
    /// at decision time. Adapts to uneven request cost without needing a
    /// cost model at the balancer.
    LeastOutstanding,
    /// Earliest busy-until horizon on the replicas' virtual device
    /// timelines ([`crate::ssd::VirtualClock`], the deterministic cousin
    /// of the disk layer's shared `SsdClock`). Sees the *size* of queued
    /// work, not just its count, so it routes around a stalled replica
    /// fastest.
    QueueAware,
}

impl LoadBalancePolicy {
    /// Every policy, for "pinned under all policies" test sweeps.
    pub fn all() -> [LoadBalancePolicy; 3] {
        [
            LoadBalancePolicy::RoundRobin,
            LoadBalancePolicy::LeastOutstanding,
            LoadBalancePolicy::QueueAware,
        ]
    }

    /// Stable name for reports and JSON rows.
    pub fn name(&self) -> &'static str {
        match self {
            LoadBalancePolicy::RoundRobin => "round_robin",
            LoadBalancePolicy::LeastOutstanding => "least_outstanding",
            LoadBalancePolicy::QueueAware => "queue_aware",
        }
    }
}
