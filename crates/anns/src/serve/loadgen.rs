//! Open-loop load generation and the modeled service-cost clock
//! (DESIGN.md §11.4).
//!
//! Closed-loop batches (`ServeEngine::serve_batch`) can never show
//! overload: the client waits for completions, so offered load
//! self-throttles to capacity. An **open-loop** generator fixes the
//! arrival schedule up front — requests keep arriving whether or not the
//! system keeps up — which is the honest way to measure goodput, shed
//! fraction, and p99 past saturation. On this 1-core container the
//! schedule drives a deterministic virtual-time simulation (arrivals in
//! µs from t=0, service times from [`CostModel`]), so the cluster
//! experiment's curves are bit-reproducible; wall-clock concurrency
//! stays the closed-loop engine's job.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::ShardQueryStats;

/// One scheduled request: who asks what, when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Arrival on the virtual clock, µs from the schedule start.
    pub arrival_us: f64,
    /// Tenant id, for per-tenant quotas and tallies.
    pub tenant: u32,
    /// Index into the query set served with the schedule.
    pub query: u32,
}

/// A fixed arrival schedule, sorted by arrival time.
#[derive(Clone, Debug, Default)]
pub struct ArrivalSchedule {
    pub requests: Vec<Request>,
}

impl ArrivalSchedule {
    /// Poisson arrivals: `n` requests at `offered_qps` mean rate —
    /// exponential inter-arrival gaps from the seeded generator, tenant
    /// and query drawn uniformly. Same seed, same schedule, any machine.
    pub fn open_loop(
        n: usize,
        offered_qps: f64,
        n_queries: usize,
        tenants: u32,
        seed: u64,
    ) -> Self {
        assert!(offered_qps > 0.0, "offered load must be positive");
        assert!(n_queries > 0, "need at least one query to schedule");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t_us = 0.0f64;
        let requests = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t_us += -u.ln() * 1e6 / offered_qps;
                Request {
                    arrival_us: t_us,
                    tenant: if tenants <= 1 {
                        0
                    } else {
                        rng.gen_range(0..tenants)
                    },
                    query: rng.gen_range(0..n_queries as u32),
                }
            })
            .collect();
        Self { requests }
    }

    /// Every request at t=0 — what a closed-loop batch looks like to the
    /// admission gate (the queue bound binds immediately).
    pub fn burst(n: usize, n_queries: usize) -> Self {
        assert!(n_queries > 0, "need at least one query to schedule");
        let requests = (0..n)
            .map(|i| Request {
                arrival_us: 0.0,
                tenant: 0,
                query: (i % n_queries) as u32,
            })
            .collect();
        Self { requests }
    }

    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Last arrival time (µs) — the horizon offered load is measured over.
    pub fn span_us(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival_us)
    }
}

/// Converts a query's deterministic work counters into modeled service
/// time. Distance evaluations and hops are the thread-invariant cost
/// drivers (DESIGN.md §7.6); modeled I/O waits pass through as-is, which
/// is how an injected device stall (fault.rs) reaches the admission gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-request overhead, µs.
    pub fixed_us: f32,
    /// Cost per distance-estimator invocation, µs.
    pub per_dist_us: f32,
    /// Cost per next-hop selection, µs.
    pub per_hop_us: f32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            fixed_us: 2.0,
            per_dist_us: 0.02,
            per_hop_us: 0.1,
        }
    }
}

impl CostModel {
    /// Modeled service time (µs) for a query that did `stats` worth of
    /// work on one replica.
    pub fn service_us(&self, stats: &ShardQueryStats) -> f64 {
        self.fixed_us as f64
            + self.per_dist_us as f64 * stats.dist_comps as f64
            + self.per_hop_us as f64 * stats.hops as f64
            + stats.modeled_wait_seconds() as f64 * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_schedule_is_seeded_sorted_and_rate_calibrated() {
        let a = ArrivalSchedule::open_loop(2000, 500.0, 16, 3, 9);
        let b = ArrivalSchedule::open_loop(2000, 500.0, 16, 3, 9);
        assert_eq!(a.requests, b.requests, "same seed, same schedule");
        let c = ArrivalSchedule::open_loop(2000, 500.0, 16, 3, 10);
        assert_ne!(a.requests, c.requests, "seed must matter");
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us));
        // 2000 arrivals at 500 QPS should span ~4 s of virtual time.
        let span_s = a.span_us() / 1e6;
        assert!((3.0..5.0).contains(&span_s), "span {span_s:.2}s");
        assert!(a.requests.iter().any(|r| r.tenant == 2));
        assert!(a.requests.iter().all(|r| r.tenant < 3 && r.query < 16));
    }

    #[test]
    fn burst_schedule_arrives_all_at_once() {
        let s = ArrivalSchedule::burst(5, 2);
        assert_eq!(s.len(), 5);
        assert_eq!(s.span_us(), 0.0);
        assert!(s.requests.iter().all(|r| r.arrival_us == 0.0));
    }

    #[test]
    fn cost_model_charges_counters_and_modeled_waits() {
        let cost = CostModel {
            fixed_us: 1.0,
            per_dist_us: 0.5,
            per_hop_us: 2.0,
        };
        let stats = ShardQueryStats {
            hops: 3,
            dist_comps: 10,
            io_stall_seconds: 1e-6,
            io_queue_seconds: 2e-6,
            ..Default::default()
        };
        // 1 + 0.5*10 + 2*3 + 3 = 15 (f32 stats, so micro-µs slack)
        assert!((cost.service_us(&stats) - 15.0).abs() < 1e-4);
    }
}
