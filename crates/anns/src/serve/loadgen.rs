//! Open-loop load generation and the modeled service-cost clock
//! (DESIGN.md §11.4).
//!
//! Closed-loop batches (`ServeEngine::serve_batch`) can never show
//! overload: the client waits for completions, so offered load
//! self-throttles to capacity. An **open-loop** generator fixes the
//! arrival schedule up front — requests keep arriving whether or not the
//! system keeps up — which is the honest way to measure goodput, shed
//! fraction, and p99 past saturation. On this 1-core container the
//! schedule drives a deterministic virtual-time simulation (arrivals in
//! µs from t=0, service times from [`CostModel`]), so the cluster
//! experiment's curves are bit-reproducible; wall-clock concurrency
//! stays the closed-loop engine's job.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rpq_data::LabelPredicate;

use super::ShardQueryStats;
use crate::filter::FilterStrategy;

/// The filtered half of a request: which predicate constrains the results
/// and how the engine should push it into the search (DESIGN.md §12).
/// `Copy` (12 bytes) so scheduled requests carry it by value through every
/// serving layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilteredQuery {
    /// The label predicate results must satisfy.
    pub pred: LabelPredicate,
    /// How the predicate is pushed into beam search.
    pub strategy: FilterStrategy,
}

/// One scheduled request: who asks what, when — and under which predicate,
/// if any.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Arrival on the virtual clock, µs from the schedule start.
    pub arrival_us: f64,
    /// Tenant id, for per-tenant quotas and tallies.
    pub tenant: u32,
    /// Index into the query set served with the schedule.
    pub query: u32,
    /// Predicate constraint, `None` for unfiltered requests.
    pub filter: Option<FilteredQuery>,
}

/// A fixed arrival schedule, sorted by arrival time.
#[derive(Clone, Debug, Default)]
pub struct ArrivalSchedule {
    pub requests: Vec<Request>,
}

impl ArrivalSchedule {
    /// Poisson arrivals: `n` requests at `offered_qps` mean rate —
    /// exponential inter-arrival gaps from the seeded generator, tenant
    /// and query drawn uniformly. Same seed, same schedule, any machine.
    pub fn open_loop(
        n: usize,
        offered_qps: f64,
        n_queries: usize,
        tenants: u32,
        seed: u64,
    ) -> Self {
        assert!(offered_qps > 0.0, "offered load must be positive");
        assert!(n_queries > 0, "need at least one query to schedule");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t_us = 0.0f64;
        let requests = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t_us += -u.ln() * 1e6 / offered_qps;
                Request {
                    arrival_us: t_us,
                    tenant: if tenants <= 1 {
                        0
                    } else {
                        rng.gen_range(0..tenants)
                    },
                    query: rng.gen_range(0..n_queries as u32),
                    filter: None,
                }
            })
            .collect();
        Self { requests }
    }

    /// [`ArrivalSchedule::open_loop`] with **Zipf-skewed query selection**:
    /// query index `q` is drawn with probability ∝ `1/(q+1)^s` (index 0
    /// hottest), via a precomputed rank CDF and binary search — seeded and
    /// bit-reproducible like everything else here. `s = 0` degenerates to
    /// uniform (but through the CDF path, so the RNG stream differs from
    /// [`ArrivalSchedule::open_loop`]'s). Skewed traffic is what makes
    /// trace-warmed node caches pay off: a heavy head re-touches the same
    /// graph neighborhoods, so hit rates climb with `s`.
    pub fn open_loop_zipf(
        n: usize,
        offered_qps: f64,
        n_queries: usize,
        tenants: u32,
        seed: u64,
        s: f64,
    ) -> Self {
        assert!(offered_qps > 0.0, "offered load must be positive");
        assert!(n_queries > 0, "need at least one query to schedule");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        // Rank CDF over query indices: weights 1/(r+1)^s, cumulative,
        // normalized to [0, 1].
        let mut cdf = Vec::with_capacity(n_queries);
        let mut acc = 0.0f64;
        for r in 0..n_queries {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t_us = 0.0f64;
        let requests = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t_us += -u.ln() * 1e6 / offered_qps;
                let tenant = if tenants <= 1 {
                    0
                } else {
                    rng.gen_range(0..tenants)
                };
                let z: f64 = rng.gen_range(0.0..1.0);
                let query = cdf.partition_point(|&c| c < z).min(n_queries - 1) as u32;
                Request {
                    arrival_us: t_us,
                    tenant,
                    query,
                    filter: None,
                }
            })
            .collect();
        Self { requests }
    }

    /// Stamps every request with the same predicate — how an experiment
    /// turns a traffic schedule into filtered traffic.
    pub fn with_filter(mut self, filter: FilteredQuery) -> Self {
        for r in &mut self.requests {
            r.filter = Some(filter);
        }
        self
    }

    /// Stamps request `i` with `filters[i % filters.len()]` — mixed-
    /// predicate traffic from one schedule (deterministic round-robin over
    /// the predicate set).
    pub fn with_filters(mut self, filters: &[FilteredQuery]) -> Self {
        assert!(!filters.is_empty(), "need at least one filter to stamp");
        for (i, r) in self.requests.iter_mut().enumerate() {
            r.filter = Some(filters[i % filters.len()]);
        }
        self
    }

    /// Every request at t=0 — what a closed-loop batch looks like to the
    /// admission gate (the queue bound binds immediately).
    pub fn burst(n: usize, n_queries: usize) -> Self {
        assert!(n_queries > 0, "need at least one query to schedule");
        let requests = (0..n)
            .map(|i| Request {
                arrival_us: 0.0,
                tenant: 0,
                query: (i % n_queries) as u32,
                filter: None,
            })
            .collect();
        Self { requests }
    }

    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Last arrival time (µs) — the horizon offered load is measured over.
    pub fn span_us(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival_us)
    }
}

/// Converts a query's deterministic work counters into modeled service
/// time. Distance evaluations and hops are the thread-invariant cost
/// drivers (DESIGN.md §7.6); modeled I/O waits pass through as-is, which
/// is how an injected device stall (fault.rs) reaches the admission gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-request overhead, µs.
    pub fixed_us: f32,
    /// Cost per distance-estimator invocation, µs.
    pub per_dist_us: f32,
    /// Cost per next-hop selection, µs.
    pub per_hop_us: f32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            fixed_us: 2.0,
            per_dist_us: 0.02,
            per_hop_us: 0.1,
        }
    }
}

impl CostModel {
    /// Modeled service time (µs) for a query that did `stats` worth of
    /// work on one replica.
    pub fn service_us(&self, stats: &ShardQueryStats) -> f64 {
        self.fixed_us as f64
            + self.per_dist_us as f64 * stats.dist_comps as f64
            + self.per_hop_us as f64 * stats.hops as f64
            + stats.modeled_wait_seconds() as f64 * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_schedule_is_seeded_sorted_and_rate_calibrated() {
        let a = ArrivalSchedule::open_loop(2000, 500.0, 16, 3, 9);
        let b = ArrivalSchedule::open_loop(2000, 500.0, 16, 3, 9);
        assert_eq!(a.requests, b.requests, "same seed, same schedule");
        let c = ArrivalSchedule::open_loop(2000, 500.0, 16, 3, 10);
        assert_ne!(a.requests, c.requests, "seed must matter");
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us));
        // 2000 arrivals at 500 QPS should span ~4 s of virtual time.
        let span_s = a.span_us() / 1e6;
        assert!((3.0..5.0).contains(&span_s), "span {span_s:.2}s");
        assert!(a.requests.iter().any(|r| r.tenant == 2));
        assert!(a.requests.iter().all(|r| r.tenant < 3 && r.query < 16));
    }

    #[test]
    fn zipf_schedule_is_seeded_and_skews_toward_the_head() {
        let a = ArrivalSchedule::open_loop_zipf(4000, 500.0, 32, 2, 7, 1.1);
        let b = ArrivalSchedule::open_loop_zipf(4000, 500.0, 32, 2, 7, 1.1);
        assert_eq!(a.requests, b.requests, "same seed, same schedule");
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert!(a.requests.iter().all(|r| r.query < 32 && r.tenant < 2));
        // Head query share under Zipf(1.1) over 32 ranks is ~24%; uniform
        // would be ~3%. The top-4 head must dominate a uniform draw.
        let head = a.requests.iter().filter(|r| r.query < 4).count() as f64 / 4000.0;
        assert!(head > 0.35, "Zipf head share too small: {head:.3}");
        let uniform = ArrivalSchedule::open_loop_zipf(4000, 500.0, 32, 2, 7, 0.0);
        let head_u = uniform.requests.iter().filter(|r| r.query < 4).count() as f64 / 4000.0;
        assert!(
            (head_u - 4.0 / 32.0).abs() < 0.04,
            "s=0 must be uniform: {head_u:.3}"
        );
    }

    #[test]
    fn filter_stamping_covers_every_request() {
        let f0 = FilteredQuery {
            pred: LabelPredicate::single(0),
            strategy: FilterStrategy::DuringTraversal,
        };
        let f1 = FilteredQuery {
            pred: LabelPredicate::single(1),
            strategy: FilterStrategy::PostFilter { inflation: 4 },
        };
        let s = ArrivalSchedule::open_loop(10, 100.0, 4, 1, 3).with_filter(f0);
        assert!(s.requests.iter().all(|r| r.filter == Some(f0)));
        let s = ArrivalSchedule::open_loop(10, 100.0, 4, 1, 3).with_filters(&[f0, f1]);
        assert_eq!(s.requests[0].filter, Some(f0));
        assert_eq!(s.requests[1].filter, Some(f1));
        assert_eq!(s.requests[2].filter, Some(f0));
    }

    #[test]
    fn burst_schedule_arrives_all_at_once() {
        let s = ArrivalSchedule::burst(5, 2);
        assert_eq!(s.len(), 5);
        assert_eq!(s.span_us(), 0.0);
        assert!(s.requests.iter().all(|r| r.arrival_us == 0.0));
    }

    #[test]
    fn cost_model_charges_counters_and_modeled_waits() {
        let cost = CostModel {
            fixed_us: 1.0,
            per_dist_us: 0.5,
            per_hop_us: 2.0,
        };
        let stats = ShardQueryStats {
            hops: 3,
            dist_comps: 10,
            io_stall_seconds: 1e-6,
            io_queue_seconds: 2e-6,
            ..Default::default()
        };
        // 1 + 0.5*10 + 2*3 + 3 = 15 (f32 stats, so micro-µs slack)
        assert!((cost.service_us(&stats) - 15.0).abs() < 1e-4);
    }
}
