//! Fault injection for the serving cluster (DESIGN.md §11.5).
//!
//! [`FlakyBackend`] wraps any frozen [`ShardBackend`] and misbehaves on
//! command: hard-down, seeded random read failures, or injected latency
//! stalls. The switches are atomics behind an `Arc`, so a test holds one
//! handle, hands a clone to the cluster, and flips failure modes while
//! requests are in flight — that is how tests/cluster.rs pins "a replica
//! failure degrades goodput but never corrupts top-k".
//!
//! Failure schedules are seeded (SplitMix64 over a read counter), never
//! wall-clock driven, so every fault scenario replays bit-identically.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use rpq_data::LabelPredicate;
use rpq_graph::{Neighbor, SearchScratch};

use super::{ShardBackend, ShardQueryStats};
use crate::filter::FilterStrategy;

/// Why a replica read did not produce a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaFault;

impl std::fmt::Display for ReplicaFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica read failed")
    }
}

/// SplitMix64 — the same tiny generator the vendored `rand` seeds with;
/// one step per read gives an i.i.d. failure schedule from one seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A [`ShardBackend`] that fails or stalls reads on a seeded schedule.
pub struct FlakyBackend {
    inner: Box<dyn ShardBackend>,
    seed: u64,
    /// Hard-down switch: every read fails while set.
    down: AtomicBool,
    /// Probability in [0, 1] (f32 bits) that a given read fails.
    fail_rate_bits: AtomicU32,
    /// Extra modeled latency injected per read, in µs (f32 bits). Charged
    /// to `io_queue_seconds` so the admission cost model sees the spike.
    stall_us_bits: AtomicU32,
    /// Reads attempted (failed or not) — lets tests prove shed requests
    /// were never executed.
    reads: AtomicUsize,
    /// Reads that failed (down or seeded).
    failed: AtomicUsize,
}

impl FlakyBackend {
    /// Wraps `inner`; starts healthy (no failures, no stall).
    pub fn new(inner: Box<dyn ShardBackend>, seed: u64) -> Self {
        Self {
            inner,
            seed,
            down: AtomicBool::new(false),
            fail_rate_bits: AtomicU32::new(0.0f32.to_bits()),
            stall_us_bits: AtomicU32::new(0.0f32.to_bits()),
            reads: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
        }
    }

    /// Hard-fails every read while `on` (a crashed / partitioned replica).
    pub fn set_down(&self, on: bool) {
        self.down.store(on, Ordering::Relaxed);
    }

    /// True while the hard-down switch is set.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// Fails each read independently with probability `rate` (clamped to
    /// [0, 1]), on the seeded schedule.
    pub fn set_fail_rate(&self, rate: f32) {
        self.fail_rate_bits
            .store(rate.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// Injects `stall_us` of modeled latency into every successful read
    /// (a degraded device / overloaded replica, not a dead one).
    pub fn set_stall_us(&self, stall_us: f32) {
        self.stall_us_bits
            .store(stall_us.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Reads attempted so far (successful or failed).
    pub fn reads(&self) -> usize {
        self.reads.load(Ordering::Relaxed)
    }

    /// Reads that failed so far.
    pub fn failed(&self) -> usize {
        self.failed.load(Ordering::Relaxed)
    }

    /// The fallible read path. On success the result is exactly the inner
    /// backend's (never truncated or reordered — corruption is not one of
    /// the simulated faults; DESIGN.md §11.5 says why), with any injected
    /// stall charged to the stats' queue-wait column.
    pub fn try_search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats), ReplicaFault> {
        let ticket = self.reads.fetch_add(1, Ordering::Relaxed);
        if self.down.load(Ordering::Relaxed) {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return Err(ReplicaFault);
        }
        let rate = f32::from_bits(self.fail_rate_bits.load(Ordering::Relaxed));
        if rate > 0.0 {
            // Map the ticket through SplitMix64 to a uniform in [0, 1).
            let u = (splitmix64(self.seed ^ ticket as u64) >> 11) as f64 / (1u64 << 53) as f64;
            if (u as f32) < rate {
                self.failed.fetch_add(1, Ordering::Relaxed);
                return Err(ReplicaFault);
            }
        }
        let (res, mut stats) = self.inner.search_local(query, ef, k, scratch);
        let stall_us = f32::from_bits(self.stall_us_bits.load(Ordering::Relaxed));
        if stall_us > 0.0 {
            stats.io_queue_seconds += stall_us / 1e6;
        }
        Ok((res, stats))
    }

    /// The fallible filtered read path: the same seeded fault schedule as
    /// [`FlakyBackend::try_search_local`] (one ticket per read, filtered or
    /// not), forwarding to the inner backend's filtered search on success.
    pub fn try_search_local_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats), ReplicaFault> {
        let ticket = self.reads.fetch_add(1, Ordering::Relaxed);
        if self.down.load(Ordering::Relaxed) {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return Err(ReplicaFault);
        }
        let rate = f32::from_bits(self.fail_rate_bits.load(Ordering::Relaxed));
        if rate > 0.0 {
            let u = (splitmix64(self.seed ^ ticket as u64) >> 11) as f64 / (1u64 << 53) as f64;
            if (u as f32) < rate {
                self.failed.fetch_add(1, Ordering::Relaxed);
                return Err(ReplicaFault);
            }
        }
        let (res, mut stats) = self
            .inner
            .search_local_filtered(query, pred, strategy, ef, k, scratch);
        let stall_us = f32::from_bits(self.stall_us_bits.load(Ordering::Relaxed));
        if stall_us > 0.0 {
            stats.io_queue_seconds += stall_us / 1e6;
        }
        Ok((res, stats))
    }
}

impl ShardBackend for FlakyBackend {
    /// The infallible [`ShardBackend`] face panics on an injected fault —
    /// callers that can degrade must use
    /// [`FlakyBackend::try_search_local`]; the cluster does.
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        self.try_search_local(query, ef, k, scratch)
            .expect("injected fault on a path with no failover")
    }

    fn search_local_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        self.try_search_local_filtered(query, pred, strategy, ef, k, scratch)
            .expect("injected fault on a path with no failover")
    }

    fn shard_len(&self) -> usize {
        self.inner.shard_len()
    }

    fn resident_bytes(&self) -> usize {
        self.inner.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub;
    impl ShardBackend for Stub {
        fn search_local(
            &self,
            _query: &[f32],
            _ef: usize,
            k: usize,
            _scratch: &mut SearchScratch,
        ) -> (Vec<Neighbor>, ShardQueryStats) {
            let res = (0..k as u32)
                .map(|id| Neighbor {
                    id,
                    dist: id as f32,
                })
                .collect();
            (res, ShardQueryStats::default())
        }
        fn search_local_filtered(
            &self,
            query: &[f32],
            _pred: LabelPredicate,
            _strategy: FilterStrategy,
            ef: usize,
            k: usize,
            scratch: &mut SearchScratch,
        ) -> (Vec<Neighbor>, ShardQueryStats) {
            self.search_local(query, ef, k, scratch)
        }
        fn shard_len(&self) -> usize {
            8
        }
        fn resident_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn down_switch_fails_everything_and_recovers() {
        let flaky = FlakyBackend::new(Box::new(Stub), 1);
        let mut scratch = SearchScratch::new();
        assert!(flaky.try_search_local(&[], 4, 2, &mut scratch).is_ok());
        flaky.set_down(true);
        assert!(flaky.is_down());
        assert!(flaky.try_search_local(&[], 4, 2, &mut scratch).is_err());
        flaky.set_down(false);
        assert!(flaky.try_search_local(&[], 4, 2, &mut scratch).is_ok());
        assert_eq!(flaky.reads(), 3);
        assert_eq!(flaky.failed(), 1);
    }

    #[test]
    fn seeded_fail_rate_is_reproducible_and_roughly_calibrated() {
        let schedule = |seed: u64| -> Vec<bool> {
            let flaky = FlakyBackend::new(Box::new(Stub), seed);
            flaky.set_fail_rate(0.3);
            let mut scratch = SearchScratch::new();
            (0..500)
                .map(|_| flaky.try_search_local(&[], 4, 2, &mut scratch).is_err())
                .collect()
        };
        let a = schedule(42);
        assert_eq!(a, schedule(42), "same seed must replay identically");
        let fails = a.iter().filter(|&&f| f).count();
        assert!(
            (100..200).contains(&fails),
            "rate 0.3 of 500 reads, got {fails}"
        );
        assert_ne!(a, schedule(43), "different seed, different schedule");
    }

    #[test]
    fn stall_charges_queue_seconds_without_touching_results() {
        let flaky = FlakyBackend::new(Box::new(Stub), 1);
        let mut scratch = SearchScratch::new();
        let (clean, base) = flaky.try_search_local(&[], 4, 3, &mut scratch).unwrap();
        flaky.set_stall_us(2_000.0);
        let (stalled, stats) = flaky.try_search_local(&[], 4, 3, &mut scratch).unwrap();
        assert_eq!(clean, stalled, "stall must not change results");
        assert!((stats.io_queue_seconds - base.io_queue_seconds - 2e-3).abs() < 1e-6);
    }
}
