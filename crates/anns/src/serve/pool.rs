//! Persistent search-worker thread pool (DESIGN.md §7.2).
//!
//! Workers live for the lifetime of the pool and each one owns a single
//! reusable [`SearchScratch`], so steady-state queries allocate no visited
//! maps — the scratch is sized once for the largest shard and then reset in
//! O(touched) per query (the perf property `rpq_graph::beam_search` is
//! built around). Jobs are `FnOnce(&mut SearchScratch)` closures pulled
//! from a shared MPMC queue (an [`mpsc`] receiver behind a mutex — the
//! classic std-only work-sharing arrangement, which the vendored
//! `parking_lot` shim keeps dependency-free).

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use rpq_graph::SearchScratch;

/// A unit of work executed on a pool worker with that worker's scratch.
type Job = Box<dyn FnOnce(&mut SearchScratch) + Send + 'static>;

/// Fixed-size pool of persistent search workers.
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each owning a scratch pre-sized for
    /// graphs of up to `scratch_capacity` vertices.
    pub fn new(workers: usize, scratch_capacity: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || {
                    let mut scratch = SearchScratch::with_capacity(scratch_capacity);
                    loop {
                        // Hold the queue lock only for the dequeue, never
                        // while running the job.
                        let job = receiver.lock().recv();
                        match job {
                            Ok(job) => {
                                // A panicking job must not take the worker
                                // down with it: a dead worker strands every
                                // job still queued (senders trapped in the
                                // queue would hang result collectors
                                // forever). Contain the panic, hand the
                                // worker a fresh scratch, keep serving; the
                                // submitter detects the lost job through
                                // its dropped result channel.
                                let caught =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        job(&mut scratch)
                                    }));
                                if caught.is_err() {
                                    scratch = SearchScratch::with_capacity(scratch_capacity);
                                }
                            }
                            Err(_) => break, // pool dropped, queue drained
                        }
                    }
                })
            })
            .collect();
        Self {
            sender: Some(sender),
            workers: handles,
        }
    }

    /// Enqueues a job; some idle worker will run it with its own scratch.
    pub fn submit(&self, job: impl FnOnce(&mut SearchScratch) + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(Box::new(job))
            .expect("worker threads alive until drop");
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue: workers finish whatever is enqueued, then exit.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The default worker count: the configured pool width — `RPQ_THREADS`
/// if set, otherwise one per available core (the paper evaluates with 8
/// search threads; DESIGN.md §7.2). One knob sizes both the offline
/// sweep harness and the serving pool.
pub fn default_workers() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run() {
        let pool = WorkerPool::new(4, 100);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 10);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.submit(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins after the queue closes, so all 32 must run.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn workers_reuse_their_scratch() {
        // The scratch must arrive pre-sized: capacity implies memory.
        let pool = WorkerPool::new(1, 5000);
        let (tx, rx) = mpsc::channel();
        pool.submit(move |scratch| {
            tx.send(scratch.memory_bytes()).unwrap();
        });
        let bytes = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert!(bytes >= 5000, "scratch not pre-sized: {bytes} bytes");
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 10);
        pool.submit(|_| panic!("job blew up"));
        // The single worker must survive to run this second job.
        let (tx, rx) = mpsc::channel();
        pool.submit(move |scratch| {
            tx.send(scratch.memory_bytes()).unwrap();
        });
        let bytes = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert!(bytes >= 10, "replacement scratch not pre-sized");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0, 10);
        assert_eq!(pool.workers(), 1);
    }
}
