//! Latency/throughput accounting for the serving layer (DESIGN.md §7.4).
//!
//! Every served query records one wall-clock latency sample; snapshots
//! reduce the samples to the operational readouts a serving dashboard
//! would plot: QPS, mean, and the p50/p95/p99 tail percentiles.

use std::time::Duration;

use parking_lot::Mutex;

/// Reduced view over a set of latency samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples reduced.
    pub count: usize,
    /// Mean latency, microseconds.
    pub mean_us: f32,
    /// Median latency, microseconds.
    pub p50_us: f32,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f32,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f32,
    /// Worst observed latency, microseconds.
    pub max_us: f32,
}

impl LatencySummary {
    /// Reduces raw microsecond samples (nearest-rank percentiles).
    pub fn from_samples(samples: &[f32]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f32::total_cmp);
        let pct = |p: f32| -> f32 {
            let rank = ((p / 100.0) * sorted.len() as f32).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            mean_us: sorted.iter().sum::<f32>() / sorted.len() as f32,
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            max_us: *sorted.last().unwrap(),
        }
    }
}

/// Samples the default recorder window holds — large enough for stable
/// p99s, small enough that a long-lived engine's memory stays flat.
pub const DEFAULT_WINDOW: usize = 65_536;

/// Thread-safe accumulator of per-query latency samples over a **sliding
/// window** of the most recent queries. One recorder lives for the whole
/// lifetime of a [`crate::serve::ServeEngine`]; bounding the window keeps
/// a production engine's memory flat and every snapshot O(window) instead
/// of O(lifetime queries). Per-batch summaries are computed from the
/// batch's own samples, not the recorder.
pub struct LatencyRecorder {
    inner: Mutex<Window>,
}

/// Ring buffer of recent samples plus the lifetime total.
struct Window {
    samples_us: Vec<f32>,
    capacity: usize,
    next: usize,
    total: u64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder keeping the most recent `window` samples (≥ 1).
    pub fn with_window(window: usize) -> Self {
        Self {
            inner: Mutex::new(Window {
                samples_us: Vec::new(),
                capacity: window.max(1),
                next: 0,
                total: 0,
            }),
        }
    }

    /// Records one query's wall-clock latency.
    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_secs_f32() * 1e6);
    }

    /// Records a pre-converted microsecond sample, evicting the oldest
    /// sample once the window is full.
    pub fn record_us(&self, us: f32) {
        let mut w = self.inner.lock();
        if w.samples_us.len() < w.capacity {
            w.samples_us.push(us);
        } else {
            let slot = w.next;
            w.samples_us[slot] = us;
        }
        w.next = (w.next + 1) % w.capacity;
        w.total += 1;
    }

    /// Lifetime total of samples recorded (not capped by the window).
    pub fn count(&self) -> usize {
        self.inner.lock().total as usize
    }

    /// Percentile summary over the current window.
    pub fn snapshot(&self) -> LatencySummary {
        LatencySummary::from_samples(&self.inner.lock().samples_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us, 0.0);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let samples: Vec<f32> = (1..=1000).map(|i| i as f32).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_us, 500.0);
        assert_eq!(s.p95_us, 950.0);
        assert_eq!(s.p99_us, 990.0);
        assert_eq!(s.max_us, 1000.0);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
    }

    #[test]
    fn single_sample_percentiles_collapse() {
        let s = LatencySummary::from_samples(&[42.0]);
        assert_eq!(s.p50_us, 42.0);
        assert_eq!(s.p99_us, 42.0);
        assert_eq!(s.mean_us, 42.0);
    }

    #[test]
    fn recorder_accumulates_across_calls() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_micros(100));
        r.record_us(300.0);
        assert_eq!(r.count(), 2);
        let s = r.snapshot();
        assert_eq!(s.count, 2);
        assert!((s.mean_us - 200.0).abs() < 1.0);
    }

    #[test]
    fn summary_unaffected_by_sample_order() {
        let a = LatencySummary::from_samples(&[3.0, 1.0, 2.0]);
        let b = LatencySummary::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn window_evicts_oldest_but_keeps_lifetime_count() {
        let r = LatencyRecorder::with_window(4);
        for us in [1.0f32, 2.0, 3.0, 4.0, 100.0, 200.0] {
            r.record_us(us);
        }
        assert_eq!(r.count(), 6, "lifetime total must not be window-capped");
        let s = r.snapshot();
        assert_eq!(s.count, 4, "window holds the most recent 4");
        // 1.0 and 2.0 were evicted; the window is {3, 4, 100, 200}.
        assert_eq!(s.max_us, 200.0);
        assert!(s.mean_us > 75.0, "evicted samples still in window: {s:?}");
    }
}
