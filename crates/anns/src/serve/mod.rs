//! Sharded concurrent serving layer (DESIGN.md §7).
//!
//! The offline [`crate::harness`] answers "how good is one index"; this
//! module answers "how do we serve it": the base set is partitioned across
//! `N` independent shards (each a full [`InMemoryIndex`] or
//! [`DiskIndex`] over its partition), every query fans out to all shards
//! through a persistent [`WorkerPool`] whose workers each reuse one
//! [`rpq_graph::SearchScratch`], and the per-shard top-k lists are merged
//! into a global top-k. [`ServeEngine`] adds request batching and a
//! latency/QPS collector reporting p50/p95/p99 tails.
//!
//! Sharding preserves the result contract: all shards share one trained
//! compressor, so a vector's ADC distance is identical wherever it lives,
//! and merging per-shard top-k lists over a disjoint partition is exactly
//! the global top-k of the union (DESIGN.md §7.3). The integration tests
//! pin this down by checking sharded == unsharded results at exhaustive
//! beam widths.

pub mod admission;
pub mod balance;
pub mod cluster;
pub mod engine;
pub mod fault;
pub mod loadgen;
pub mod metrics;
pub mod pool;

pub use admission::{AdmissionConfig, RejectReason, TokenBucketConfig};
pub use balance::LoadBalancePolicy;
pub use cluster::{
    ClusterEngine, ClusterGroup, ClusterHandle, ClusterIndex, ClusterReport, Replica, ReplicaSet,
    RequestOutcome, TenantTally,
};
pub use engine::{BatchReport, ServeConfig, ServeEngine};
pub use fault::{FlakyBackend, ReplicaFault};
pub use loadgen::{ArrivalSchedule, CostModel, FilteredQuery, Request};
pub use metrics::{LatencyRecorder, LatencySummary};
pub use pool::{default_workers, WorkerPool};

use std::io;
use std::sync::Arc;

use rpq_data::{Dataset, LabelPredicate, Labels};
use rpq_graph::{Neighbor, ProximityGraph, SearchScratch};
use rpq_quant::VectorCompressor;

use crate::disk::{DiskIndex, DiskIndexConfig};
use crate::filter::FilterStrategy;
use crate::memory::InMemoryIndex;
use crate::stream::{StreamingConfig, StreamingIndex};

/// Per-shard, per-query cost counters (superset of the in-memory and
/// hybrid stats so both backends fit one serving path).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardQueryStats {
    /// Next-hop selections.
    pub hops: usize,
    /// Distance-estimator invocations.
    pub dist_comps: usize,
    /// Raw sector reads issued (0 for in-memory shards).
    pub io_reads: usize,
    /// Modelled I/O commands after coalescing (0 for in-memory shards).
    pub coalesced_ios: usize,
    /// Node lookups served from the shard's RAM node cache.
    pub cache_hits: usize,
    /// Node lookups that went to the shard's store.
    pub cache_misses: usize,
    /// Modelled device seconds (0 for in-memory shards).
    pub io_seconds: f32,
    /// Modelled I/O seconds not hidden behind compute by the pipelined
    /// disk engine (== `io_seconds` at `io_width = 1`).
    pub io_stall_seconds: f32,
    /// Queue wait on the shared device timeline under concurrent serving.
    pub io_queue_seconds: f32,
}

impl ShardQueryStats {
    /// Accumulates another shard's counters (fan-out totals per query).
    pub fn merge(&mut self, other: &ShardQueryStats) {
        self.hops += other.hops;
        self.dist_comps += other.dist_comps;
        self.io_reads += other.io_reads;
        self.coalesced_ios += other.coalesced_ios;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.io_seconds += other.io_seconds;
        self.io_stall_seconds += other.io_stall_seconds;
        self.io_queue_seconds += other.io_queue_seconds;
    }

    /// Modelled seconds a query actually waits on the device: unhidden
    /// service time plus queueing behind other queries' commands.
    pub fn modeled_wait_seconds(&self) -> f32 {
        self.io_stall_seconds + self.io_queue_seconds
    }
}

/// One searchable partition: anything that can answer a top-k query over
/// its local id space. Implemented by both deployment scenarios' indexes
/// so a [`ShardedIndex`] can mix them.
pub trait ShardBackend: Send + Sync {
    /// Top-`k` under beam width `ef`, ids local to this shard. Both
    /// scenarios route with `scratch` (visited epochs, staging buffers and
    /// the disk engine's exact-distance memo all live there).
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats);

    /// Top-`k` among local vectors satisfying `pred` (DESIGN.md §12). The
    /// predicate and strategy are concrete `Copy` types so this trait stays
    /// object-safe (the serving layers hold shards as `dyn ShardBackend`).
    /// Panics when the backend carries no labels.
    fn search_local_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats);

    /// Vectors indexed by this shard.
    fn shard_len(&self) -> usize;

    /// RAM held by this shard (codes + model + graph or cache).
    fn resident_bytes(&self) -> usize;
}

/// The mutation extension of [`ShardBackend`]: a shard whose corpus changes
/// in place (DESIGN.md §8). Split from the read path so the frozen
/// backends ([`InMemoryIndex`], [`DiskIndex`]) stay exactly what they were
/// and only shards that opt into mutability pay for it.
///
/// Local ids are positional: `insert_local` must return the previous
/// [`ShardBackend::shard_len`], and tombstoned ids keep their slot (and
/// stay counted by `shard_len`) until `consolidate_local` compacts them —
/// that positional stability is what keeps the sharded layer's local→global
/// id maps an index-aligned `Vec<u32>`.
pub trait MutableShardBackend: ShardBackend {
    /// Inserts one vector; returns its local id (== `shard_len` before the
    /// call).
    fn insert_local(&mut self, v: &[f32], scratch: &mut SearchScratch) -> u32;

    /// [`MutableShardBackend::insert_local`] with a label bitmask (mask 0 =
    /// unlabeled), so streamed points stay searchable under predicates.
    fn insert_local_labeled(&mut self, v: &[f32], mask: u32, scratch: &mut SearchScratch) -> u32;

    /// Tombstones a local id. False when out of range or already dead.
    fn remove_local(&mut self, local_id: u32) -> bool;

    /// Reclaims tombstones (threshold-gated unless `force`); returns the
    /// survivors' old local ids when a pass ran, so the caller can remap
    /// its id tables. New local id `i` was `survivors[i]`.
    fn consolidate_local(&mut self, force: bool) -> Option<Vec<u32>>;

    /// Resident minus tombstoned points.
    fn live_len(&self) -> usize;

    /// Fraction of resident points that are tombstoned.
    fn tombstone_fraction(&self) -> f32;

    /// A deep copy of this backend for replication (DESIGN.md §11.1): the
    /// fork must be bit-identical — same graph, codes, and tombstones — so
    /// that replicas created from it answer queries identically and stay
    /// identical as long as they apply the same writes in the same order.
    fn fork_local(&self) -> Box<dyn MutableShardBackend>;

    /// The stored vector behind a local id, tombstoned slots included —
    /// what live reconfiguration reads when a point moves to another shard.
    fn vector_local(&self, local_id: u32) -> &[f32];

    /// The label mask behind a local id — read alongside
    /// [`MutableShardBackend::vector_local`] when reconfiguration moves a
    /// point, so predicates keep matching it at its new home.
    fn label_local(&self, local_id: u32) -> u32;
}

/// Frozen backends can be shared between replicas by reference counting:
/// one built index, N replicas pointing at it (DESIGN.md §11.1).
impl<T: ShardBackend + ?Sized> ShardBackend for Arc<T> {
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        (**self).search_local(query, ef, k, scratch)
    }

    fn search_local_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        (**self).search_local_filtered(query, pred, strategy, ef, k, scratch)
    }

    fn shard_len(&self) -> usize {
        (**self).shard_len()
    }

    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }
}

impl<C: VectorCompressor> ShardBackend for StreamingIndex<C> {
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let (res, stats) = self.search(query, ef, k, scratch);
        (
            res,
            ShardQueryStats {
                hops: stats.hops,
                dist_comps: stats.dist_comps,
                ..Default::default()
            },
        )
    }

    fn search_local_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let (res, stats) = self.search_filtered(query, pred, strategy, ef, k, scratch);
        (
            res,
            ShardQueryStats {
                hops: stats.hops,
                dist_comps: stats.dist_comps,
                ..Default::default()
            },
        )
    }

    fn shard_len(&self) -> usize {
        self.len()
    }

    fn resident_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

impl<C: VectorCompressor + Clone + 'static> MutableShardBackend for StreamingIndex<C> {
    fn insert_local(&mut self, v: &[f32], scratch: &mut SearchScratch) -> u32 {
        self.insert(v, scratch)
    }

    fn insert_local_labeled(&mut self, v: &[f32], mask: u32, scratch: &mut SearchScratch) -> u32 {
        self.insert_labeled(v, mask, scratch)
    }

    fn remove_local(&mut self, local_id: u32) -> bool {
        self.remove(local_id)
    }

    fn consolidate_local(&mut self, force: bool) -> Option<Vec<u32>> {
        self.consolidate(force).map(|r| r.survivors)
    }

    fn live_len(&self) -> usize {
        StreamingIndex::live_len(self)
    }

    fn tombstone_fraction(&self) -> f32 {
        StreamingIndex::tombstone_fraction(self)
    }

    fn fork_local(&self) -> Box<dyn MutableShardBackend> {
        Box::new(self.clone())
    }

    fn vector_local(&self, local_id: u32) -> &[f32] {
        self.vectors().get(local_id as usize)
    }

    fn label_local(&self, local_id: u32) -> u32 {
        self.labels().get(local_id as usize)
    }
}

impl<C: VectorCompressor> ShardBackend for InMemoryIndex<C> {
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let (res, stats) = self.search(query, ef, k, scratch);
        (
            res,
            ShardQueryStats {
                hops: stats.hops,
                dist_comps: stats.dist_comps,
                ..Default::default()
            },
        )
    }

    fn search_local_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let (res, stats) = self.search_filtered(query, pred, strategy, ef, k, scratch);
        (
            res,
            ShardQueryStats {
                hops: stats.hops,
                dist_comps: stats.dist_comps,
                ..Default::default()
            },
        )
    }

    fn shard_len(&self) -> usize {
        self.len()
    }

    fn resident_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

impl<C: VectorCompressor> ShardBackend for DiskIndex<C> {
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let (res, stats) = self.search_with_scratch(query, ef, k, scratch);
        (res, disk_stats_to_shard(&stats))
    }

    fn search_local_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let (res, stats) = self.search_filtered(query, pred, strategy, ef, k, scratch);
        (res, disk_stats_to_shard(&stats))
    }

    fn shard_len(&self) -> usize {
        self.len()
    }

    fn resident_bytes(&self) -> usize {
        self.resident_bytes()
    }
}

fn disk_stats_to_shard(stats: &crate::disk::DiskSearchStats) -> ShardQueryStats {
    ShardQueryStats {
        hops: stats.hops,
        dist_comps: stats.dist_comps,
        io_reads: stats.io_reads,
        coalesced_ios: stats.coalesced_ios,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        io_seconds: stats.io_seconds,
        io_stall_seconds: stats.io_stall_seconds,
        io_queue_seconds: stats.io_queue_seconds,
    }
}

/// Either face of a shard's backend: frozen (read path only) or mutable.
enum ShardHandle {
    Frozen(Box<dyn ShardBackend>),
    Mutable(Box<dyn MutableShardBackend>),
}

impl ShardHandle {
    /// The read path every shard has.
    fn read(&self) -> &dyn ShardBackend {
        match self {
            ShardHandle::Frozen(b) => &**b,
            ShardHandle::Mutable(b) => &**b,
        }
    }

    /// The write path, when this shard has one.
    fn mutable(&mut self) -> Option<&mut dyn MutableShardBackend> {
        match self {
            ShardHandle::Frozen(_) => None,
            ShardHandle::Mutable(b) => Some(&mut **b),
        }
    }
}

/// One shard: a backend plus the map from its local ids back to global
/// dataset ids (positionally aligned: local id `i` is `global_ids[i]`,
/// tombstoned slots included).
pub struct Shard {
    backend: ShardHandle,
    global_ids: Vec<u32>,
}

impl Shard {
    /// Wraps a frozen backend with its local→global id map.
    pub fn new(backend: Box<dyn ShardBackend>, global_ids: Vec<u32>) -> Self {
        assert_eq!(
            backend.shard_len(),
            global_ids.len(),
            "id map must cover the shard"
        );
        Self {
            backend: ShardHandle::Frozen(backend),
            global_ids,
        }
    }

    /// Wraps a mutable backend, enabling the [`ShardedIndex`] write paths
    /// on this shard.
    pub fn new_mutable(backend: Box<dyn MutableShardBackend>, global_ids: Vec<u32>) -> Self {
        assert_eq!(
            backend.shard_len(),
            global_ids.len(),
            "id map must cover the shard"
        );
        Self {
            backend: ShardHandle::Mutable(backend),
            global_ids,
        }
    }

    /// Vectors in this shard (tombstoned ones included until consolidated).
    pub fn len(&self) -> usize {
        self.global_ids.len()
    }

    /// True when the shard indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }
}

/// Round-robin assignment of `n` global ids to `n_shards` partitions —
/// deterministic, balanced to within one vector, and cluster-agnostic (a
/// hash-partition stand-in that keeps tests seedable).
pub fn partition_round_robin(n: usize, n_shards: usize) -> Vec<Vec<u32>> {
    let n_shards = n_shards.max(1);
    let mut parts = vec![Vec::with_capacity(n.div_ceil(n_shards)); n_shards];
    for i in 0..n {
        parts[i % n_shards].push(i as u32);
    }
    parts
}

/// Guards the shard builders against empty partitions, with the error at
/// the misuse site instead of deep inside a graph constructor.
fn assert_shardable(n: usize, n_shards: usize) {
    assert!(
        n_shards >= 1 && n_shards <= n,
        "cannot split {n} vectors into {n_shards} non-empty shards"
    );
}

/// Merges per-shard top-k lists (already in global ids, each sorted or
/// not) into the global top-`k`. Over a disjoint partition this equals the
/// top-`k` of the union — the shard-merge invariant the serving tests pin.
pub fn merge_top_k(partials: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = partials.iter().flatten().copied().collect();
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

/// A dataset partitioned across independent single-machine indexes.
///
/// Build one with [`ShardedIndex::build_in_memory`] /
/// [`ShardedIndex::build_on_disk`] (round-robin partition, shared
/// compressor, one graph per shard) or assemble arbitrary backends with
/// [`ShardedIndex::from_shards`]. Query it directly with
/// [`ShardedIndex::search`], or concurrently through a [`ServeEngine`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rpq_anns::serve::{ServeConfig, ServeEngine, ShardedIndex};
/// use rpq_data::synth::{SynthConfig, ValueTransform};
/// use rpq_graph::HnswConfig;
/// use rpq_quant::{PqConfig, ProductQuantizer};
///
/// let data = SynthConfig {
///     dim: 8,
///     intrinsic_dim: 4,
///     clusters: 2,
///     cluster_std: 0.5,
///     noise_std: 0.05,
///     transform: ValueTransform::Identity,
/// }
/// .generate(130, 3);
/// let (base, queries) = data.split_at(120);
/// // One compressor shared by all shards keeps ADC distances
/// // shard-invariant, which is what makes the cross-shard merge exact.
/// let pq = ProductQuantizer::train(
///     &PqConfig { m: 4, k: 16, ..Default::default() },
///     &base,
/// );
/// let index = Arc::new(ShardedIndex::build_in_memory(&pq, &base, 2, |part| {
///     HnswConfig { m: 8, ef_construction: 32, seed: 0 }.build(part)
/// }));
/// assert_eq!(index.len(), 120);
///
/// let engine = ServeEngine::new(Arc::clone(&index), ServeConfig::default());
/// let (results, report) = engine.serve_batch(&queries, 32, 5);
/// assert_eq!(results.len(), queries.len());
/// assert!(report.qps > 0.0);
/// assert!(report.latency.p50_us <= report.latency.p99_us);
/// ```
pub struct ShardedIndex {
    shards: Vec<Shard>,
    dim: usize,
    len: usize,
    /// Next global id to hand out on insert. Global ids are never reused —
    /// a consolidated-away id stays dead forever, so callers can cache ids
    /// across consolidations.
    next_global: u32,
}

impl ShardedIndex {
    /// Assembles an index from prepared shards. Panics if shards' global
    /// ids overlap.
    pub fn from_shards(shards: Vec<Shard>, dim: usize) -> Self {
        let len = shards.iter().map(Shard::len).sum();
        let mut seen = std::collections::HashSet::with_capacity(len);
        let mut next_global = 0u32;
        for shard in &shards {
            for &g in &shard.global_ids {
                assert!(seen.insert(g), "global id {g} appears in two shards");
                next_global = next_global.max(g + 1);
            }
        }
        Self {
            shards,
            dim,
            len,
            next_global,
        }
    }

    /// Partitions `data` round-robin into `n_shards` in-memory shards.
    /// Every shard gets a clone of the same trained `compressor` (so ADC
    /// distances are shard-invariant) and its own proximity graph from
    /// `build_graph`. Panics if `n_shards` exceeds the dataset size (an
    /// empty shard cannot carry a graph).
    pub fn build_in_memory<C>(
        compressor: &C,
        data: &Dataset,
        n_shards: usize,
        build_graph: impl Fn(&Dataset) -> ProximityGraph,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        let shards = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let graph = build_graph(&part);
                let index = InMemoryIndex::build(compressor.clone(), &part, graph);
                Shard::new(Box::new(index), ids)
            })
            .collect();
        Self::from_shards(shards, data.dim())
    }

    /// [`ShardedIndex::build_in_memory`] with per-vector labels: each shard
    /// gets the label subset matching its partition (the same positional
    /// discipline as the vectors), enabling
    /// [`ShardedIndex::search_filtered`].
    pub fn build_in_memory_labeled<C>(
        compressor: &C,
        data: &Dataset,
        labels: &Labels,
        n_shards: usize,
        build_graph: impl Fn(&Dataset) -> ProximityGraph,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        assert_eq!(labels.len(), data.len(), "labels/dataset size mismatch");
        let shards = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let graph = build_graph(&part);
                let index = InMemoryIndex::build(compressor.clone(), &part, graph)
                    .with_labels(labels.subset(&local));
                Shard::new(Box::new(index), ids)
            })
            .collect();
        Self::from_shards(shards, data.dim())
    }

    /// Partitions `data` round-robin into `n_shards` hybrid (disk) shards.
    /// Each shard's store file is `cfg.path` with `.shard<i>` appended.
    /// All shards share **one** [`crate::ssd::SsdClock`] — they model one
    /// physical device, so concurrent queries contend for its timeline and
    /// serve-level p99 shows saturation when offered load exceeds the
    /// modelled throughput. Panics if `n_shards` exceeds the dataset size.
    pub fn build_on_disk<C>(
        compressor: &C,
        data: &Dataset,
        n_shards: usize,
        cfg: &DiskIndexConfig,
        build_graph: impl Fn(&Dataset) -> ProximityGraph,
    ) -> io::Result<Self>
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        let clock = std::sync::Arc::new(crate::ssd::SsdClock::new());
        let mut shards = Vec::new();
        for (i, ids) in partition_round_robin(data.len(), n_shards)
            .into_iter()
            .enumerate()
        {
            let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
            let part = data.subset(&local);
            let graph = build_graph(&part);
            let mut shard_cfg = cfg.clone();
            let mut os = shard_cfg.path.into_os_string();
            os.push(format!(".shard{i}"));
            shard_cfg.path = os.into();
            let mut index = DiskIndex::build(compressor.clone(), &part, &graph, shard_cfg)?;
            index.attach_clock(std::sync::Arc::clone(&clock));
            shards.push(Shard::new(Box::new(index), ids));
        }
        Ok(Self::from_shards(shards, data.dim()))
    }

    /// [`ShardedIndex::build_on_disk`] with per-vector labels partitioned
    /// alongside the vectors (labels stay in RAM next to each shard's
    /// codes).
    pub fn build_on_disk_labeled<C>(
        compressor: &C,
        data: &Dataset,
        labels: &Labels,
        n_shards: usize,
        cfg: &DiskIndexConfig,
        build_graph: impl Fn(&Dataset) -> ProximityGraph,
    ) -> io::Result<Self>
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        assert_eq!(labels.len(), data.len(), "labels/dataset size mismatch");
        let clock = std::sync::Arc::new(crate::ssd::SsdClock::new());
        let mut shards = Vec::new();
        for (i, ids) in partition_round_robin(data.len(), n_shards)
            .into_iter()
            .enumerate()
        {
            let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
            let part = data.subset(&local);
            let graph = build_graph(&part);
            let mut shard_cfg = cfg.clone();
            let mut os = shard_cfg.path.into_os_string();
            os.push(format!(".shard{i}"));
            shard_cfg.path = os.into();
            let mut index = DiskIndex::build(compressor.clone(), &part, &graph, shard_cfg)?;
            index.attach_clock(std::sync::Arc::clone(&clock));
            index.set_labels(labels.subset(&local));
            shards.push(Shard::new(Box::new(index), ids));
        }
        Ok(Self::from_shards(shards, data.dim()))
    }

    /// Partitions `data` round-robin into `n_shards` *mutable* streaming
    /// shards (DESIGN.md §8.4): each shard is a [`StreamingIndex`] over its
    /// partition, sharing the one trained `compressor`, so the §7.3
    /// exact-merge contract holds under churn exactly as it does frozen —
    /// tombstones are excluded from every shard's top-k before the merge.
    /// Inserts and deletes route through [`ShardedIndex::insert`] /
    /// [`ShardedIndex::remove`].
    pub fn build_streaming<C>(
        compressor: &C,
        data: &Dataset,
        n_shards: usize,
        cfg: StreamingConfig,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        let shards = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let index = StreamingIndex::build(compressor.clone(), &part, cfg);
                Shard::new_mutable(Box::new(index), ids)
            })
            .collect();
        Self::from_shards(shards, data.dim())
    }

    /// [`ShardedIndex::build_streaming`] with per-vector labels; streamed
    /// inserts carry their mask through [`ShardedIndex::insert_labeled`]
    /// and consolidation compacts each shard's labels in lock-step.
    pub fn build_streaming_labeled<C>(
        compressor: &C,
        data: &Dataset,
        labels: &Labels,
        n_shards: usize,
        cfg: StreamingConfig,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        assert_eq!(labels.len(), data.len(), "labels/dataset size mismatch");
        let shards = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let index = StreamingIndex::build_labeled(
                    compressor.clone(),
                    &part,
                    labels.subset(&local),
                    cfg,
                );
                Shard::new_mutable(Box::new(index), ids)
            })
            .collect();
        Self::from_shards(shards, data.dim())
    }

    /// Inserts one vector, routing by round-robin on the fresh global id
    /// (`g % n_shards` — the same rule [`partition_round_robin`] applied at
    /// build time). Returns the global id. Panics if the chosen shard is
    /// not mutable.
    pub fn insert(&mut self, v: &[f32], scratch: &mut SearchScratch) -> u32 {
        self.insert_labeled(v, 0, scratch)
    }

    /// [`ShardedIndex::insert`] with a label bitmask (mask 0 = unlabeled).
    pub fn insert_labeled(&mut self, v: &[f32], mask: u32, scratch: &mut SearchScratch) -> u32 {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let g = self.next_global;
        self.next_global += 1;
        let n_shards = self.shards.len();
        let shard = &mut self.shards[g as usize % n_shards];
        let backend = shard
            .backend
            .mutable()
            .expect("insert routed to a frozen shard; build with build_streaming");
        let local = backend.insert_local_labeled(v, mask, scratch);
        assert_eq!(
            local as usize,
            shard.global_ids.len(),
            "mutable backend broke positional id alignment"
        );
        shard.global_ids.push(g);
        self.len += 1;
        g
    }

    /// Tombstones a global id. Returns `false` when the id is unknown (or
    /// already consolidated away), already tombstoned, or lives in a
    /// frozen shard.
    pub fn remove(&mut self, global_id: u32) -> bool {
        for shard in &mut self.shards {
            // global_ids stay sorted ascending: built that way, appended
            // monotonically, and compaction preserves order.
            if let Ok(local) = shard.global_ids.binary_search(&global_id) {
                return match shard.backend.mutable() {
                    Some(backend) => backend.remove_local(local as u32),
                    None => false,
                };
            }
        }
        false
    }

    /// Runs a consolidation pass on every mutable shard (threshold-gated
    /// per shard unless `force`), remapping the global-id tables through
    /// each shard's survivor list. Returns the total number of reclaimed
    /// points.
    pub fn consolidate(&mut self, force: bool) -> usize {
        let mut reclaimed = 0;
        for shard in &mut self.shards {
            let Some(backend) = shard.backend.mutable() else {
                continue;
            };
            let Some(survivors) = backend.consolidate_local(force) else {
                continue;
            };
            reclaimed += shard.global_ids.len() - survivors.len();
            shard.global_ids = survivors
                .iter()
                .map(|&old| shard.global_ids[old as usize])
                .collect();
        }
        self.len -= reclaimed;
        reclaimed
    }

    /// Points that are resident and not tombstoned, across all shards
    /// (frozen shards are all-live by definition).
    pub fn live_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match &s.backend {
                ShardHandle::Frozen(b) => b.shard_len(),
                ShardHandle::Mutable(b) => b.live_len(),
            })
            .sum()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total vectors across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no shard indexes anything.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Query dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Largest shard size — what serving workers size their scratch to.
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(Shard::len).max().unwrap_or(0)
    }

    /// Total RAM held across shards (backends + id maps).
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.backend.read().resident_bytes() + s.global_ids.len() * std::mem::size_of::<u32>()
            })
            .sum()
    }

    /// Searches one shard; returned ids are global.
    pub fn search_shard(
        &self,
        shard: usize,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let s = &self.shards[shard];
        let (mut res, stats) = s.backend.read().search_local(query, ef, k, scratch);
        for n in &mut res {
            n.id = s.global_ids[n.id as usize];
        }
        (res, stats)
    }

    /// Filtered search of one shard; returned ids are global.
    #[allow(clippy::too_many_arguments)]
    pub fn search_shard_filtered(
        &self,
        shard: usize,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let s = &self.shards[shard];
        let (mut res, stats) = s
            .backend
            .read()
            .search_local_filtered(query, pred, strategy, ef, k, scratch);
        for n in &mut res {
            n.id = s.global_ids[n.id as usize];
        }
        (res, stats)
    }

    /// Fans one query out to every shard **sequentially** on the calling
    /// thread and merges: the reference implementation the concurrent
    /// [`ServeEngine`] must agree with.
    pub fn search(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut partials = Vec::with_capacity(self.shards.len());
        let mut total = ShardQueryStats::default();
        for s in 0..self.shards.len() {
            let (part, stats) = self.search_shard(s, query, ef, k, scratch);
            total.merge(&stats);
            partials.push(part);
        }
        (merge_top_k(&partials, k), total)
    }

    /// Filtered fan-out + merge, sequential on the calling thread — the
    /// reference the concurrent filtered paths must agree with. The §7.3
    /// exact-merge argument carries over per predicate: the matching set is
    /// partitioned exactly like the base set, so merging per-shard filtered
    /// top-k lists at exhaustive `ef` equals the single-index filtered
    /// top-k.
    pub fn search_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut partials = Vec::with_capacity(self.shards.len());
        let mut total = ShardQueryStats::default();
        for s in 0..self.shards.len() {
            let (part, stats) =
                self.search_shard_filtered(s, query, pred, strategy, ef, k, scratch);
            total.merge(&stats);
            partials.push(part);
        }
        (merge_top_k(&partials, k), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::HnswConfig;
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n + 10, seed);
        data.split_at(n)
    }

    fn graph_builder(part: &Dataset) -> ProximityGraph {
        HnswConfig {
            m: 8,
            ef_construction: 40,
            seed: 7,
        }
        .build(part)
    }

    #[test]
    fn round_robin_partition_is_disjoint_and_complete() {
        for n_shards in [1, 2, 3, 5] {
            let parts = partition_round_robin(103, n_shards);
            assert_eq!(parts.len(), n_shards);
            let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..103).collect::<Vec<u32>>(), "{n_shards} shards");
            let (min, max) = parts.iter().fold((usize::MAX, 0), |(lo, hi), p| {
                (lo.min(p.len()), hi.max(p.len()))
            });
            assert!(max - min <= 1, "unbalanced: {min}..{max}");
        }
    }

    #[test]
    fn merge_equals_global_sort_of_union() {
        let partials = vec![
            vec![Neighbor { id: 3, dist: 0.5 }, Neighbor { id: 9, dist: 1.5 }],
            vec![Neighbor { id: 4, dist: 0.2 }, Neighbor { id: 1, dist: 0.5 }],
            vec![],
        ];
        let merged = merge_top_k(&partials, 3);
        let ids: Vec<u32> = merged.iter().map(|n| n.id).collect();
        // 0.2 first; the two 0.5s tie-break by id.
        assert_eq!(ids, vec![4, 1, 3]);
    }

    #[test]
    fn sharded_exhaustive_search_matches_single_index() {
        let (base, queries) = setup(240, 11);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let single = InMemoryIndex::build(pq.clone(), &base, graph_builder(&base));
        let sharded = ShardedIndex::build_in_memory(&pq, &base, 3, graph_builder);
        assert_eq!(sharded.len(), base.len());
        assert_eq!(sharded.n_shards(), 3);

        // ef >= n makes beam search exhaustive on a connected graph, so
        // both sides return the exact ADC top-k and must agree id-for-id.
        let ef = base.len();
        let mut scratch = SearchScratch::new();
        for q in queries.iter() {
            let (want, _) = single.search(q, ef, 10, &mut scratch);
            let (got, stats) = sharded.search(q, ef, 10, &mut scratch);
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                want.iter().map(|n| n.id).collect::<Vec<_>>(),
            );
            assert!(stats.hops > 0);
            assert_eq!(stats.io_reads, 0, "in-memory shards must not do I/O");
        }
    }

    #[test]
    fn disk_shards_report_io_and_find_neighbors() {
        let (base, queries) = setup(200, 12);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let dir = std::env::temp_dir().join("rpq-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = DiskIndexConfig::new(dir.join("sharded.store"));
        let sharded = ShardedIndex::build_on_disk(&pq, &base, 2, &cfg, graph_builder).unwrap();
        let gt = brute_force_knn(&base, &queries, 5);
        let mut scratch = SearchScratch::new();
        let mut results = Vec::new();
        for q in queries.iter() {
            let (res, stats) = sharded.search(q, 60, 5, &mut scratch);
            assert!(stats.io_reads > 0, "disk shards must hit the store");
            assert!(stats.io_seconds > 0.0);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        assert!(gt.recall(&results) > 0.7);
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn more_shards_than_vectors_rejected_up_front() {
        let (base, _) = setup(4, 15);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 4,
                ..Default::default()
            },
            &base,
        );
        let _ = ShardedIndex::build_in_memory(&pq, &base, 5, graph_builder);
    }

    #[test]
    #[should_panic(expected = "appears in two shards")]
    fn overlapping_ids_rejected() {
        let (base, _) = setup(40, 13);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let mk = |ids: Vec<u32>| {
            let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
            let part = base.subset(&local);
            let graph = graph_builder(&part);
            Shard::new(
                Box::new(InMemoryIndex::build(pq.clone(), &part, graph)),
                ids,
            )
        };
        let a = mk((0..30).collect());
        let b = mk((25..40).collect());
        let _ = ShardedIndex::from_shards(vec![a, b], base.dim());
    }

    #[test]
    fn streaming_shards_insert_remove_consolidate() {
        let (base, queries) = setup(180, 16);
        let (initial, reserve) = base.split_at(150);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let mut index = ShardedIndex::build_streaming(
            &pq,
            &initial,
            3,
            crate::stream::StreamingConfig::default(),
        );
        assert_eq!(index.len(), 150);
        assert_eq!(index.live_len(), 150);
        let mut scratch = SearchScratch::new();

        // Inserts continue the round-robin assignment and global id space.
        for (i, v) in reserve.iter().enumerate() {
            let g = index.insert(v, &mut scratch);
            assert_eq!(g as usize, 150 + i);
        }
        assert_eq!(index.len(), 180);

        // Deletes: removed globals never show up again.
        let removed: Vec<u32> = (0..180u32).step_by(5).collect();
        for &g in &removed {
            assert!(index.remove(g), "remove({g})");
            assert!(!index.remove(g), "double remove({g})");
        }
        assert_eq!(index.live_len(), 180 - removed.len());
        let check_clean = |index: &ShardedIndex, scratch: &mut SearchScratch| {
            for q in queries.iter() {
                let (res, _) = index.search(q, 180, 10, scratch);
                assert_eq!(res.len(), 10);
                for n in &res {
                    assert!(
                        !removed.contains(&n.id),
                        "tombstoned global {} returned",
                        n.id
                    );
                }
            }
        };
        check_clean(&index, &mut scratch);

        // Consolidation reclaims them everywhere and keeps ids stable.
        let reclaimed = index.consolidate(true);
        assert_eq!(reclaimed, removed.len());
        assert_eq!(index.len(), index.live_len());
        check_clean(&index, &mut scratch);
        // Globals handed out after consolidation don't collide.
        let g = index.insert(reserve.get(0), &mut scratch);
        assert_eq!(g, 180);
    }

    #[test]
    fn streaming_sharded_exhaustive_matches_single_streaming_index() {
        // The §7.3 exact-merge contract under churn: with a shared
        // compressor and exhaustive beams, the sharded live index must
        // return exactly the single index's results over the same
        // surviving points.
        let (base, queries) = setup(120, 17);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let cfg = crate::stream::StreamingConfig {
            r: 16,
            l: 40,
            ..Default::default()
        };
        let mut sharded = ShardedIndex::build_streaming(&pq, &base, 2, cfg);
        let mut single = crate::stream::StreamingIndex::build(pq.clone(), &base, cfg);
        let mut scratch = SearchScratch::new();
        for id in (0..120u32).step_by(7) {
            assert!(sharded.remove(id));
            assert!(single.remove(id));
        }
        sharded.consolidate(true);
        single.consolidate(true).unwrap();
        // Map the single index's post-consolidation local ids back to
        // globals: survivors keep ascending order, so local i == the i-th
        // surviving original id.
        let survivors: Vec<u32> = (0..120u32).filter(|g| g % 7 != 0).collect();
        for q in queries.iter() {
            let (got, _) = sharded.search(q, 120, 10, &mut scratch);
            let (want, _) = single.search(q, 120, 10, &mut scratch);
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                want.iter()
                    .map(|n| survivors[n.id as usize])
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    #[should_panic(expected = "frozen shard")]
    fn insert_into_frozen_shards_panics() {
        let (base, _) = setup(60, 18);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let mut index = ShardedIndex::build_in_memory(&pq, &base, 2, graph_builder);
        let mut scratch = SearchScratch::new();
        let _ = index.insert(base.get(0), &mut scratch);
    }

    #[test]
    fn remove_on_frozen_shard_is_refused() {
        let (base, _) = setup(60, 19);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let mut index = ShardedIndex::build_in_memory(&pq, &base, 2, graph_builder);
        assert!(!index.remove(3));
        assert!(!index.remove(999), "unknown id");
        assert_eq!(index.consolidate(true), 0, "nothing mutable to reclaim");
        assert_eq!(index.live_len(), 60);
    }

    #[test]
    fn resident_bytes_cover_all_shards() {
        let (base, _) = setup(120, 14);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let sharded = ShardedIndex::build_in_memory(&pq, &base, 2, graph_builder);
        // At minimum the id maps plus per-shard codes must show up.
        assert!(sharded.resident_bytes() > base.len() * std::mem::size_of::<u32>());
        assert!(sharded.max_shard_len() == 60);
    }
}
