//! Sharded concurrent serving layer (DESIGN.md §7).
//!
//! The offline [`crate::harness`] answers "how good is one index"; this
//! module answers "how do we serve it": the base set is partitioned across
//! `N` independent shards (each a full [`InMemoryIndex`] or
//! [`DiskIndex`] over its partition), every query fans out to all shards
//! through a persistent [`WorkerPool`] whose workers each reuse one
//! [`rpq_graph::SearchScratch`], and the per-shard top-k lists are merged
//! into a global top-k. [`ServeEngine`] adds request batching and a
//! latency/QPS collector reporting p50/p95/p99 tails.
//!
//! Sharding preserves the result contract: all shards share one trained
//! compressor, so a vector's ADC distance is identical wherever it lives,
//! and merging per-shard top-k lists over a disjoint partition is exactly
//! the global top-k of the union (DESIGN.md §7.3). The integration tests
//! pin this down by checking sharded == unsharded results at exhaustive
//! beam widths.

pub mod engine;
pub mod metrics;
pub mod pool;

pub use engine::{BatchReport, ServeConfig, ServeEngine};
pub use metrics::{LatencyRecorder, LatencySummary};
pub use pool::{default_workers, WorkerPool};

use std::io;

use rpq_data::Dataset;
use rpq_graph::{Neighbor, ProximityGraph, SearchScratch};
use rpq_quant::VectorCompressor;

use crate::disk::{DiskIndex, DiskIndexConfig};
use crate::memory::InMemoryIndex;

/// Per-shard, per-query cost counters (superset of the in-memory and
/// hybrid stats so both backends fit one serving path).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardQueryStats {
    /// Next-hop selections.
    pub hops: usize,
    /// Distance-estimator invocations.
    pub dist_comps: usize,
    /// Sector reads issued (0 for in-memory shards).
    pub io_reads: usize,
    /// Modelled I/O seconds (0 for in-memory shards).
    pub io_seconds: f32,
}

impl ShardQueryStats {
    /// Accumulates another shard's counters (fan-out totals per query).
    pub fn merge(&mut self, other: &ShardQueryStats) {
        self.hops += other.hops;
        self.dist_comps += other.dist_comps;
        self.io_reads += other.io_reads;
        self.io_seconds += other.io_seconds;
    }
}

/// One searchable partition: anything that can answer a top-k query over
/// its local id space. Implemented by both deployment scenarios' indexes
/// so a [`ShardedIndex`] can mix them.
pub trait ShardBackend: Send + Sync {
    /// Top-`k` under beam width `ef`, ids local to this shard. In-memory
    /// backends route with `scratch`; disk backends ignore it.
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats);

    /// Vectors indexed by this shard.
    fn shard_len(&self) -> usize;

    /// RAM held by this shard (codes + model + graph or cache).
    fn resident_bytes(&self) -> usize;
}

impl<C: VectorCompressor> ShardBackend for InMemoryIndex<C> {
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let (res, stats) = self.search(query, ef, k, scratch);
        (
            res,
            ShardQueryStats {
                hops: stats.hops,
                dist_comps: stats.dist_comps,
                ..Default::default()
            },
        )
    }

    fn shard_len(&self) -> usize {
        self.len()
    }

    fn resident_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

impl<C: VectorCompressor> ShardBackend for DiskIndex<C> {
    fn search_local(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        _scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let (res, stats) = self.search(query, ef, k);
        (
            res,
            ShardQueryStats {
                hops: stats.hops,
                dist_comps: stats.dist_comps,
                io_reads: stats.io_reads,
                io_seconds: stats.io_seconds,
            },
        )
    }

    fn shard_len(&self) -> usize {
        self.len()
    }

    fn resident_bytes(&self) -> usize {
        self.resident_bytes()
    }
}

/// One shard: a backend plus the map from its local ids back to global
/// dataset ids.
pub struct Shard {
    backend: Box<dyn ShardBackend>,
    global_ids: Vec<u32>,
}

impl Shard {
    /// Wraps a backend with its local→global id map.
    pub fn new(backend: Box<dyn ShardBackend>, global_ids: Vec<u32>) -> Self {
        assert_eq!(
            backend.shard_len(),
            global_ids.len(),
            "id map must cover the shard"
        );
        Self {
            backend,
            global_ids,
        }
    }

    /// Vectors in this shard.
    pub fn len(&self) -> usize {
        self.global_ids.len()
    }

    /// True when the shard indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }
}

/// Round-robin assignment of `n` global ids to `n_shards` partitions —
/// deterministic, balanced to within one vector, and cluster-agnostic (a
/// hash-partition stand-in that keeps tests seedable).
pub fn partition_round_robin(n: usize, n_shards: usize) -> Vec<Vec<u32>> {
    let n_shards = n_shards.max(1);
    let mut parts = vec![Vec::with_capacity(n.div_ceil(n_shards)); n_shards];
    for i in 0..n {
        parts[i % n_shards].push(i as u32);
    }
    parts
}

/// Guards the shard builders against empty partitions, with the error at
/// the misuse site instead of deep inside a graph constructor.
fn assert_shardable(n: usize, n_shards: usize) {
    assert!(
        n_shards >= 1 && n_shards <= n,
        "cannot split {n} vectors into {n_shards} non-empty shards"
    );
}

/// Merges per-shard top-k lists (already in global ids, each sorted or
/// not) into the global top-`k`. Over a disjoint partition this equals the
/// top-`k` of the union — the shard-merge invariant the serving tests pin.
pub fn merge_top_k(partials: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = partials.iter().flatten().copied().collect();
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

/// A dataset partitioned across independent single-machine indexes.
///
/// Build one with [`ShardedIndex::build_in_memory`] /
/// [`ShardedIndex::build_on_disk`] (round-robin partition, shared
/// compressor, one graph per shard) or assemble arbitrary backends with
/// [`ShardedIndex::from_shards`]. Query it directly with
/// [`ShardedIndex::search`], or concurrently through a [`ServeEngine`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rpq_anns::serve::{ServeConfig, ServeEngine, ShardedIndex};
/// use rpq_data::synth::{SynthConfig, ValueTransform};
/// use rpq_graph::HnswConfig;
/// use rpq_quant::{PqConfig, ProductQuantizer};
///
/// let data = SynthConfig {
///     dim: 8,
///     intrinsic_dim: 4,
///     clusters: 2,
///     cluster_std: 0.5,
///     noise_std: 0.05,
///     transform: ValueTransform::Identity,
/// }
/// .generate(130, 3);
/// let (base, queries) = data.split_at(120);
/// // One compressor shared by all shards keeps ADC distances
/// // shard-invariant, which is what makes the cross-shard merge exact.
/// let pq = ProductQuantizer::train(
///     &PqConfig { m: 4, k: 16, ..Default::default() },
///     &base,
/// );
/// let index = Arc::new(ShardedIndex::build_in_memory(&pq, &base, 2, |part| {
///     HnswConfig { m: 8, ef_construction: 32, seed: 0 }.build(part)
/// }));
/// assert_eq!(index.len(), 120);
///
/// let engine = ServeEngine::new(Arc::clone(&index), ServeConfig::default());
/// let (results, report) = engine.serve_batch(&queries, 32, 5);
/// assert_eq!(results.len(), queries.len());
/// assert!(report.qps > 0.0);
/// assert!(report.latency.p50_us <= report.latency.p99_us);
/// ```
pub struct ShardedIndex {
    shards: Vec<Shard>,
    dim: usize,
    len: usize,
}

impl ShardedIndex {
    /// Assembles an index from prepared shards. Panics if shards' global
    /// ids overlap.
    pub fn from_shards(shards: Vec<Shard>, dim: usize) -> Self {
        let len = shards.iter().map(Shard::len).sum();
        let mut seen = std::collections::HashSet::with_capacity(len);
        for shard in &shards {
            for &g in &shard.global_ids {
                assert!(seen.insert(g), "global id {g} appears in two shards");
            }
        }
        Self { shards, dim, len }
    }

    /// Partitions `data` round-robin into `n_shards` in-memory shards.
    /// Every shard gets a clone of the same trained `compressor` (so ADC
    /// distances are shard-invariant) and its own proximity graph from
    /// `build_graph`. Panics if `n_shards` exceeds the dataset size (an
    /// empty shard cannot carry a graph).
    pub fn build_in_memory<C>(
        compressor: &C,
        data: &Dataset,
        n_shards: usize,
        build_graph: impl Fn(&Dataset) -> ProximityGraph,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        let shards = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let graph = build_graph(&part);
                let index = InMemoryIndex::build(compressor.clone(), &part, graph);
                Shard::new(Box::new(index), ids)
            })
            .collect();
        Self::from_shards(shards, data.dim())
    }

    /// Partitions `data` round-robin into `n_shards` hybrid (disk) shards.
    /// Each shard's store file is `cfg.path` with `.shard<i>` appended.
    /// Panics if `n_shards` exceeds the dataset size.
    pub fn build_on_disk<C>(
        compressor: &C,
        data: &Dataset,
        n_shards: usize,
        cfg: &DiskIndexConfig,
        build_graph: impl Fn(&Dataset) -> ProximityGraph,
    ) -> io::Result<Self>
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        let mut shards = Vec::new();
        for (i, ids) in partition_round_robin(data.len(), n_shards)
            .into_iter()
            .enumerate()
        {
            let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
            let part = data.subset(&local);
            let graph = build_graph(&part);
            let mut shard_cfg = cfg.clone();
            let mut os = shard_cfg.path.into_os_string();
            os.push(format!(".shard{i}"));
            shard_cfg.path = os.into();
            let index = DiskIndex::build(compressor.clone(), &part, &graph, shard_cfg)?;
            shards.push(Shard::new(Box::new(index), ids));
        }
        Ok(Self::from_shards(shards, data.dim()))
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total vectors across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no shard indexes anything.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Query dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Largest shard size — what serving workers size their scratch to.
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(Shard::len).max().unwrap_or(0)
    }

    /// Total RAM held across shards (backends + id maps).
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.backend.resident_bytes() + s.global_ids.len() * std::mem::size_of::<u32>())
            .sum()
    }

    /// Searches one shard; returned ids are global.
    pub fn search_shard(
        &self,
        shard: usize,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        let s = &self.shards[shard];
        let (mut res, stats) = s.backend.search_local(query, ef, k, scratch);
        for n in &mut res {
            n.id = s.global_ids[n.id as usize];
        }
        (res, stats)
    }

    /// Fans one query out to every shard **sequentially** on the calling
    /// thread and merges: the reference implementation the concurrent
    /// [`ServeEngine`] must agree with.
    pub fn search(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut partials = Vec::with_capacity(self.shards.len());
        let mut total = ShardQueryStats::default();
        for s in 0..self.shards.len() {
            let (part, stats) = self.search_shard(s, query, ef, k, scratch);
            total.merge(&stats);
            partials.push(part);
        }
        (merge_top_k(&partials, k), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::HnswConfig;
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n + 10, seed);
        data.split_at(n)
    }

    fn graph_builder(part: &Dataset) -> ProximityGraph {
        HnswConfig {
            m: 8,
            ef_construction: 40,
            seed: 7,
        }
        .build(part)
    }

    #[test]
    fn round_robin_partition_is_disjoint_and_complete() {
        for n_shards in [1, 2, 3, 5] {
            let parts = partition_round_robin(103, n_shards);
            assert_eq!(parts.len(), n_shards);
            let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..103).collect::<Vec<u32>>(), "{n_shards} shards");
            let (min, max) = parts.iter().fold((usize::MAX, 0), |(lo, hi), p| {
                (lo.min(p.len()), hi.max(p.len()))
            });
            assert!(max - min <= 1, "unbalanced: {min}..{max}");
        }
    }

    #[test]
    fn merge_equals_global_sort_of_union() {
        let partials = vec![
            vec![Neighbor { id: 3, dist: 0.5 }, Neighbor { id: 9, dist: 1.5 }],
            vec![Neighbor { id: 4, dist: 0.2 }, Neighbor { id: 1, dist: 0.5 }],
            vec![],
        ];
        let merged = merge_top_k(&partials, 3);
        let ids: Vec<u32> = merged.iter().map(|n| n.id).collect();
        // 0.2 first; the two 0.5s tie-break by id.
        assert_eq!(ids, vec![4, 1, 3]);
    }

    #[test]
    fn sharded_exhaustive_search_matches_single_index() {
        let (base, queries) = setup(240, 11);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let single = InMemoryIndex::build(pq.clone(), &base, graph_builder(&base));
        let sharded = ShardedIndex::build_in_memory(&pq, &base, 3, graph_builder);
        assert_eq!(sharded.len(), base.len());
        assert_eq!(sharded.n_shards(), 3);

        // ef >= n makes beam search exhaustive on a connected graph, so
        // both sides return the exact ADC top-k and must agree id-for-id.
        let ef = base.len();
        let mut scratch = SearchScratch::new();
        for q in queries.iter() {
            let (want, _) = single.search(q, ef, 10, &mut scratch);
            let (got, stats) = sharded.search(q, ef, 10, &mut scratch);
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                want.iter().map(|n| n.id).collect::<Vec<_>>(),
            );
            assert!(stats.hops > 0);
            assert_eq!(stats.io_reads, 0, "in-memory shards must not do I/O");
        }
    }

    #[test]
    fn disk_shards_report_io_and_find_neighbors() {
        let (base, queries) = setup(200, 12);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let dir = std::env::temp_dir().join("rpq-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = DiskIndexConfig::new(dir.join("sharded.store"));
        let sharded = ShardedIndex::build_on_disk(&pq, &base, 2, &cfg, graph_builder).unwrap();
        let gt = brute_force_knn(&base, &queries, 5);
        let mut scratch = SearchScratch::new();
        let mut results = Vec::new();
        for q in queries.iter() {
            let (res, stats) = sharded.search(q, 60, 5, &mut scratch);
            assert!(stats.io_reads > 0, "disk shards must hit the store");
            assert!(stats.io_seconds > 0.0);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        assert!(gt.recall(&results) > 0.7);
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn more_shards_than_vectors_rejected_up_front() {
        let (base, _) = setup(4, 15);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 4,
                ..Default::default()
            },
            &base,
        );
        let _ = ShardedIndex::build_in_memory(&pq, &base, 5, graph_builder);
    }

    #[test]
    #[should_panic(expected = "appears in two shards")]
    fn overlapping_ids_rejected() {
        let (base, _) = setup(40, 13);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let mk = |ids: Vec<u32>| {
            let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
            let part = base.subset(&local);
            let graph = graph_builder(&part);
            Shard::new(
                Box::new(InMemoryIndex::build(pq.clone(), &part, graph)),
                ids,
            )
        };
        let a = mk((0..30).collect());
        let b = mk((25..40).collect());
        let _ = ShardedIndex::from_shards(vec![a, b], base.dim());
    }

    #[test]
    fn resident_bytes_cover_all_shards() {
        let (base, _) = setup(120, 14);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let sharded = ShardedIndex::build_in_memory(&pq, &base, 2, graph_builder);
        // At minimum the id maps plus per-shard codes must show up.
        assert!(sharded.resident_bytes() > base.len() * std::mem::size_of::<u32>());
        assert!(sharded.max_shard_len() == 60);
    }
}
