//! The concurrent query engine: fan-out over shards through the worker
//! pool, request batching, and latency accounting (DESIGN.md §7.2–§7.4).
//!
//! Every query becomes `n_shards` jobs; an idle worker picks each up and
//! answers it with its own reusable scratch. The calling thread is the
//! merger: it drains partial results as they complete, merges each query's
//! top-k as soon as its last shard reports, and stamps the query's
//! wall-clock latency at that moment. Batching bounds how many queries are
//! in flight at once (`max_batch × n_shards` jobs), which is what keeps
//! tail latency meaningful under load instead of queueing an entire
//! dataset behind the first queries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use rpq_data::{Dataset, LabelPredicate};
use rpq_graph::Neighbor;

use super::metrics::{LatencyRecorder, LatencySummary};
use super::pool::{default_workers, WorkerPool};
use super::{merge_top_k, ShardQueryStats, ShardedIndex};
use crate::filter::FilterStrategy;

/// Engine sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads (default: one per available core).
    pub workers: usize,
    /// Queries in flight per batching wave (default 64).
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: default_workers(),
            max_batch: 64,
        }
    }
}

/// What one [`ServeEngine::serve_batch`] call measured.
#[derive(Clone, Copy, Debug)]
pub struct BatchReport {
    /// Queries answered.
    pub queries: usize,
    /// Queries admitted by the front-end. The closed-loop engine admits
    /// everything (the client self-throttles, so overload can't happen
    /// here); the cluster's open-loop server reports real admission
    /// decisions in its own [`crate::serve::ClusterReport`] (DESIGN.md
    /// §11.3–§11.4).
    pub admitted: usize,
    /// Queries shed instead of executed (always 0 closed-loop).
    pub shed: usize,
    /// Shards each query fanned out to.
    pub shards: usize,
    /// Worker threads that served the batch.
    pub workers: usize,
    /// End-to-end wall time for the whole batch, seconds.
    pub wall_seconds: f32,
    /// Throughput: `queries / wall_seconds`.
    pub qps: f32,
    /// Per-query latency percentiles for this batch. For disk shards each
    /// sample is measured wall time **plus** the query's modelled device
    /// wait (unhidden stall + queueing on the shared device timeline), so
    /// tails reflect the simulated SSD, not just compute.
    pub latency: LatencySummary,
    /// Mean next-hop selections per query (summed across shards).
    pub mean_hops: f32,
    /// Mean modelled device time per query, milliseconds (0 when all
    /// shards are in-memory).
    pub mean_io_ms: f32,
    /// Mean modelled unhidden-I/O stall per query, milliseconds.
    pub mean_stall_ms: f32,
    /// Mean modelled device-queue wait per query, milliseconds — grows
    /// without bound once offered load passes the device's throughput.
    pub mean_queue_ms: f32,
    /// Mean coalesced I/O commands per query.
    pub mean_coalesced_ios: f32,
    /// Fraction of node lookups served from shard RAM caches (0 with
    /// caches disabled or all-memory shards).
    pub cache_hit_rate: f32,
}

/// A concurrent serving front-end over a [`ShardedIndex`].
///
/// The engine owns a persistent [`WorkerPool`]; constructing one is cheap
/// relative to index build, and it can serve any number of batches. Results
/// are bit-identical to [`ShardedIndex::search`] — concurrency changes
/// only *when* shard searches run, never their outcome.
pub struct ServeEngine {
    index: Arc<ShardedIndex>,
    pool: WorkerPool,
    max_batch: usize,
    recorder: LatencyRecorder,
    served: AtomicUsize,
}

impl ServeEngine {
    /// Spins up the worker pool (scratches pre-sized to the largest shard).
    pub fn new(index: Arc<ShardedIndex>, cfg: ServeConfig) -> Self {
        let pool = WorkerPool::new(cfg.workers, index.max_shard_len());
        Self {
            index,
            pool,
            max_batch: cfg.max_batch.max(1),
            recorder: LatencyRecorder::new(),
            served: AtomicUsize::new(0),
        }
    }

    /// The underlying sharded index.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Queries answered over the engine's lifetime.
    pub fn queries_served(&self) -> usize {
        self.served.load(Ordering::Relaxed)
    }

    /// Latency percentiles over every query the engine ever answered.
    pub fn metrics(&self) -> LatencySummary {
        self.recorder.snapshot()
    }

    /// Answers one query: fan out to all shards, merge, record latency.
    pub fn search(&self, query: &[f32], ef: usize, k: usize) -> (Vec<Neighbor>, ShardQueryStats) {
        assert_eq!(query.len(), self.index.dim(), "query dimension mismatch");
        let n_shards = self.index.n_shards();
        let query: Arc<[f32]> = query.into();
        let (tx, rx) = mpsc::channel();
        let t0 = Instant::now();
        for s in 0..n_shards {
            let index = Arc::clone(&self.index);
            let query = Arc::clone(&query);
            let tx = tx.clone();
            self.pool.submit(move |scratch| {
                let out = index.search_shard(s, &query, ef, k, scratch);
                let _ = tx.send(out);
            });
        }
        drop(tx);
        let mut partials = Vec::with_capacity(n_shards);
        let mut total = ShardQueryStats::default();
        for (part, stats) in rx {
            total.merge(&stats);
            partials.push(part);
        }
        // A shard job that panicked dropped its sender without reporting;
        // fail loudly rather than returning a top-k missing a shard.
        assert_eq!(
            partials.len(),
            n_shards,
            "{} shard search job(s) panicked",
            n_shards - partials.len()
        );
        self.recorder
            .record_us(t0.elapsed().as_secs_f32() * 1e6 + total.modeled_wait_seconds() * 1e6);
        self.served.fetch_add(1, Ordering::Relaxed);
        (merge_top_k(&partials, k), total)
    }

    /// [`ServeEngine::search`] under a predicate: the same fan-out/merge,
    /// with every shard running its filtered search. `pred` and `strategy`
    /// are `Copy`, so each pool job carries them by value. Results match
    /// [`ShardedIndex::search_filtered`] id-for-id — the sequential
    /// reference the concurrent path is tested against.
    pub fn search_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
    ) -> (Vec<Neighbor>, ShardQueryStats) {
        assert_eq!(query.len(), self.index.dim(), "query dimension mismatch");
        let n_shards = self.index.n_shards();
        let query: Arc<[f32]> = query.into();
        let (tx, rx) = mpsc::channel();
        let t0 = Instant::now();
        for s in 0..n_shards {
            let index = Arc::clone(&self.index);
            let query = Arc::clone(&query);
            let tx = tx.clone();
            self.pool.submit(move |scratch| {
                let out = index.search_shard_filtered(s, &query, pred, strategy, ef, k, scratch);
                let _ = tx.send(out);
            });
        }
        drop(tx);
        let mut partials = Vec::with_capacity(n_shards);
        let mut total = ShardQueryStats::default();
        for (part, stats) in rx {
            total.merge(&stats);
            partials.push(part);
        }
        assert_eq!(
            partials.len(),
            n_shards,
            "{} shard search job(s) panicked",
            n_shards - partials.len()
        );
        self.recorder
            .record_us(t0.elapsed().as_secs_f32() * 1e6 + total.modeled_wait_seconds() * 1e6);
        self.served.fetch_add(1, Ordering::Relaxed);
        (merge_top_k(&partials, k), total)
    }

    /// Answers a batch of queries concurrently, at most
    /// [`ServeConfig::max_batch`] in flight at a time. Returns per-query
    /// global top-`k` results (in query order) and the batch's measurements.
    pub fn serve_batch(
        &self,
        queries: &Dataset,
        ef: usize,
        k: usize,
    ) -> (Vec<Vec<Neighbor>>, BatchReport) {
        assert_eq!(queries.dim(), self.index.dim(), "query dimension mismatch");
        let n_queries = queries.len();
        let n_shards = self.index.n_shards();
        let max_batch = self.max_batch;
        let mut results: Vec<Vec<Neighbor>> = (0..n_queries).map(|_| Vec::new()).collect();
        let mut latencies_us: Vec<f32> = Vec::with_capacity(n_queries);
        let mut total = ShardQueryStats::default();
        let t_batch = Instant::now();

        let mut wave_start = 0;
        while wave_start < n_queries {
            let wave_end = (wave_start + max_batch).min(n_queries);
            let (tx, rx) = mpsc::channel::<(usize, Vec<Neighbor>, ShardQueryStats)>();
            let mut submitted = Vec::with_capacity(wave_end - wave_start);
            for qi in wave_start..wave_end {
                let query: Arc<[f32]> = queries.get(qi).into();
                let t_submit = Instant::now();
                for s in 0..n_shards {
                    let index = Arc::clone(&self.index);
                    let query = Arc::clone(&query);
                    let tx = tx.clone();
                    self.pool.submit(move |scratch| {
                        let (part, stats) = index.search_shard(s, &query, ef, k, scratch);
                        let _ = tx.send((qi, part, stats));
                    });
                }
                submitted.push(t_submit);
            }
            drop(tx);

            // Merge as queries complete; a query's latency is stamped when
            // its last shard reports: measured wall time plus the query's
            // own modelled device wait (stall + queue) across its shards.
            let mut pending: Vec<usize> = vec![n_shards; wave_end - wave_start];
            let mut partials: Vec<Vec<Vec<Neighbor>>> =
                (wave_start..wave_end).map(|_| Vec::new()).collect();
            let mut qstats: Vec<ShardQueryStats> =
                vec![ShardQueryStats::default(); wave_end - wave_start];
            for (qi, part, stats) in rx {
                let w = qi - wave_start;
                total.merge(&stats);
                qstats[w].merge(&stats);
                partials[w].push(part);
                pending[w] -= 1;
                if pending[w] == 0 {
                    let us = submitted[w].elapsed().as_secs_f32() * 1e6
                        + qstats[w].modeled_wait_seconds() * 1e6;
                    latencies_us.push(us);
                    self.recorder.record_us(us);
                    results[qi] = merge_top_k(&partials[w], k);
                    partials[w].clear();
                }
            }
            // Every sender is gone once rx closes; unfinished queries mean
            // shard jobs died (panicked) without reporting. Returning their
            // empty result vectors would be silently wrong — fail loudly.
            let lost: usize = pending.iter().sum();
            assert_eq!(lost, 0, "{lost} shard search job(s) panicked mid-batch");
            wave_start = wave_end;
        }

        let wall = t_batch.elapsed().as_secs_f32().max(1e-9);
        self.served.fetch_add(n_queries, Ordering::Relaxed);
        let n = n_queries.max(1) as f32;
        let lookups = total.cache_hits + total.cache_misses;
        let report = BatchReport {
            queries: n_queries,
            admitted: n_queries,
            shed: 0,
            shards: n_shards,
            workers: self.pool.workers(),
            wall_seconds: wall,
            qps: n_queries as f32 / wall,
            latency: LatencySummary::from_samples(&latencies_us),
            mean_hops: total.hops as f32 / n,
            mean_io_ms: total.io_seconds * 1e3 / n,
            mean_stall_ms: total.io_stall_seconds * 1e3 / n,
            mean_queue_ms: total.io_queue_seconds * 1e3 / n,
            mean_coalesced_ios: total.coalesced_ios as f32 / n,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                total.cache_hits as f32 / lookups as f32
            },
        };
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::{HnswConfig, ProximityGraph, SearchScratch};
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n + 16, seed);
        data.split_at(n)
    }

    fn graph_builder(part: &Dataset) -> ProximityGraph {
        HnswConfig {
            m: 8,
            ef_construction: 40,
            seed: 3,
        }
        .build(part)
    }

    fn engine(n: usize, seed: u64, shards: usize, cfg: ServeConfig) -> (ServeEngine, Dataset) {
        let (base, queries) = setup(n, seed);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let index = Arc::new(ShardedIndex::build_in_memory(
            &pq,
            &base,
            shards,
            graph_builder,
        ));
        (ServeEngine::new(index, cfg), queries)
    }

    #[test]
    fn concurrent_results_match_sequential_reference() {
        let (eng, queries) = engine(300, 21, 3, ServeConfig::default());
        let mut scratch = SearchScratch::new();
        let (batch, report) = eng.serve_batch(&queries, 40, 8);
        assert_eq!(batch.len(), queries.len());
        for (qi, got) in batch.iter().enumerate() {
            let (want, _) = eng.index().search(queries.get(qi), 40, 8, &mut scratch);
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                want.iter().map(|n| n.id).collect::<Vec<_>>(),
                "query {qi} diverged",
            );
        }
        assert_eq!(report.queries, queries.len());
        assert!(report.qps > 0.0);
        assert!(report.mean_hops > 0.0);
        assert_eq!(report.mean_io_ms, 0.0);
    }

    #[test]
    fn concurrent_filtered_search_matches_sequential_reference() {
        let cfg = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        };
        let (all, labels) = cfg.generate_labeled(316, 27, 4);
        let (base, queries) = all.split_at(300);
        let base_labels = labels.subset(&(0..300).collect::<Vec<_>>());
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let index = Arc::new(ShardedIndex::build_in_memory_labeled(
            &pq,
            &base,
            &base_labels,
            3,
            graph_builder,
        ));
        let eng = ServeEngine::new(Arc::clone(&index), ServeConfig::default());
        let mut scratch = SearchScratch::new();
        for strategy in [
            FilterStrategy::DuringTraversal,
            FilterStrategy::PostFilter { inflation: 4 },
        ] {
            for qi in 0..queries.len() {
                let q = queries.get(qi);
                let pred = LabelPredicate::single(qi % 3);
                let (got, stats) = eng.search_filtered(q, pred, strategy, 40, 8);
                let (want, _) = index.search_filtered(q, pred, strategy, 40, 8, &mut scratch);
                assert_eq!(
                    got.iter().map(|n| n.id).collect::<Vec<_>>(),
                    want.iter().map(|n| n.id).collect::<Vec<_>>(),
                    "query {qi} diverged under {}",
                    strategy.name(),
                );
                assert!(stats.hops > 0);
            }
        }
    }

    #[test]
    fn single_query_matches_batch_of_one() {
        let (eng, queries) = engine(200, 22, 2, ServeConfig::default());
        let q = queries.get(0);
        let (one, stats) = eng.search(q, 30, 5);
        let single = queries.subset(&[0]);
        let (batch, _) = eng.serve_batch(&single, 30, 5);
        assert_eq!(
            one.iter().map(|n| n.id).collect::<Vec<_>>(),
            batch[0].iter().map(|n| n.id).collect::<Vec<_>>(),
        );
        assert!(stats.hops > 0);
    }

    #[test]
    fn batching_waves_preserve_order_and_coverage() {
        let cfg = ServeConfig {
            workers: 2,
            max_batch: 3, // force multiple waves over the query set
        };
        let (eng, queries) = engine(200, 23, 2, cfg);
        let (batch, report) = eng.serve_batch(&queries, 30, 5);
        assert_eq!(batch.len(), queries.len());
        assert!(batch.iter().all(|r| !r.is_empty()));
        assert_eq!(report.latency.count, queries.len());
        assert!(report.latency.p50_us <= report.latency.p99_us);
    }

    #[test]
    fn engine_metrics_accumulate_across_batches() {
        let (eng, queries) = engine(150, 24, 2, ServeConfig::default());
        assert_eq!(eng.queries_served(), 0);
        let _ = eng.serve_batch(&queries, 20, 5);
        let _ = eng.search(queries.get(0), 20, 5);
        assert_eq!(eng.queries_served(), queries.len() + 1);
        assert_eq!(eng.metrics().count, queries.len() + 1);
    }

    #[test]
    fn disk_serving_p99_saturates_on_a_slow_device() {
        use crate::disk::DiskIndexConfig;
        use crate::ssd::SsdModel;

        let (base, queries) = setup(300, 26);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &base,
        );
        let dir = std::env::temp_dir().join("rpq-serve-saturation");
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |tag: &str, ssd: SsdModel| {
            let cfg = DiskIndexConfig {
                ssd,
                ..DiskIndexConfig::new(dir.join(format!("{tag}.store")))
            };
            let index =
                Arc::new(ShardedIndex::build_on_disk(&pq, &base, 2, &cfg, graph_builder).unwrap());
            ServeEngine::new(
                index,
                ServeConfig {
                    workers: 4,
                    max_batch: 32,
                },
            )
        };
        // Three devices, same traffic: sub-µs commands (never saturates at
        // this offered load), 500 µs/sector, 5 ms/sector.
        let fast = mk(
            "fast",
            SsdModel {
                service_us: 0.5,
                transfer_us_per_sector: 0.05,
                channels: 8,
            },
        );
        let med = mk("med", SsdModel::fixed(500.0));
        let slow = mk("slow", SsdModel::fixed(5000.0));
        let (_, rf) = fast.serve_batch(&queries, 40, 5);
        let (_, rm) = med.serve_batch(&queries, 40, 5);
        let (_, rs) = slow.serve_batch(&queries, 40, 5);

        // Latency tails are dominated by the modelled device, so the
        // ordering is strict and by wide margins wall noise cannot bridge:
        // tens of modelled ms per query on `slow` vs sub-ms on `fast`.
        assert!(
            rm.latency.p99_us > rf.latency.p99_us,
            "p99 must grow with device cost: {} vs {}",
            rm.latency.p99_us,
            rf.latency.p99_us
        );
        assert!(
            rs.latency.p99_us > rm.latency.p99_us * 2.0,
            "a 10x slower device must blow out the tail: {} vs {}",
            rs.latency.p99_us,
            rm.latency.p99_us
        );
        // The slow device cannot drain the offered load: queries queue
        // behind each other's commands on the shared timeline. The fast
        // device absorbs the same load with (almost) no queueing.
        assert!(rs.mean_queue_ms > 0.0, "overload must queue");
        assert!(rs.mean_stall_ms > 0.0);
        assert!(
            rs.mean_queue_ms > rf.mean_queue_ms,
            "queueing must grow with load relative to device throughput"
        );
    }

    #[test]
    fn empty_batch_reports_zeroes() {
        let (eng, queries) = engine(120, 25, 2, ServeConfig::default());
        let empty = Dataset::new(queries.dim());
        let (results, report) = eng.serve_batch(&empty, 20, 5);
        assert!(results.is_empty());
        assert_eq!(report.queries, 0);
        assert_eq!(report.latency.count, 0);
    }
}
