//! Admission control and backpressure (DESIGN.md §11.3).
//!
//! The cluster's open-loop server decides, per arriving request and
//! *before* executing anything: admit, or shed with a typed
//! [`RejectReason`]. Three gates compose, cheapest first:
//!
//! 1. **Bounded queue** — at most `queue_cap` requests admitted but not
//!    yet completed (in virtual time). Beyond that the system is
//!    saturated and queueing further work only grows tail latency, so
//!    the request is shed as [`RejectReason::QueueFull`].
//! 2. **Deadline shedding** — if the *estimated* start wait (the least
//!    busy replica's backlog) already exceeds the deadline, the request
//!    cannot possibly be useful; shed as
//!    [`RejectReason::DeadlineExceeded`] without executing it.
//! 3. **Per-tenant token buckets** — each tenant drains one token per
//!    admitted request from a bucket refilled at `rate_per_sec` up to
//!    `burst`; an empty bucket sheds as [`RejectReason::QuotaExceeded`].
//!
//! Order matters for the accounting invariants the proptests pin: a
//! token is only consumed when every earlier gate passed, so quota
//! tenants aren't charged for requests the queue would have shed anyway.
//! All state advances on the schedule's virtual clock — admission
//! decisions are bit-reproducible for a given schedule.

use std::collections::BTreeMap;

/// A per-tenant token bucket: `burst` capacity, refilled continuously at
/// `rate_per_sec`. One admitted request costs one token.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TokenBucketConfig {
    /// Sustained admitted-requests-per-second per tenant.
    pub rate_per_sec: f32,
    /// Bucket capacity: the largest burst admitted from a cold start.
    pub burst: f32,
}

/// What the admission gate enforces. `Default` is a bounded queue of 64
/// with no deadline and no quotas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// Max requests admitted but not yet completed. Saturation backstop —
    /// must be at least 1.
    pub queue_cap: usize,
    /// Shed requests whose estimated start wait exceeds this (µs).
    pub deadline_us: Option<f32>,
    /// Per-tenant token-bucket quota; `None` admits all tenants equally.
    pub quota: Option<TokenBucketConfig>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_cap: 64,
            deadline_us: None,
            quota: None,
        }
    }
}

/// Why a request was shed instead of executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectReason {
    /// The bounded admission queue was full.
    QueueFull,
    /// Estimated start wait exceeded the request deadline.
    DeadlineExceeded,
    /// The tenant's token bucket was empty.
    QuotaExceeded,
    /// Every replica of some required shard group failed the read.
    ShardUnavailable,
}

impl RejectReason {
    /// Stable name for reports and JSON rows.
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::QuotaExceeded => "quota_exceeded",
            RejectReason::ShardUnavailable => "shard_unavailable",
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last_us: f64,
}

/// Virtual-time admission bookkeeping for one open-loop run. `BTreeMap`
/// (not `HashMap`) so tenant iteration order — and therefore every
/// report derived from it — is deterministic.
#[derive(Debug, Default)]
pub(super) struct AdmissionState {
    /// Virtual completion times of admitted-but-unfinished requests.
    inflight: Vec<f64>,
    buckets: BTreeMap<u32, Bucket>,
}

impl AdmissionState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides admission for a request from `tenant` arriving at `now_us`
    /// with an engine-estimated start wait of `est_wait_us`. Mutates state
    /// (prunes completed in-flight entries, refills and possibly drains
    /// the tenant's bucket) and returns `Err(reason)` on shed.
    pub fn admit(
        &mut self,
        cfg: &AdmissionConfig,
        tenant: u32,
        now_us: f64,
        est_wait_us: f64,
    ) -> Result<(), RejectReason> {
        assert!(cfg.queue_cap >= 1, "queue_cap must admit something");
        self.inflight.retain(|&done| done > now_us);
        if self.inflight.len() >= cfg.queue_cap {
            return Err(RejectReason::QueueFull);
        }
        if let Some(deadline) = cfg.deadline_us {
            if est_wait_us > deadline as f64 {
                return Err(RejectReason::DeadlineExceeded);
            }
        }
        if let Some(quota) = cfg.quota {
            let bucket = self.buckets.entry(tenant).or_insert(Bucket {
                tokens: quota.burst as f64,
                last_us: now_us,
            });
            let dt_us = (now_us - bucket.last_us).max(0.0);
            bucket.tokens =
                (bucket.tokens + dt_us * quota.rate_per_sec as f64 / 1e6).min(quota.burst as f64);
            bucket.last_us = now_us;
            if bucket.tokens < 1.0 {
                return Err(RejectReason::QuotaExceeded);
            }
            bucket.tokens -= 1.0;
        }
        Ok(())
    }

    /// Records an admitted request's virtual completion time.
    pub fn started(&mut self, completion_us: f64) {
        self.inflight.push(completion_us);
    }

    /// Requests admitted but not completed at `now_us`.
    #[cfg(test)]
    pub fn outstanding(&self, now_us: f64) -> usize {
        self.inflight.iter().filter(|&&done| done > now_us).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bound_is_enforced_and_drains() {
        let cfg = AdmissionConfig {
            queue_cap: 2,
            ..Default::default()
        };
        let mut st = AdmissionState::new();
        assert!(st.admit(&cfg, 0, 0.0, 0.0).is_ok());
        st.started(100.0);
        assert!(st.admit(&cfg, 0, 1.0, 0.0).is_ok());
        st.started(200.0);
        assert_eq!(st.outstanding(2.0), 2);
        assert_eq!(st.admit(&cfg, 0, 2.0, 0.0), Err(RejectReason::QueueFull));
        // Once one completes (t > 100), a slot frees up.
        assert!(st.admit(&cfg, 0, 101.0, 0.0).is_ok());
    }

    #[test]
    fn deadline_sheds_on_estimated_wait_only() {
        let cfg = AdmissionConfig {
            deadline_us: Some(50.0),
            ..Default::default()
        };
        let mut st = AdmissionState::new();
        assert!(st.admit(&cfg, 0, 0.0, 49.0).is_ok());
        assert_eq!(
            st.admit(&cfg, 0, 0.0, 51.0),
            Err(RejectReason::DeadlineExceeded)
        );
    }

    #[test]
    fn token_bucket_burst_then_refill() {
        let cfg = AdmissionConfig {
            queue_cap: usize::MAX >> 1,
            quota: Some(TokenBucketConfig {
                rate_per_sec: 1000.0, // one token per ms
                burst: 3.0,
            }),
            ..Default::default()
        };
        let mut st = AdmissionState::new();
        // Burst of 3 at t=0, then empty.
        for _ in 0..3 {
            assert!(st.admit(&cfg, 7, 0.0, 0.0).is_ok());
        }
        assert_eq!(
            st.admit(&cfg, 7, 0.0, 0.0),
            Err(RejectReason::QuotaExceeded)
        );
        // Another tenant has its own bucket.
        assert!(st.admit(&cfg, 8, 0.0, 0.0).is_ok());
        // 1ms later one token has refilled — exactly one more admit.
        assert!(st.admit(&cfg, 7, 1_000.0, 0.0).is_ok());
        assert_eq!(
            st.admit(&cfg, 7, 1_000.0, 0.0),
            Err(RejectReason::QuotaExceeded)
        );
    }

    #[test]
    fn quota_not_charged_when_queue_sheds_first() {
        let cfg = AdmissionConfig {
            queue_cap: 1,
            quota: Some(TokenBucketConfig {
                rate_per_sec: 0.0,
                burst: 1.0,
            }),
            ..Default::default()
        };
        let mut st = AdmissionState::new();
        assert!(st.admit(&cfg, 0, 0.0, 0.0).is_ok());
        st.started(f64::MAX);
        // Queue full: shed before the bucket is touched...
        assert_eq!(st.admit(&cfg, 0, 1.0, 0.0), Err(RejectReason::QueueFull));
        // ...so the tenant's last token is still there for a later slot.
        assert_eq!(st.buckets[&0].tokens, 0.0, "first admit took the token");
    }
}
