//! Replicated, admission-controlled serving with live reconfiguration
//! (DESIGN.md §11).
//!
//! [`ShardedIndex`](super::ShardedIndex) scales reads with *partitions*;
//! this module scales
//! them with *replicas* and makes the result service-shaped:
//!
//! - **Replication** ([`ReplicaSet`]): each shard group holds N
//!   bit-identical replicas of one backend behind a pluggable
//!   [`LoadBalancePolicy`]. Frozen backends are `Arc`-shared; mutable
//!   backends are forked ([`MutableShardBackend::fork_local`]) and kept
//!   identical by state-machine replication — every write applies to
//!   every replica in the same order. Because replicas are bit-identical,
//!   *any* replica choice returns the same top-k and the §7.3 exact-merge
//!   contract survives replication unchanged.
//! - **Admission control** ([`super::AdmissionConfig`]): every request is
//!   admitted or shed with a typed [`RejectReason`] before execution;
//!   the queue is bounded, deadlines shed early, tenants have quotas.
//! - **Live reconfiguration**: [`ClusterIndex::add_shard`] /
//!   [`ClusterIndex::remove_shard`] / [`ClusterIndex::set_replicas`]
//!   rebalance by the same `g % n_groups` round-robin rule the builders
//!   use, moving points through `MutableShardBackend` remove+insert.
//!   [`ClusterEngine`] wraps the index in a `RwLock`, so every query sees
//!   one atomic membership view — never a torn one.
//!
//! Time is virtual: arrivals come from an [`ArrivalSchedule`], service
//! times from a [`CostModel`] over deterministic work counters, and queue
//! waits from per-replica [`VirtualClock`]s. On this 1-core container
//! that is the honest way to measure goodput and p99 under overload
//! (DESIGN.md §11.4); it also makes every run bit-reproducible, which is
//! what lets tests/determinism.rs pin the whole serving path across
//! `RPQ_THREADS` settings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use rpq_data::{Dataset, LabelPredicate, Labels};
use rpq_graph::{Neighbor, ProximityGraph, SearchScratch};
use rpq_quant::VectorCompressor;

use super::admission::{AdmissionConfig, AdmissionState, RejectReason};
use super::balance::LoadBalancePolicy;
use super::fault::{FlakyBackend, ReplicaFault};
use super::loadgen::{ArrivalSchedule, CostModel, FilteredQuery};
use super::metrics::LatencySummary;
use super::{
    assert_shardable, merge_top_k, partition_round_robin, MutableShardBackend, ShardBackend,
    ShardQueryStats,
};
use crate::filter::FilterStrategy;
use crate::memory::InMemoryIndex;
use crate::ssd::VirtualClock;
use crate::stream::{StreamingConfig, StreamingIndex};

/// One replica's backend. Three faces instead of two
/// ([`super::Shard`]'s `ShardHandle`) because replication and fault
/// injection each need something the plain handle can't do: frozen
/// backends must be shareable (`Arc`) so N replicas don't cost N copies,
/// and flaky backends must keep their fault switches reachable from the
/// outside while installed.
pub enum ClusterHandle {
    /// A frozen backend, shareable across replicas.
    Frozen(Arc<dyn ShardBackend>),
    /// A mutable backend, exclusively owned (forked per replica).
    Mutable(Box<dyn MutableShardBackend>),
    /// A fault-injection wrapper (tests); shared so the test keeps a
    /// handle to the failure switches.
    Flaky(Arc<FlakyBackend>),
}

impl ClusterHandle {
    /// The fallible read path: only [`ClusterHandle::Flaky`] ever fails.
    /// A `Some(filter)` routes through the backend's filtered search
    /// (same fault schedule — flaky backends burn one ticket per read,
    /// filtered or not).
    fn try_search(
        &self,
        query: &[f32],
        filter: Option<FilteredQuery>,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats), ReplicaFault> {
        match filter {
            None => match self {
                ClusterHandle::Frozen(b) => Ok(b.search_local(query, ef, k, scratch)),
                ClusterHandle::Mutable(b) => Ok(b.search_local(query, ef, k, scratch)),
                ClusterHandle::Flaky(b) => b.try_search_local(query, ef, k, scratch),
            },
            Some(f) => match self {
                ClusterHandle::Frozen(b) => {
                    Ok(b.search_local_filtered(query, f.pred, f.strategy, ef, k, scratch))
                }
                ClusterHandle::Mutable(b) => {
                    Ok(b.search_local_filtered(query, f.pred, f.strategy, ef, k, scratch))
                }
                ClusterHandle::Flaky(b) => {
                    b.try_search_local_filtered(query, f.pred, f.strategy, ef, k, scratch)
                }
            },
        }
    }

    fn shard_len(&self) -> usize {
        match self {
            ClusterHandle::Frozen(b) => b.shard_len(),
            ClusterHandle::Mutable(b) => b.shard_len(),
            ClusterHandle::Flaky(b) => b.shard_len(),
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            ClusterHandle::Frozen(b) => b.resident_bytes(),
            ClusterHandle::Mutable(b) => b.resident_bytes(),
            ClusterHandle::Flaky(b) => b.resident_bytes(),
        }
    }

    fn mutable(&mut self) -> Option<&mut dyn MutableShardBackend> {
        match self {
            ClusterHandle::Mutable(b) => Some(&mut **b),
            _ => None,
        }
    }

    fn as_mutable(&self) -> Option<&dyn MutableShardBackend> {
        match self {
            ClusterHandle::Mutable(b) => Some(&**b),
            _ => None,
        }
    }

    /// A new replica of this backend: frozen/flaky backends share,
    /// mutable backends deep-fork (bit-identical by contract).
    fn fork(&self) -> ClusterHandle {
        match self {
            ClusterHandle::Frozen(b) => ClusterHandle::Frozen(Arc::clone(b)),
            ClusterHandle::Mutable(b) => ClusterHandle::Mutable(b.fork_local()),
            ClusterHandle::Flaky(b) => ClusterHandle::Flaky(Arc::clone(b)),
        }
    }
}

/// One replica: a backend plus its runtime state — a virtual device
/// timeline, the completions outstanding on it, and an enable switch
/// (drained replicas stay resident but take no traffic).
pub struct Replica {
    handle: ClusterHandle,
    clock: VirtualClock,
    /// Virtual completion times of requests this replica is serving.
    outstanding: Mutex<Vec<f64>>,
    enabled: AtomicBool,
}

impl Replica {
    fn new(handle: ClusterHandle) -> Self {
        Self {
            handle,
            clock: VirtualClock::new(),
            outstanding: Mutex::new(Vec::new()),
            enabled: AtomicBool::new(true),
        }
    }

    /// A replica over a shared frozen backend.
    pub fn frozen(backend: Arc<dyn ShardBackend>) -> Self {
        Self::new(ClusterHandle::Frozen(backend))
    }

    /// A replica over an exclusively-owned mutable backend.
    pub fn mutable(backend: Box<dyn MutableShardBackend>) -> Self {
        Self::new(ClusterHandle::Mutable(backend))
    }

    /// A replica over a fault-injection wrapper (keep the `Arc` to flip
    /// its switches mid-run).
    pub fn flaky(backend: Arc<FlakyBackend>) -> Self {
        Self::new(ClusterHandle::Flaky(backend))
    }

    /// Takes the replica in or out of rotation (resident either way).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Requests admitted to this replica and not yet complete at `now_us`.
    fn outstanding_at(&self, now_us: f64) -> usize {
        let mut v = self.outstanding.lock();
        v.retain(|&done| done > now_us);
        v.len()
    }

    fn reset_runtime(&self) {
        self.clock.reset();
        self.outstanding.lock().clear();
    }
}

/// N bit-identical replicas of one shard behind a balance policy.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    /// Round-robin cursor (advances only when that policy runs).
    rr: AtomicUsize,
}

impl ReplicaSet {
    /// Wraps replicas; they must exist and agree on shard length.
    pub fn new(replicas: Vec<Replica>) -> Self {
        assert!(!replicas.is_empty(), "a replica set needs >= 1 replica");
        let len = replicas[0].handle.shard_len();
        for r in &replicas {
            assert_eq!(r.handle.shard_len(), len, "replicas diverged in length");
        }
        Self {
            replicas,
            rr: AtomicUsize::new(0),
        }
    }

    /// Replication factor.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Vectors per replica (tombstones included).
    pub fn shard_len(&self) -> usize {
        self.replicas[0].handle.shard_len()
    }

    /// The replicas, for enable switches and inspection.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Preference order over replicas for one read at virtual time
    /// `now_us`: the policy ranks enabled replicas (ties toward the lower
    /// index), then disabled ones trail as a last resort — a *disabled*
    /// replica still answers correctly, whereas a faulted one cannot.
    fn order(&self, policy: LoadBalancePolicy, now_us: f64) -> Vec<usize> {
        let mut on: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| self.replicas[i].is_enabled())
            .collect();
        match policy {
            LoadBalancePolicy::RoundRobin => {
                if !on.is_empty() {
                    let cursor = self.rr.fetch_add(1, Ordering::Relaxed) % on.len();
                    on.rotate_left(cursor);
                }
            }
            LoadBalancePolicy::LeastOutstanding => {
                on.sort_by_key(|&i| (self.replicas[i].outstanding_at(now_us), i));
            }
            LoadBalancePolicy::QueueAware => {
                on.sort_by(|&a, &b| {
                    self.replicas[a]
                        .clock
                        .backlog_us(now_us)
                        .total_cmp(&self.replicas[b].clock.backlog_us(now_us))
                        .then(a.cmp(&b))
                });
            }
        }
        on.extend((0..self.replicas.len()).filter(|&i| !self.replicas[i].is_enabled()));
        on
    }

    /// One read at virtual time `now_us`: try replicas in policy order,
    /// failing over past faulted ones. On success, reserves the query's
    /// modeled service time on the chosen replica's timeline and returns
    /// `(results, stats, virtual completion time)`. `Err` only when every
    /// replica failed.
    #[allow(clippy::too_many_arguments)]
    fn search_at(
        &self,
        policy: LoadBalancePolicy,
        query: &[f32],
        filter: Option<FilteredQuery>,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
        now_us: f64,
        cost: &CostModel,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats, f64), ReplicaFault> {
        for idx in self.order(policy, now_us) {
            let replica = &self.replicas[idx];
            match replica.handle.try_search(query, filter, ef, k, scratch) {
                Ok((res, stats)) => {
                    let service_us = cost.service_us(&stats);
                    let wait_us = replica.clock.reserve_at(now_us, service_us);
                    let completion_us = now_us + wait_us + service_us;
                    replica.outstanding.lock().push(completion_us);
                    return Ok((res, stats, completion_us));
                }
                Err(ReplicaFault) => continue,
            }
        }
        Err(ReplicaFault)
    }

    /// Least backlog across enabled replicas (falling back to all
    /// replicas when the whole set is drained, since drained replicas
    /// still answer as a last resort) — the admission gate's estimate of
    /// how long a request admitted now would wait to start.
    fn min_backlog_us(&self, now_us: f64) -> f64 {
        let best = self
            .replicas
            .iter()
            .filter(|r| r.is_enabled())
            .map(|r| r.clock.backlog_us(now_us))
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            return best;
        }
        self.replicas
            .iter()
            .map(|r| r.clock.backlog_us(now_us))
            .fold(f64::INFINITY, f64::min)
    }

    /// Grows or shrinks to `n` replicas: new ones fork replica 0, excess
    /// ones drop from the tail. Panics on `n == 0`.
    fn set_replicas(&mut self, n: usize) {
        assert!(n >= 1, "a shard group cannot have zero replicas");
        while self.replicas.len() > n {
            self.replicas.pop();
        }
        while self.replicas.len() < n {
            let fork = self.replicas[0].handle.fork();
            self.replicas.push(Replica::new(fork));
        }
    }

    /// Applies one insert to **every** replica (state-machine
    /// replication); all must agree on the assigned local id. Mask 0 =
    /// unlabeled (matches no predicate).
    fn insert_local_labeled(&mut self, v: &[f32], mask: u32, scratch: &mut SearchScratch) -> u32 {
        let mut assigned = None;
        for replica in &mut self.replicas {
            let backend = replica
                .handle
                .mutable()
                .expect("insert routed to a non-mutable replica");
            let local = backend.insert_local_labeled(v, mask, scratch);
            match assigned {
                None => assigned = Some(local),
                Some(first) => assert_eq!(local, first, "replicas diverged on insert"),
            }
        }
        assigned.expect("replica set is never empty")
    }

    /// Applies one tombstone to every replica; all must agree.
    fn remove_local(&mut self, local_id: u32) -> bool {
        let mut agreed = None;
        for replica in &mut self.replicas {
            let backend = replica
                .handle
                .mutable()
                .expect("remove routed to a non-mutable replica");
            let ok = backend.remove_local(local_id);
            match agreed {
                None => agreed = Some(ok),
                Some(first) => assert_eq!(ok, first, "replicas diverged on remove"),
            }
        }
        agreed.expect("replica set is never empty")
    }

    /// Consolidates every replica; survivor lists must be identical
    /// (replicas apply the same writes in the same order, so they are).
    fn consolidate_local(&mut self, force: bool) -> Option<Vec<u32>> {
        let mut first: Option<Option<Vec<u32>>> = None;
        for replica in &mut self.replicas {
            let backend = replica
                .handle
                .mutable()
                .expect("consolidate routed to a non-mutable replica");
            let survivors = backend.consolidate_local(force);
            match &first {
                None => first = Some(survivors),
                Some(want) => assert_eq!(&survivors, want, "replicas diverged on consolidate"),
            }
        }
        first.expect("replica set is never empty")
    }

    fn live_len(&self) -> usize {
        self.replicas[0]
            .handle
            .as_mutable()
            .map_or_else(|| self.shard_len(), |b| b.live_len())
    }

    fn is_mutable(&self) -> bool {
        self.replicas[0].handle.as_mutable().is_some()
    }
}

/// One shard group: a replica set plus the positional local→global id
/// map (shared by all replicas, since they are bit-identical).
pub struct ClusterGroup {
    set: ReplicaSet,
    global_ids: Vec<u32>,
}

impl ClusterGroup {
    /// Wraps a replica set with its id map.
    pub fn new(set: ReplicaSet, global_ids: Vec<u32>) -> Self {
        assert_eq!(
            set.shard_len(),
            global_ids.len(),
            "id map must cover the shard group"
        );
        Self { set, global_ids }
    }

    /// The replica set (enable switches etc.).
    pub fn replica_set(&self) -> &ReplicaSet {
        &self.set
    }

    /// Global ids resident in this group (tombstones included).
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }
}

/// A replicated, dynamically re-shardable index: the data-plane state
/// behind a [`ClusterEngine`]. Mutating methods take `&mut self`; the
/// engine serializes them behind its `RwLock` so reads always see an
/// atomic membership view.
pub struct ClusterIndex {
    groups: Vec<ClusterGroup>,
    dim: usize,
    policy: LoadBalancePolicy,
    /// Next global id to hand out; never reused (same contract as
    /// [`ShardedIndex`]).
    next_global: u32,
}

impl ClusterIndex {
    /// Assembles a cluster from prepared groups. Panics if groups' global
    /// ids overlap.
    pub fn from_groups(groups: Vec<ClusterGroup>, dim: usize, policy: LoadBalancePolicy) -> Self {
        let total: usize = groups.iter().map(|g| g.global_ids.len()).sum();
        let mut seen = std::collections::HashSet::with_capacity(total);
        let mut next_global = 0u32;
        for group in &groups {
            for &g in &group.global_ids {
                assert!(seen.insert(g), "global id {g} appears in two shard groups");
                next_global = next_global.max(g + 1);
            }
        }
        assert!(!groups.is_empty(), "a cluster needs >= 1 shard group");
        Self {
            groups,
            dim,
            policy,
            next_global,
        }
    }

    /// Round-robin partitions `data` into `n_shards` frozen in-memory
    /// groups of `replicas` replicas each. Each group builds its backend
    /// **once** and `Arc`-shares it — replication of frozen shards costs
    /// pointers, not memory.
    pub fn build_in_memory<C>(
        compressor: &C,
        data: &Dataset,
        n_shards: usize,
        replicas: usize,
        policy: LoadBalancePolicy,
        build_graph: impl Fn(&Dataset) -> ProximityGraph,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        assert!(replicas >= 1, "need >= 1 replica");
        let groups = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let graph = build_graph(&part);
                let backend: Arc<dyn ShardBackend> =
                    Arc::new(InMemoryIndex::build(compressor.clone(), &part, graph));
                let set = ReplicaSet::new(
                    (0..replicas)
                        .map(|_| Replica::frozen(Arc::clone(&backend)))
                        .collect(),
                );
                ClusterGroup::new(set, ids)
            })
            .collect();
        Self::from_groups(groups, data.dim(), policy)
    }

    /// [`ClusterIndex::build_in_memory`] with per-point label masks: each
    /// group's backend carries the positional subset of `labels` its
    /// points landed with, so [`ClusterIndex::search_filtered`] works on
    /// every replica.
    #[allow(clippy::too_many_arguments)]
    pub fn build_in_memory_labeled<C>(
        compressor: &C,
        data: &Dataset,
        labels: &Labels,
        n_shards: usize,
        replicas: usize,
        policy: LoadBalancePolicy,
        build_graph: impl Fn(&Dataset) -> ProximityGraph,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        assert_eq!(labels.len(), data.len(), "labels/dataset size mismatch");
        assert!(replicas >= 1, "need >= 1 replica");
        let groups = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let graph = build_graph(&part);
                let backend: Arc<dyn ShardBackend> = Arc::new(
                    InMemoryIndex::build(compressor.clone(), &part, graph)
                        .with_labels(labels.subset(&local)),
                );
                let set = ReplicaSet::new(
                    (0..replicas)
                        .map(|_| Replica::frozen(Arc::clone(&backend)))
                        .collect(),
                );
                ClusterGroup::new(set, ids)
            })
            .collect();
        Self::from_groups(groups, data.dim(), policy)
    }

    /// Round-robin partitions `data` into `n_shards` **mutable** streaming
    /// groups of `replicas` forked replicas each — the configuration live
    /// reconfiguration needs.
    pub fn build_streaming<C>(
        compressor: &C,
        data: &Dataset,
        n_shards: usize,
        replicas: usize,
        policy: LoadBalancePolicy,
        cfg: StreamingConfig,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        assert!(replicas >= 1, "need >= 1 replica");
        let groups = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let index = StreamingIndex::build(compressor.clone(), &part, cfg);
                let mut set = ReplicaSet::new(vec![Replica::mutable(Box::new(index))]);
                set.set_replicas(replicas);
                ClusterGroup::new(set, ids)
            })
            .collect();
        Self::from_groups(groups, data.dim(), policy)
    }

    /// [`ClusterIndex::build_streaming`] with per-point label masks; the
    /// labels follow the lock-step streaming lifecycle on every forked
    /// replica (insert, tombstone, consolidate).
    pub fn build_streaming_labeled<C>(
        compressor: &C,
        data: &Dataset,
        labels: &Labels,
        n_shards: usize,
        replicas: usize,
        policy: LoadBalancePolicy,
        cfg: StreamingConfig,
    ) -> Self
    where
        C: VectorCompressor + Clone + 'static,
    {
        assert_shardable(data.len(), n_shards);
        assert_eq!(labels.len(), data.len(), "labels/dataset size mismatch");
        assert!(replicas >= 1, "need >= 1 replica");
        let groups = partition_round_robin(data.len(), n_shards)
            .into_iter()
            .map(|ids| {
                let local: Vec<usize> = ids.iter().map(|&g| g as usize).collect();
                let part = data.subset(&local);
                let index = StreamingIndex::build_labeled(
                    compressor.clone(),
                    &part,
                    labels.subset(&local),
                    cfg,
                );
                let mut set = ReplicaSet::new(vec![Replica::mutable(Box::new(index))]);
                set.set_replicas(replicas);
                ClusterGroup::new(set, ids)
            })
            .collect();
        Self::from_groups(groups, data.dim(), policy)
    }

    /// Shard groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The groups, for enable switches and inspection.
    pub fn groups(&self) -> &[ClusterGroup] {
        &self.groups
    }

    /// Total resident vectors (tombstones included) across groups,
    /// counting each point once regardless of replication.
    pub fn len(&self) -> usize {
        self.groups.iter().map(|g| g.global_ids.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident minus tombstoned points.
    pub fn live_len(&self) -> usize {
        self.groups.iter().map(|g| g.set.live_len()).sum()
    }

    /// Query dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Largest per-replica shard size — scratch sizing.
    pub fn max_shard_len(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.set.shard_len())
            .max()
            .unwrap_or(0)
    }

    /// Total RAM across groups and replicas (shared frozen backends
    /// counted once per `Arc` clone would lie, so: backends per distinct
    /// replica + one id map per group).
    pub fn resident_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| {
                g.global_ids.len() * std::mem::size_of::<u32>()
                    + g.set
                        .replicas
                        .iter()
                        .map(|r| r.handle.resident_bytes())
                        .sum::<usize>()
            })
            .sum()
    }

    /// The active balance policy.
    pub fn policy(&self) -> LoadBalancePolicy {
        self.policy
    }

    /// Swaps the balance policy (takes effect on the next read).
    pub fn set_policy(&mut self, policy: LoadBalancePolicy) {
        self.policy = policy;
    }

    /// The admission gate's start-wait estimate: a query fans out to all
    /// groups, so it starts when the *most backlogged* group's best
    /// replica frees up.
    pub fn est_start_wait_us(&self, now_us: f64) -> f64 {
        self.groups
            .iter()
            .map(|g| g.set.min_backlog_us(now_us))
            .fold(0.0, f64::max)
    }

    /// One read at virtual time `now_us`: fan out to every group through
    /// its policy-chosen replica, merge exactly (§7.3), return the global
    /// top-k, fan-out stats, and the query's virtual completion time (the
    /// slowest group's). `Err(ShardUnavailable)` if any group has no
    /// answering replica — a partial top-k would be silent corruption.
    pub fn search_at(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
        now_us: f64,
        cost: &CostModel,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats, f64), RejectReason> {
        self.search_at_opt(query, None, ef, k, scratch, now_us, cost)
    }

    /// [`ClusterIndex::search_at`] under a predicate: the same fan-out,
    /// failover, merge, and virtual-time accounting, with every group's
    /// chosen replica running its filtered search. The §7.3 exact-merge
    /// contract holds per predicate — at exhaustive `ef` the merged top-k
    /// matches a single filtered index id-for-id.
    #[allow(clippy::too_many_arguments)]
    pub fn search_filtered_at(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
        now_us: f64,
        cost: &CostModel,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats, f64), RejectReason> {
        let filter = Some(FilteredQuery { pred, strategy });
        self.search_at_opt(query, filter, ef, k, scratch, now_us, cost)
    }

    #[allow(clippy::too_many_arguments)]
    fn search_at_opt(
        &self,
        query: &[f32],
        filter: Option<FilteredQuery>,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
        now_us: f64,
        cost: &CostModel,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats, f64), RejectReason> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut partials = Vec::with_capacity(self.groups.len());
        let mut total = ShardQueryStats::default();
        let mut completion_us = now_us;
        for group in &self.groups {
            if group.global_ids.is_empty() {
                // A freshly-joined shard before rebalance lands points;
                // nothing to search, nothing to reserve.
                continue;
            }
            let (mut res, stats, done) = group
                .set
                .search_at(self.policy, query, filter, ef, k, scratch, now_us, cost)
                .map_err(|ReplicaFault| RejectReason::ShardUnavailable)?;
            for n in &mut res {
                n.id = group.global_ids[n.id as usize];
            }
            total.merge(&stats);
            completion_us = completion_us.max(done);
            partials.push(res);
        }
        Ok((merge_top_k(&partials, k), total, completion_us))
    }

    /// One read outside any schedule (virtual time 0, default costs):
    /// the plain correctness-facing entry point.
    pub fn search(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats), RejectReason> {
        self.search_at(query, ef, k, scratch, 0.0, &CostModel::default())
            .map(|(res, stats, _)| (res, stats))
    }

    /// One filtered read outside any schedule (virtual time 0, default
    /// costs).
    pub fn search_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<(Vec<Neighbor>, ShardQueryStats), RejectReason> {
        self.search_filtered_at(
            query,
            pred,
            strategy,
            ef,
            k,
            scratch,
            0.0,
            &CostModel::default(),
        )
        .map(|(res, stats, _)| (res, stats))
    }

    /// Inserts one vector, routing by `g % n_groups` and applying it to
    /// every replica of the target group. Returns the global id.
    pub fn insert(&mut self, v: &[f32], scratch: &mut SearchScratch) -> u32 {
        self.insert_labeled(v, 0, scratch)
    }

    /// [`ClusterIndex::insert`] with a label mask (0 = unlabeled, matches
    /// no predicate), replicated like any other write.
    pub fn insert_labeled(&mut self, v: &[f32], mask: u32, scratch: &mut SearchScratch) -> u32 {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let g = self.next_global;
        self.next_global += 1;
        let n_groups = self.groups.len();
        let group = &mut self.groups[g as usize % n_groups];
        let local = group.set.insert_local_labeled(v, mask, scratch);
        assert_eq!(
            local as usize,
            group.global_ids.len(),
            "mutable backend broke positional id alignment"
        );
        group.global_ids.push(g);
        g
    }

    /// Tombstones a global id on every replica of its group. `false` when
    /// unknown or already dead.
    pub fn remove(&mut self, global_id: u32) -> bool {
        for group in &mut self.groups {
            // Linear scan, not binary search: rebalance moves points
            // between groups, so id maps are not sorted after a
            // reconfiguration.
            if let Some(local) = group.global_ids.iter().position(|&g| g == global_id) {
                if !group.set.is_mutable() {
                    return false;
                }
                return group.set.remove_local(local as u32);
            }
        }
        false
    }

    /// Consolidates every mutable group (threshold-gated per group unless
    /// `force`), remapping id maps through the survivor lists. Returns
    /// reclaimed points.
    pub fn consolidate(&mut self, force: bool) -> usize {
        let mut reclaimed = 0;
        for group in &mut self.groups {
            if !group.set.is_mutable() {
                continue;
            }
            let Some(survivors) = group.set.consolidate_local(force) else {
                continue;
            };
            reclaimed += group.global_ids.len() - survivors.len();
            group.global_ids = survivors
                .iter()
                .map(|&old| group.global_ids[old as usize])
                .collect();
        }
        reclaimed
    }

    /// Re-homes every live point to `g % n_groups` — the invariant the
    /// builders establish and membership changes disturb. Consolidates
    /// first (tombstones don't deserve a move), then walks groups and
    /// locals in ascending order (deterministic), tombstoning each
    /// misplaced point at its source and re-inserting its vector at its
    /// target, and finally consolidates again to compact the sources.
    fn rebalance(&mut self, scratch: &mut SearchScratch) {
        self.consolidate(true);
        let n_groups = self.groups.len();
        let mut moves: Vec<(u32, Vec<f32>, u32, usize)> = Vec::new();
        for (gi, group) in self.groups.iter_mut().enumerate() {
            for local in 0..group.global_ids.len() {
                let g = group.global_ids[local];
                let target = g as usize % n_groups;
                if target == gi {
                    continue;
                }
                let backend = group.set.replicas[0]
                    .handle
                    .as_mutable()
                    .expect("rebalance requires mutable groups");
                moves.push((
                    g,
                    backend.vector_local(local as u32).to_vec(),
                    backend.label_local(local as u32),
                    target,
                ));
                group.set.remove_local(local as u32);
            }
        }
        for (g, v, mask, target) in moves {
            let group = &mut self.groups[target];
            let local = group.set.insert_local_labeled(&v, mask, scratch);
            assert_eq!(
                local as usize,
                group.global_ids.len(),
                "mutable backend broke positional id alignment"
            );
            group.global_ids.push(g);
        }
        // Compact the tombstones the moves left behind at their sources.
        self.consolidate(true);
    }

    /// Adds an (empty, mutable) shard group and rebalances live points
    /// onto it by the `g % n_groups` rule. The new group gets the same
    /// replication factor as group 0. Returns the new group's index.
    /// Requires every existing group to be mutable (points must move).
    pub fn add_shard(
        &mut self,
        backend: Box<dyn MutableShardBackend>,
        scratch: &mut SearchScratch,
    ) -> usize {
        assert_eq!(
            backend.shard_len(),
            0,
            "a joining shard must start empty; its points arrive by rebalance"
        );
        let replicas = self.groups[0].set.len();
        let mut set = ReplicaSet::new(vec![Replica::mutable(backend)]);
        set.set_replicas(replicas);
        self.groups.push(ClusterGroup::new(set, Vec::new()));
        self.rebalance(scratch);
        self.groups.len() - 1
    }

    /// Removes shard group `gi`, redistributing its live points across
    /// the survivors, then rebalances everyone to the new `g % n_groups`
    /// rule. Panics when it is the last group.
    pub fn remove_shard(&mut self, gi: usize, scratch: &mut SearchScratch) {
        assert!(self.groups.len() > 1, "cannot remove the last shard group");
        // Compact the departing group so only live points travel.
        let mut departing = self.groups.remove(gi);
        if departing.set.is_mutable() {
            if let Some(survivors) = departing.set.consolidate_local(true) {
                departing.global_ids = survivors
                    .iter()
                    .map(|&old| departing.global_ids[old as usize])
                    .collect();
            }
        }
        let n_groups = self.groups.len();
        let backend = departing.set.replicas[0]
            .handle
            .as_mutable()
            .expect("remove_shard requires a mutable departing group");
        for (local, &g) in departing.global_ids.iter().enumerate() {
            let v = backend.vector_local(local as u32).to_vec();
            let mask = backend.label_local(local as u32);
            let group = &mut self.groups[g as usize % n_groups];
            let new_local = group.set.insert_local_labeled(&v, mask, scratch);
            assert_eq!(
                new_local as usize,
                group.global_ids.len(),
                "mutable backend broke positional id alignment"
            );
            group.global_ids.push(g);
        }
        // Survivors' own points may now be misplaced under the new rule.
        self.rebalance(scratch);
    }

    /// Sets every group's replication factor (forking or dropping
    /// replicas as needed).
    pub fn set_replicas(&mut self, n: usize) {
        for group in &mut self.groups {
            group.set.set_replicas(n);
        }
    }

    /// Clears all virtual-time runtime state (device horizons,
    /// outstanding completions, round-robin cursors) so measurement runs
    /// are independent of each other.
    pub fn reset_virtual_time(&self) {
        for group in &self.groups {
            group.set.rr.store(0, Ordering::Relaxed);
            for replica in &group.set.replicas {
                replica.reset_runtime();
            }
        }
    }
}

/// What happened to one scheduled request.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestOutcome {
    /// Executed: the exact merged top-k and the virtual end-to-end
    /// latency (queue wait + service on the slowest group).
    Completed {
        neighbors: Vec<Neighbor>,
        latency_us: f32,
    },
    /// Shed before execution (or failed on every replica of a group).
    Rejected { reason: RejectReason },
}

impl RequestOutcome {
    pub fn is_completed(&self) -> bool {
        matches!(self, RequestOutcome::Completed { .. })
    }

    /// The top-k, when completed.
    pub fn neighbors(&self) -> Option<&[Neighbor]> {
        match self {
            RequestOutcome::Completed { neighbors, .. } => Some(neighbors),
            RequestOutcome::Rejected { .. } => None,
        }
    }
}

/// Per-tenant admission accounting for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantTally {
    pub tenant: u32,
    /// Requests this tenant offered.
    pub offered: usize,
    /// Requests admitted (and executed).
    pub admitted: usize,
    /// Requests shed, any reason.
    pub shed: usize,
}

/// What one open-loop run measured. Counters satisfy
/// `completed + shed == offered` and `admitted == completed +
/// shed_unavailable` (an unavailable-shard rejection happens *after*
/// admission — the request was executed but no group could answer).
#[derive(Clone, Debug, Default)]
pub struct ClusterReport {
    /// Requests in the schedule.
    pub offered: usize,
    /// Requests past the admission gate.
    pub admitted: usize,
    /// Requests that returned a top-k.
    pub completed: usize,
    /// Requests shed, any reason.
    pub shed: usize,
    pub shed_queue_full: usize,
    pub shed_deadline: usize,
    pub shed_quota: usize,
    pub shed_unavailable: usize,
    /// Offered arrival rate over the schedule's span.
    pub offered_qps: f32,
    /// Completed requests per second of virtual time.
    pub goodput_qps: f32,
    /// Virtual end-to-end latency over completed requests.
    pub latency: LatencySummary,
    /// Mean distance evaluations per completed request.
    pub mean_dist_comps: f32,
    /// Wall-clock seconds the run took to simulate (not a latency).
    pub wall_seconds: f32,
    /// Per-tenant tallies, ascending tenant id (deterministic order).
    pub tenants: Vec<TenantTally>,
}

/// The serving control plane: a [`ClusterIndex`] behind a `RwLock` (reads
/// share, reconfiguration excludes — each request sees one atomic
/// membership view), an admission gate, and the virtual cost clock.
pub struct ClusterEngine {
    cluster: RwLock<ClusterIndex>,
    admission: AdmissionConfig,
    cost: CostModel,
    epoch: Instant,
}

impl ClusterEngine {
    pub fn new(cluster: ClusterIndex, admission: AdmissionConfig, cost: CostModel) -> Self {
        Self {
            cluster: RwLock::new(cluster),
            admission,
            cost,
            epoch: Instant::now(),
        }
    }

    /// The admission gate configuration.
    pub fn admission(&self) -> AdmissionConfig {
        self.admission
    }

    /// Swaps the admission gate (next run picks it up).
    pub fn set_admission(&mut self, admission: AdmissionConfig) {
        self.admission = admission;
    }

    /// The service-cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Runs `f` under the read lock — a consistent membership snapshot.
    pub fn with_read<R>(&self, f: impl FnOnce(&ClusterIndex) -> R) -> R {
        f(&self.cluster.read())
    }

    /// Runs a reconfiguration under the write lock: no read overlaps it,
    /// so no query ever observes a half-applied membership change.
    pub fn reconfigure<R>(&self, f: impl FnOnce(&mut ClusterIndex) -> R) -> R {
        f(&mut self.cluster.write())
    }

    /// One interactive read (wall-clock arrival time, no admission gate
    /// beyond shard availability).
    pub fn search(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<Neighbor>, RejectReason> {
        let now_us = self.epoch.elapsed().as_nanos() as f64 / 1e3;
        let cluster = self.cluster.read();
        cluster
            .search_at(query, ef, k, scratch, now_us, &self.cost)
            .map(|(res, _, _)| res)
    }

    /// One interactive filtered read (wall-clock arrival, no admission
    /// gate beyond shard availability).
    pub fn search_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<Neighbor>, RejectReason> {
        let now_us = self.epoch.elapsed().as_nanos() as f64 / 1e3;
        let cluster = self.cluster.read();
        cluster
            .search_filtered_at(query, pred, strategy, ef, k, scratch, now_us, &self.cost)
            .map(|(res, _, _)| res)
    }

    /// Replays a fixed arrival schedule against the cluster in virtual
    /// time — the open-loop measurement loop (DESIGN.md §11.4). Per
    /// request: estimate start wait, ask the admission gate, then either
    /// execute (reserving modeled service on the chosen replicas'
    /// timelines) or record a typed rejection. Returns one outcome per
    /// request, in schedule order, plus the run's report.
    ///
    /// Virtual runtime state is reset at the start, so runs are
    /// independent and reproducible; schedules must be sorted by arrival.
    pub fn serve_open_loop(
        &self,
        queries: &Dataset,
        schedule: &ArrivalSchedule,
        ef: usize,
        k: usize,
    ) -> (Vec<RequestOutcome>, ClusterReport) {
        let cluster = self.cluster.read();
        assert_eq!(queries.dim(), cluster.dim(), "query dimension mismatch");
        assert!(!queries.is_empty(), "need queries to serve");
        cluster.reset_virtual_time();
        let mut scratch = SearchScratch::new();
        let mut admission = AdmissionState::new();
        let mut outcomes = Vec::with_capacity(schedule.len());
        let mut latencies_us: Vec<f32> = Vec::new();
        let mut tallies: BTreeMap<u32, TenantTally> = BTreeMap::new();
        let mut report = ClusterReport {
            offered: schedule.len(),
            ..Default::default()
        };
        let mut total_dists = 0usize;
        let mut horizon_us = schedule.span_us();
        let t0 = Instant::now();

        let mut prev_arrival = 0.0f64;
        for request in &schedule.requests {
            assert!(
                request.arrival_us >= prev_arrival,
                "schedule must be sorted by arrival"
            );
            prev_arrival = request.arrival_us;
            let tally = tallies.entry(request.tenant).or_insert(TenantTally {
                tenant: request.tenant,
                ..Default::default()
            });
            tally.offered += 1;

            let est_wait_us = cluster.est_start_wait_us(request.arrival_us);
            let admitted = admission.admit(
                &self.admission,
                request.tenant,
                request.arrival_us,
                est_wait_us,
            );
            let outcome = match admitted {
                Err(reason) => RequestOutcome::Rejected { reason },
                Ok(()) => {
                    report.admitted += 1;
                    tally.admitted += 1;
                    let q = queries.get(request.query as usize % queries.len());
                    match cluster.search_at_opt(
                        q,
                        request.filter,
                        ef,
                        k,
                        &mut scratch,
                        request.arrival_us,
                        &self.cost,
                    ) {
                        Ok((neighbors, stats, completion_us)) => {
                            admission.started(completion_us);
                            total_dists += stats.dist_comps;
                            horizon_us = horizon_us.max(completion_us);
                            let latency_us = (completion_us - request.arrival_us) as f32;
                            latencies_us.push(latency_us);
                            RequestOutcome::Completed {
                                neighbors,
                                latency_us,
                            }
                        }
                        Err(reason) => RequestOutcome::Rejected { reason },
                    }
                }
            };
            if let RequestOutcome::Rejected { reason } = &outcome {
                report.shed += 1;
                tally.shed += 1;
                match reason {
                    RejectReason::QueueFull => report.shed_queue_full += 1,
                    RejectReason::DeadlineExceeded => report.shed_deadline += 1,
                    RejectReason::QuotaExceeded => report.shed_quota += 1,
                    RejectReason::ShardUnavailable => report.shed_unavailable += 1,
                }
            }
            outcomes.push(outcome);
        }

        report.completed = latencies_us.len();
        debug_assert_eq!(report.completed + report.shed, report.offered);
        debug_assert_eq!(report.admitted, report.completed + report.shed_unavailable);
        let span_s = (schedule.span_us() / 1e6).max(1e-9);
        let horizon_s = (horizon_us / 1e6).max(1e-9);
        report.offered_qps = (report.offered as f64 / span_s) as f32;
        report.goodput_qps = (report.completed as f64 / horizon_s) as f32;
        report.latency = LatencySummary::from_samples(&latencies_us);
        report.mean_dist_comps = total_dists as f32 / report.completed.max(1) as f32;
        report.wall_seconds = t0.elapsed().as_secs_f32();
        report.tenants = tallies.into_values().collect();
        (outcomes, report)
    }

    /// A closed-loop-shaped convenience: every query arrives at t=0 from
    /// one tenant. The queue bound binds immediately, making this the
    /// smallest demonstration of bounded admission.
    pub fn serve_batch(
        &self,
        queries: &Dataset,
        ef: usize,
        k: usize,
    ) -> (Vec<RequestOutcome>, ClusterReport) {
        let schedule = ArrivalSchedule::burst(queries.len(), queries.len());
        self.serve_open_loop(queries, &schedule, ef, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::HnswConfig;
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let data = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n + 12, seed);
        data.split_at(n)
    }

    fn graph_builder(part: &Dataset) -> ProximityGraph {
        HnswConfig {
            m: 8,
            ef_construction: 40,
            seed: 5,
        }
        .build(part)
    }

    fn pq(base: &Dataset) -> ProductQuantizer {
        ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            base,
        )
    }

    #[test]
    fn frozen_replicas_share_memory() {
        let (base, _) = setup(160, 31);
        let pq = pq(&base);
        let r1 = ClusterIndex::build_in_memory(
            &pq,
            &base,
            2,
            1,
            LoadBalancePolicy::RoundRobin,
            graph_builder,
        );
        let r4 = ClusterIndex::build_in_memory(
            &pq,
            &base,
            2,
            4,
            LoadBalancePolicy::RoundRobin,
            graph_builder,
        );
        assert_eq!(r1.groups()[0].replica_set().len(), 1);
        assert_eq!(r4.groups()[0].replica_set().len(), 4);
        // All four replicas of a frozen group must point at ONE backend
        // allocation — replication of frozen shards costs pointers.
        let set = r4.groups()[0].replica_set();
        let ptrs: Vec<*const ()> = set
            .replicas()
            .iter()
            .map(|r| match &r.handle {
                ClusterHandle::Frozen(b) => Arc::as_ptr(b) as *const (),
                _ => unreachable!(),
            })
            .collect();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn every_policy_returns_identical_results() {
        let (base, queries) = setup(200, 32);
        let pq = pq(&base);
        let mut scratch = SearchScratch::new();
        let mut reference: Option<Vec<Vec<u32>>> = None;
        for policy in LoadBalancePolicy::all() {
            for replicas in [1, 3] {
                let cluster =
                    ClusterIndex::build_in_memory(&pq, &base, 2, replicas, policy, graph_builder);
                let got: Vec<Vec<u32>> = queries
                    .iter()
                    .map(|q| {
                        let (res, _) = cluster.search(q, 60, 8, &mut scratch).unwrap();
                        res.iter().map(|n| n.id).collect()
                    })
                    .collect();
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(&got, want, "{} x{replicas} diverged", policy.name()),
                }
            }
        }
    }

    #[test]
    fn round_robin_spreads_and_queue_aware_balances() {
        let (base, queries) = setup(160, 33);
        let pq = pq(&base);
        let cluster = ClusterIndex::build_in_memory(
            &pq,
            &base,
            1,
            3,
            LoadBalancePolicy::RoundRobin,
            graph_builder,
        );
        let mut scratch = SearchScratch::new();
        let cost = CostModel::default();
        for (i, q) in queries.iter().enumerate() {
            cluster
                .search_at(q, 40, 5, &mut scratch, i as f64, &cost)
                .unwrap();
        }
        let loads: Vec<usize> = cluster.groups()[0]
            .replica_set()
            .replicas()
            .iter()
            .map(|r| r.outstanding.lock().len())
            .collect();
        let (min, max) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        assert!(
            max - min <= 1,
            "round robin must spread evenly, got {loads:?}"
        );

        // Queue-aware: all traffic at t=0 still spreads, because each
        // reservation grows the chosen replica's backlog.
        cluster.reset_virtual_time();
        let cluster = {
            let mut c = cluster;
            c.set_policy(LoadBalancePolicy::QueueAware);
            c
        };
        for q in queries.iter() {
            cluster
                .search_at(q, 40, 5, &mut scratch, 0.0, &cost)
                .unwrap();
        }
        let loads: Vec<usize> = cluster.groups()[0]
            .replica_set()
            .replicas()
            .iter()
            .map(|r| r.outstanding.lock().len())
            .collect();
        let (min, max) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        assert!(
            max - min <= 2,
            "queue-aware must balance backlog, got {loads:?}"
        );
    }

    #[test]
    fn replica_scaling_increases_goodput_at_fixed_offered_load() {
        let (base, queries) = setup(200, 34);
        let pq = pq(&base);
        let mk_engine = |replicas: usize| {
            let cluster = ClusterIndex::build_in_memory(
                &pq,
                &base,
                2,
                replicas,
                LoadBalancePolicy::QueueAware,
                graph_builder,
            );
            ClusterEngine::new(
                cluster,
                AdmissionConfig {
                    queue_cap: 32,
                    ..Default::default()
                },
                CostModel::default(),
            )
        };
        // Probe the single-replica capacity, then offer 2.5x it.
        let e1 = mk_engine(1);
        let probe = ArrivalSchedule::open_loop(64, 1.0, queries.len(), 1, 40);
        let (_, unloaded) = e1.serve_open_loop(&queries, &probe, 40, 5);
        let capacity_qps = 1e6 / unloaded.latency.mean_us as f64;
        let offered = ArrivalSchedule::open_loop(800, 2.5 * capacity_qps, queries.len(), 1, 41);
        let (_, r1) = e1.serve_open_loop(&queries, &offered, 40, 5);
        let e2 = mk_engine(2);
        let (_, r2) = e2.serve_open_loop(&queries, &offered, 40, 5);
        assert!(
            r1.shed > 0,
            "2.5x overload must shed on one replica: {r1:?}"
        );
        assert!(
            r2.goodput_qps > r1.goodput_qps,
            "2 replicas must outrun 1 at the same offered load: {} vs {}",
            r2.goodput_qps,
            r1.goodput_qps
        );
        assert_eq!(r1.completed + r1.shed, r1.offered);
        assert_eq!(r2.completed + r2.shed, r2.offered);
    }

    #[test]
    fn burst_batch_respects_queue_bound_with_typed_rejections() {
        let (base, queries) = setup(160, 35);
        let pq = pq(&base);
        let cluster = ClusterIndex::build_in_memory(
            &pq,
            &base,
            2,
            1,
            LoadBalancePolicy::RoundRobin,
            graph_builder,
        );
        let engine = ClusterEngine::new(
            cluster,
            AdmissionConfig {
                queue_cap: 4,
                ..Default::default()
            },
            CostModel::default(),
        );
        let (outcomes, report) = engine.serve_batch(&queries, 40, 5);
        assert_eq!(outcomes.len(), queries.len());
        // Everything arrives at t=0: exactly queue_cap requests fit.
        assert_eq!(report.admitted, 4);
        assert_eq!(report.shed, queries.len() - 4);
        assert!(outcomes.iter().skip(4).all(|o| matches!(
            o,
            RequestOutcome::Rejected {
                reason: RejectReason::QueueFull
            }
        )));
    }

    #[test]
    fn streaming_cluster_replicates_writes_and_matches_sharded_reference() {
        let (base, queries) = setup(180, 36);
        let (initial, reserve) = base.split_at(150);
        let pq = pq(&base);
        let cfg = StreamingConfig {
            r: 16,
            l: 40,
            ..Default::default()
        };
        let mut cluster = ClusterIndex::build_streaming(
            &pq,
            &initial,
            2,
            2,
            LoadBalancePolicy::LeastOutstanding,
            cfg,
        );
        let mut reference = super::super::ShardedIndex::build_streaming(&pq, &initial, 2, cfg);
        let mut scratch = SearchScratch::new();
        for v in reserve.iter() {
            let g1 = cluster.insert(v, &mut scratch);
            let g2 = reference.insert(v, &mut scratch);
            assert_eq!(g1, g2);
        }
        for g in (0..180u32).step_by(9) {
            assert_eq!(cluster.remove(g), reference.remove(g));
        }
        assert_eq!(cluster.live_len(), reference.live_len());
        assert!(cluster.consolidate(true) > 0);
        reference.consolidate(true);
        assert_eq!(cluster.live_len(), reference.live_len());
        // Exhaustive ef: exact top-k over identical live sets must agree.
        let ef = 200;
        for q in queries.iter() {
            let (got, _) = cluster.search(q, ef, 10, &mut scratch).unwrap();
            let (want, _) = reference.search(q, ef, 10, &mut scratch);
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                want.iter().map(|n| n.id).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn set_replicas_forks_and_drops_without_changing_results() {
        let (base, queries) = setup(140, 37);
        let pq = pq(&base);
        let mut cluster = ClusterIndex::build_streaming(
            &pq,
            &base,
            2,
            1,
            LoadBalancePolicy::RoundRobin,
            StreamingConfig::default(),
        );
        let mut scratch = SearchScratch::new();
        let before: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| {
                let (res, _) = cluster.search(q, 60, 5, &mut scratch).unwrap();
                res.iter().map(|n| n.id).collect()
            })
            .collect();
        cluster.set_replicas(3);
        assert!(cluster.groups().iter().all(|g| g.replica_set().len() == 3));
        let tripled: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| {
                let (res, _) = cluster.search(q, 60, 5, &mut scratch).unwrap();
                res.iter().map(|n| n.id).collect()
            })
            .collect();
        assert_eq!(before, tripled, "forked replicas must answer identically");
        cluster.set_replicas(1);
        assert!(cluster.groups().iter().all(|g| g.replica_set().len() == 1));
    }

    #[test]
    fn disabled_replicas_take_no_traffic_until_reenabled() {
        let (base, queries) = setup(120, 38);
        let pq = pq(&base);
        let cluster = ClusterIndex::build_in_memory(
            &pq,
            &base,
            1,
            2,
            LoadBalancePolicy::RoundRobin,
            graph_builder,
        );
        let mut scratch = SearchScratch::new();
        let cost = CostModel::default();
        cluster.groups()[0].replica_set().replicas()[0].set_enabled(false);
        for (i, q) in queries.iter().enumerate() {
            cluster
                .search_at(q, 30, 5, &mut scratch, i as f64, &cost)
                .unwrap();
        }
        let set = cluster.groups()[0].replica_set();
        assert_eq!(set.replicas()[0].outstanding.lock().len(), 0);
        assert_eq!(set.replicas()[1].outstanding.lock().len(), queries.len());
        set.replicas()[0].set_enabled(true);
        cluster.reset_virtual_time();
        for (i, q) in queries.iter().enumerate() {
            cluster
                .search_at(q, 30, 5, &mut scratch, i as f64, &cost)
                .unwrap();
        }
        assert!(!set.replicas()[0].outstanding.lock().is_empty());
    }

    #[test]
    #[should_panic(expected = "must start empty")]
    fn add_shard_rejects_prepopulated_backends() {
        let (base, _) = setup(80, 39);
        let pq = pq(&base);
        let mut cluster = ClusterIndex::build_streaming(
            &pq,
            &base,
            2,
            1,
            LoadBalancePolicy::RoundRobin,
            StreamingConfig::default(),
        );
        let mut scratch = SearchScratch::new();
        let full = StreamingIndex::build(pq.clone(), &base, StreamingConfig::default());
        cluster.add_shard(Box::new(full), &mut scratch);
    }

    #[test]
    fn add_and_remove_shard_preserve_membership_rule() {
        let (base, _) = setup(120, 42);
        let pq = pq(&base);
        let mut cluster = ClusterIndex::build_streaming(
            &pq,
            &base,
            2,
            2,
            LoadBalancePolicy::RoundRobin,
            StreamingConfig::default(),
        );
        let mut scratch = SearchScratch::new();
        let gi = cluster.add_shard(
            Box::new(StreamingIndex::new(pq.clone(), StreamingConfig::default())),
            &mut scratch,
        );
        assert_eq!(gi, 2);
        assert_eq!(cluster.n_groups(), 3);
        assert_eq!(cluster.live_len(), 120);
        // Every live point now satisfies g % 3 == its group index, and the
        // new group inherited the cluster's replication factor.
        for (idx, group) in cluster.groups().iter().enumerate() {
            assert_eq!(group.replica_set().len(), 2);
            assert!(!group.global_ids().is_empty());
            for &g in group.global_ids() {
                assert_eq!(g as usize % 3, idx, "global {g} misplaced");
            }
        }
        cluster.remove_shard(1, &mut scratch);
        assert_eq!(cluster.n_groups(), 2);
        assert_eq!(cluster.live_len(), 120);
        for (idx, group) in cluster.groups().iter().enumerate() {
            for &g in group.global_ids() {
                assert_eq!(g as usize % 2, idx, "global {g} misplaced after remove");
            }
        }
    }

    #[test]
    fn filtered_cluster_search_matches_sharded_reference_per_predicate() {
        let cfg = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        };
        let (all, labels) = cfg.generate_labeled(212, 45, 4);
        let (base, queries) = all.split_at(200);
        let base_labels = labels.subset(&(0..200).collect::<Vec<_>>());
        let pq = pq(&base);
        let cluster = ClusterIndex::build_in_memory_labeled(
            &pq,
            &base,
            &base_labels,
            2,
            2,
            LoadBalancePolicy::QueueAware,
            graph_builder,
        );
        let reference = super::super::ShardedIndex::build_in_memory_labeled(
            &pq,
            &base,
            &base_labels,
            2,
            graph_builder,
        );
        let mut scratch = SearchScratch::new();
        // Exhaustive ef: the §7.3 exact-merge contract must hold per
        // predicate, replica choice and strategy notwithstanding.
        for strategy in [
            FilterStrategy::DuringTraversal,
            FilterStrategy::PostFilter { inflation: 4 },
        ] {
            for (qi, q) in queries.iter().enumerate() {
                let pred = LabelPredicate::single(qi % 4);
                let (got, _) = cluster
                    .search_filtered(q, pred, strategy, 200, 10, &mut scratch)
                    .unwrap();
                let (want, _) = reference.search_filtered(q, pred, strategy, 200, 10, &mut scratch);
                assert_eq!(
                    got.iter().map(|n| n.id).collect::<Vec<_>>(),
                    want.iter().map(|n| n.id).collect::<Vec<_>>(),
                    "query {qi} diverged under {}",
                    strategy.name(),
                );
                assert!(got.iter().all(|n| base_labels.matches(n.id as usize, pred)));
            }
        }
    }

    #[test]
    fn zipf_filtered_open_loop_returns_only_matching_ids() {
        let cfg = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        };
        let (all, labels) = cfg.generate_labeled(190, 46, 4);
        let (base, queries) = all.split_at(180);
        let base_labels = labels.subset(&(0..180).collect::<Vec<_>>());
        let pq = pq(&base);
        let mk = || {
            let cluster = ClusterIndex::build_in_memory_labeled(
                &pq,
                &base,
                &base_labels,
                2,
                2,
                LoadBalancePolicy::QueueAware,
                graph_builder,
            );
            ClusterEngine::new(cluster, AdmissionConfig::default(), CostModel::default())
        };
        let filters = [
            FilteredQuery {
                pred: LabelPredicate::single(0),
                strategy: FilterStrategy::DuringTraversal,
            },
            FilteredQuery {
                pred: LabelPredicate::single(1),
                strategy: FilterStrategy::PostFilter { inflation: 4 },
            },
        ];
        let schedule = ArrivalSchedule::open_loop_zipf(300, 5_000.0, queries.len(), 2, 47, 1.1)
            .with_filters(&filters);
        let eng = mk();
        let (outcomes, report) = eng.serve_open_loop(&queries, &schedule, 40, 5);
        assert!(report.completed > 0, "healthy cluster must complete work");
        for (i, outcome) in outcomes.iter().enumerate() {
            let Some(neighbors) = outcome.neighbors() else {
                continue;
            };
            let pred = filters[i % filters.len()].pred;
            assert!(
                neighbors
                    .iter()
                    .all(|n| base_labels.matches(n.id as usize, pred)),
                "request {i} returned a non-matching id"
            );
            assert!(!neighbors.is_empty());
        }
        // And the run replays bit-identically on a fresh engine.
        let (again, _) = mk().serve_open_loop(&queries, &schedule, 40, 5);
        assert_eq!(outcomes, again);
    }

    #[test]
    fn labels_survive_reconfiguration_moves() {
        let cfg = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        };
        let (all, labels) = cfg.generate_labeled(130, 48, 4);
        let (base, queries) = all.split_at(120);
        let base_labels = labels.subset(&(0..120).collect::<Vec<_>>());
        let pq = pq(&base);
        let mut cluster = ClusterIndex::build_streaming_labeled(
            &pq,
            &base,
            &base_labels,
            2,
            1,
            LoadBalancePolicy::RoundRobin,
            StreamingConfig::default(),
        );
        let mut scratch = SearchScratch::new();
        // Force moves: add a third shard, then drop the middle one.
        cluster.add_shard(
            Box::new(StreamingIndex::new(pq.clone(), StreamingConfig::default())),
            &mut scratch,
        );
        cluster.remove_shard(1, &mut scratch);
        assert_eq!(cluster.live_len(), 120);
        // Per-group mask census must match the original corpus: moves
        // carried each point's mask to its new home.
        let mut census: Vec<u32> = Vec::new();
        for group in cluster.groups() {
            let backend = group.replica_set().replicas()[0]
                .handle
                .as_mutable()
                .unwrap();
            for (local, &g) in group.global_ids().iter().enumerate() {
                assert_eq!(
                    backend.label_local(local as u32),
                    base_labels.get(g as usize),
                    "global {g} lost its mask in a move"
                );
                census.push(g);
            }
        }
        census.sort_unstable();
        assert_eq!(census, (0..120).collect::<Vec<_>>());
        // Filtered reads still agree with a never-reconfigured reference.
        let reference = super::super::ShardedIndex::build_in_memory_labeled(
            &pq,
            &base,
            &base_labels,
            2,
            graph_builder,
        );
        for q in queries.iter() {
            let pred = LabelPredicate::single(0);
            let (got, _) = cluster
                .search_filtered(
                    q,
                    pred,
                    FilterStrategy::DuringTraversal,
                    150,
                    8,
                    &mut scratch,
                )
                .unwrap();
            let (want, _) = reference.search_filtered(
                q,
                pred,
                FilterStrategy::DuringTraversal,
                150,
                8,
                &mut scratch,
            );
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                want.iter().map(|n| n.id).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn open_loop_run_is_reproducible() {
        let (base, queries) = setup(140, 43);
        let pq = pq(&base);
        let mk = || {
            let cluster = ClusterIndex::build_in_memory(
                &pq,
                &base,
                2,
                2,
                LoadBalancePolicy::QueueAware,
                graph_builder,
            );
            ClusterEngine::new(
                cluster,
                AdmissionConfig {
                    queue_cap: 8,
                    deadline_us: Some(10_000.0),
                    ..Default::default()
                },
                CostModel::default(),
            )
        };
        let schedule = ArrivalSchedule::open_loop(400, 20_000.0, queries.len(), 3, 44);
        let (o1, r1) = mk().serve_open_loop(&queries, &schedule, 40, 5);
        let (o2, r2) = mk().serve_open_loop(&queries, &schedule, 40, 5);
        assert_eq!(o1, o2, "same schedule, same outcomes, bit for bit");
        assert_eq!(r1.latency, r2.latency);
        assert_eq!(r1.tenants, r2.tenants);
        // And a third run on the SAME engine (reset_virtual_time) agrees.
        let eng = mk();
        let (o3, _) = eng.serve_open_loop(&queries, &schedule, 40, 5);
        let (o4, _) = eng.serve_open_loop(&queries, &schedule, 40, 5);
        assert_eq!(o3, o4, "virtual state must reset between runs");
    }
}
