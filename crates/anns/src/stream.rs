//! Streaming mutable index (DESIGN.md §8): the FreshDiskANN-style live
//! lifecycle over the Vamana graph + PQ compressor.
//!
//! * **insert** (§8.1) — greedy Vamana insert: beam-search the new vector,
//!   RobustPrune the expanded set into its out-neighbors, patch back-edges
//!   under the degree bound; the code store appends one code.
//! * **delete** (§8.2) — a tombstone bitmap. Search *traverses* tombstoned
//!   vertices but never returns them, so graph connectivity survives
//!   arbitrarily many deletes with zero graph edits.
//! * **consolidate** (§8.3) — once the tombstone fraction crosses a
//!   threshold, deleted vertices are reclaimed: their neighborhoods are
//!   re-linked, ids compacted, the entry re-centred, and reachability
//!   repaired capacity-aware.
//!
//! Full-precision vectors are retained (FreshDiskANN does the same): the
//! graph-patching distance computations need them, and codes alone cannot
//! re-derive them. Queries still rank purely by ADC over the compact codes,
//! so search behaviour matches the frozen in-memory scenario.

use rpq_data::{labels::MAX_VOCAB, Dataset, LabelPredicate, Labels};
use rpq_graph::{
    beam_search_filtered, DynamicGraph, Neighbor, SearchScratch, SearchStats, VamanaConfig,
    VertexFilter,
};
use rpq_quant::{CompactCodes, SoaCodes, VectorCompressor};

use crate::filter::FilterStrategy;

/// Parameters of the streaming lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct StreamingConfig {
    /// Maximum out-degree R of the live graph.
    pub r: usize,
    /// Beam width L for insert-time searches (and the initial build).
    pub l: usize,
    /// Pruning slack α.
    pub alpha: f32,
    /// Tombstone fraction above which [`StreamingIndex::consolidate`]
    /// actually runs (unless forced).
    pub reclaim_threshold: f32,
    pub seed: u64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            r: 32,
            l: 64,
            alpha: 1.2,
            reclaim_threshold: 0.2,
            seed: 0,
        }
    }
}

impl StreamingConfig {
    fn vamana(&self) -> VamanaConfig {
        VamanaConfig {
            r: self.r,
            l: self.l,
            alpha: self.alpha,
            batch: 512,
            seed: self.seed,
        }
    }
}

/// What a consolidation pass did.
#[derive(Clone, Debug)]
pub struct ConsolidateReport {
    /// Tombstoned vertices reclaimed (removed from the graph and stores).
    pub reclaimed: usize,
    /// Old local ids of the survivors, ascending; new local id `i` was
    /// `survivors[i]` before the pass.
    pub survivors: Vec<u32>,
}

/// A mutable PQ-integrated index over a [`DynamicGraph`].
///
/// Ids are positional and dense over everything currently resident —
/// including tombstoned points, which keep their slot (and their graph
/// vertex) until a consolidation pass compacts them away. After
/// consolidation all local ids shift; callers holding external id maps
/// remap them through [`ConsolidateReport::survivors`] (the sharded layer
/// does exactly this with its global-id maps).
///
/// # Example
///
/// ```
/// use rpq_anns::stream::{StreamingConfig, StreamingIndex};
/// use rpq_data::synth::{SynthConfig, ValueTransform};
/// use rpq_graph::SearchScratch;
/// use rpq_quant::{PqConfig, ProductQuantizer};
///
/// let data = SynthConfig {
///     dim: 8,
///     intrinsic_dim: 4,
///     clusters: 2,
///     cluster_std: 0.5,
///     noise_std: 0.05,
///     transform: ValueTransform::Identity,
/// }
/// .generate(140, 0);
/// let (base, rest) = data.split_at(120);
/// let pq = ProductQuantizer::train(
///     &PqConfig { m: 4, k: 16, ..Default::default() },
///     &base,
/// );
/// let mut index = StreamingIndex::build(pq, &base, StreamingConfig::default());
/// let mut scratch = SearchScratch::new();
/// let id = index.insert(rest.get(0), &mut scratch);
/// index.remove(3);
/// let (top, _) = index.search(rest.get(1), 32, 5, &mut scratch);
/// assert!(top.iter().all(|n| n.id != 3), "tombstoned point returned");
/// assert_eq!(id, 120);
/// ```
#[derive(Clone)]
pub struct StreamingIndex<C: VectorCompressor> {
    compressor: C,
    graph: DynamicGraph,
    vectors: Dataset,
    codes: CompactCodes,
    /// Chunk-major mirror of `codes`, kept in lock-step by
    /// [`StreamingIndex::insert`] and [`StreamingIndex::consolidate`] so
    /// queries can use the batched ADC kernels (DESIGN.md §9). Per-chunk
    /// rows make appends O(M) amortized — mutability costs nothing here.
    soa: SoaCodes,
    tombstones: Vec<bool>,
    /// Per-point label sets, kept in lock-step with the code stores through
    /// insert and consolidation (DESIGN.md §12). Unlabeled points carry
    /// mask 0 and match no predicate.
    labels: Labels,
    live: usize,
    cfg: StreamingConfig,
}

impl<C: VectorCompressor> StreamingIndex<C> {
    /// An empty index; the corpus arrives entirely through
    /// [`StreamingIndex::insert`]. The compressor must already be trained.
    pub fn new(compressor: C, cfg: StreamingConfig) -> Self {
        // Encoding an empty dataset yields an empty code store with the
        // compressor's chunk count — the one thing the trait doesn't expose
        // directly.
        let codes = compressor.encode_dataset(&Dataset::new(compressor.dim()));
        let soa = SoaCodes::empty(codes.m());
        Self {
            vectors: Dataset::new(compressor.dim()),
            codes,
            soa,
            tombstones: Vec::new(),
            labels: Labels::new(MAX_VOCAB),
            live: 0,
            graph: DynamicGraph::new(),
            compressor,
            cfg,
        }
    }

    /// Batch-builds over an initial corpus (the efficient path when the
    /// starting set is known), then streams from there. The graph is the
    /// standard Vamana build plus a reachability repair, so exhaustive
    /// searches see every live point.
    pub fn build(compressor: C, data: &Dataset, cfg: StreamingConfig) -> Self {
        let labels = Labels::from_masks(MAX_VOCAB, vec![0; data.len()]);
        Self::build_labeled(compressor, data, labels, cfg)
    }

    /// [`StreamingIndex::build`] with per-point labels for filtered search
    /// (DESIGN.md §12). `labels` must cover `data` one-to-one.
    pub fn build_labeled(
        compressor: C,
        data: &Dataset,
        labels: Labels,
        cfg: StreamingConfig,
    ) -> Self {
        assert_eq!(compressor.dim(), data.dim(), "compressor dim mismatch");
        assert_eq!(labels.len(), data.len(), "labels/dataset size mismatch");
        let codes = compressor.encode_dataset(data);
        let soa = SoaCodes::from_compact(&codes);
        let mut graph = DynamicGraph::from_graph(&cfg.vamana().build(data));
        cfg.vamana().repair_reachability(&mut graph, data);
        Self {
            vectors: data.clone(),
            codes,
            soa,
            tombstones: vec![false; data.len()],
            labels,
            live: data.len(),
            graph,
            compressor,
            cfg,
        }
    }

    /// Inserts one vector and returns its local id (always the previous
    /// [`StreamingIndex::len`]). The scratch is the same one
    /// [`StreamingIndex::search`] uses and may be sized for any epoch.
    pub fn insert(&mut self, v: &[f32], scratch: &mut SearchScratch) -> u32 {
        self.insert_labeled(v, 0, scratch)
    }

    /// [`StreamingIndex::insert`] with a label bitmask; the labels store
    /// appends in lock-step with the vectors, codes, SoA mirror, and
    /// tombstone bitmap. Mask 0 means unlabeled (matches no predicate).
    pub fn insert_labeled(&mut self, v: &[f32], mask: u32, scratch: &mut SearchScratch) -> u32 {
        let p = self.vectors.len() as u32;
        self.vectors.push(v);
        let mut code = vec![0u8; self.codes.m()];
        self.compressor.encode_one(v, &mut code);
        self.codes.push(&code);
        self.soa.push(&code);
        self.tombstones.push(false);
        self.labels.push(mask);
        self.cfg
            .vamana()
            .insert_point(&mut self.graph, &self.vectors, p, scratch);
        self.live += 1;
        p
    }

    /// Tombstones a point: O(1), no graph edits. Returns `false` when the
    /// id is out of range or already tombstoned. The point stops appearing
    /// in results immediately but keeps carrying search traffic until a
    /// consolidation pass reclaims it (DESIGN.md §8.2).
    pub fn remove(&mut self, id: u32) -> bool {
        match self.tombstones.get_mut(id as usize) {
            Some(slot) if !*slot => {
                *slot = true;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// ADC beam search over the live points: tombstoned vertices are
    /// traversed but filtered from the results, so every returned id is
    /// live. Ids are local.
    pub fn search(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.search_with_filter(
            query,
            ef,
            k,
            scratch,
            VertexFilter::tombstones(&self.tombstones),
        )
    }

    /// Beam search restricted to live points satisfying `pred`
    /// (DESIGN.md §12). The tombstone filter always composes in — a
    /// returned id is live *and* matching regardless of `strategy`.
    pub fn search_filtered(
        &self,
        query: &[f32],
        pred: LabelPredicate,
        strategy: FilterStrategy,
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        match strategy {
            FilterStrategy::DuringTraversal => {
                let accept = self.labels.accept_fn(pred);
                let filter = VertexFilter::tombstones(&self.tombstones).and_predicate(&accept);
                self.search_with_filter(query, ef, k, scratch, filter)
            }
            FilterStrategy::PostFilter { .. } => {
                let big_ef = strategy.inflated_ef(ef);
                let (mut res, stats) = self.search(query, big_ef, big_ef, scratch);
                res.retain(|n| self.labels.matches(n.id as usize, pred));
                res.truncate(k);
                (res, stats)
            }
        }
    }

    fn search_with_filter(
        &self,
        query: &[f32],
        ef: usize,
        k: usize,
        scratch: &mut SearchScratch,
        filter: VertexFilter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        // Batched SoA estimator when available — bit-identical to the
        // scalar path by contract, so the vertex filter and every returned
        // distance are unaffected by which path ran.
        if let Some(est) = self.compressor.batch_estimator(&self.soa, query) {
            return beam_search_filtered(&self.graph, &est, ef, k, scratch, filter);
        }
        let est = self.compressor.estimator(&self.codes, query);
        beam_search_filtered(&self.graph, &est, ef, k, scratch, filter)
    }

    /// Reclaims tombstones if their fraction has reached
    /// `cfg.reclaim_threshold` (or unconditionally with `force`), returning
    /// what happened — `None` means the pass didn't run (below threshold,
    /// or nothing to reclaim). Afterwards local ids are compacted dense
    /// over the survivors; see [`ConsolidateReport::survivors`] for the
    /// remap.
    pub fn consolidate(&mut self, force: bool) -> Option<ConsolidateReport> {
        let dead = self.len() - self.live;
        if dead == 0 || (!force && self.tombstone_fraction() < self.cfg.reclaim_threshold) {
            return None;
        }
        let survivors =
            self.cfg
                .vamana()
                .consolidate(&mut self.graph, &self.vectors, &self.tombstones);
        let idx: Vec<usize> = survivors.iter().map(|&v| v as usize).collect();
        self.vectors = self.vectors.subset(&idx);
        self.codes = self.codes.compact(&survivors);
        self.soa = self.soa.compact(&survivors);
        self.labels = self.labels.compact(&survivors);
        self.tombstones = vec![false; survivors.len()];
        debug_assert_eq!(self.live, survivors.len());
        Some(ConsolidateReport {
            reclaimed: dead,
            survivors,
        })
    }

    /// Resident points, including tombstoned ones (the local id space).
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Points that are resident and not tombstoned.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Fraction of resident points that are tombstoned.
    pub fn tombstone_fraction(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            (self.len() - self.live) as f32 / self.len() as f32
        }
    }

    /// Whether `id` is currently tombstoned.
    pub fn is_tombstoned(&self, id: u32) -> bool {
        self.tombstones.get(id as usize).copied().unwrap_or(false)
    }

    /// The live graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The compact codes (one per resident point, tombstoned included).
    pub fn codes(&self) -> &CompactCodes {
        &self.codes
    }

    /// The retained full-precision vectors.
    pub fn vectors(&self) -> &Dataset {
        &self.vectors
    }

    /// The per-point label sets (mask 0 for unlabeled points).
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// The compressor.
    pub fn compressor(&self) -> &C {
        &self.compressor
    }

    /// The lifecycle parameters.
    pub fn config(&self) -> &StreamingConfig {
        &self.cfg
    }

    /// Resident bytes: graph + codes + model + retained vectors + bitmap.
    /// The vectors dominate — the price of mutability (DESIGN.md §8).
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self.codes.memory_bytes()
            + self.soa.memory_bytes()
            + self.compressor.model_bytes()
            + self.vectors.memory_bytes()
            + self.labels.memory_bytes()
            + self.tombstones.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_quant::{PqConfig, ProductQuantizer};

    fn toy(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 6,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    fn pq_for(data: &Dataset, seed: u64) -> ProductQuantizer {
        ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 32,
                seed,
                ..Default::default()
            },
            data,
        )
    }

    #[test]
    fn grows_from_empty() {
        let data = toy(150, 1);
        let pq = pq_for(&data, 1);
        let mut index = StreamingIndex::new(pq, StreamingConfig::default());
        assert!(index.is_empty());
        let mut scratch = SearchScratch::new();
        for i in 0..data.len() {
            assert_eq!(index.insert(data.get(i), &mut scratch), i as u32);
        }
        assert_eq!(index.len(), 150);
        assert_eq!(index.live_len(), 150);
        let (res, stats) = index.search(data.get(7), 40, 5, &mut scratch);
        assert_eq!(res.len(), 5);
        assert!(stats.hops > 0);
    }

    #[test]
    fn tombstoned_points_never_returned() {
        let data = toy(200, 2);
        let pq = pq_for(&data, 2);
        let mut index = StreamingIndex::build(pq, &data, StreamingConfig::default());
        let mut scratch = SearchScratch::new();
        for id in (0..200u32).step_by(3) {
            assert!(index.remove(id));
            assert!(!index.remove(id), "double remove must be a no-op");
        }
        assert_eq!(index.live_len(), 200 - 67);
        // Exhaustive beam: every live point is reachable, every tombstone
        // filtered.
        for qi in [0usize, 50, 199] {
            let (res, _) = index.search(data.get(qi), 200, 10, &mut scratch);
            assert_eq!(res.len(), 10);
            assert!(res.iter().all(|n| !index.is_tombstoned(n.id)));
        }
    }

    #[test]
    fn consolidate_respects_threshold_and_compacts() {
        let data = toy(160, 3);
        let pq = pq_for(&data, 3);
        let cfg = StreamingConfig {
            reclaim_threshold: 0.25,
            ..Default::default()
        };
        let mut index = StreamingIndex::build(pq, &data, cfg);
        for id in 0..20u32 {
            index.remove(id);
        }
        // 20/160 = 12.5% < 25%: below threshold, nothing happens.
        assert!(index.consolidate(false).is_none());
        assert_eq!(index.len(), 160);
        // Forced: reclaims regardless.
        let report = index.consolidate(true).expect("forced pass must run");
        assert_eq!(report.reclaimed, 20);
        assert_eq!(report.survivors, (20..160).collect::<Vec<u32>>());
        assert_eq!(index.len(), 140);
        assert_eq!(index.live_len(), 140);
        assert_eq!(index.tombstone_fraction(), 0.0);
        assert_eq!(index.graph().reachable_from_entry(), 140);
        // Nothing left to reclaim.
        assert!(index.consolidate(true).is_none());
    }

    #[test]
    fn recall_survives_churn_with_consolidation() {
        let data = toy(300, 4);
        let (base, reserve) = data.split_at(220);
        let pq = pq_for(&data, 4);
        let mut index = StreamingIndex::build(pq, &base, StreamingConfig::default());
        let mut scratch = SearchScratch::new();
        // Delete every 4th original point, insert the reserve.
        for id in (0..220u32).step_by(4) {
            index.remove(id);
        }
        for v in reserve.iter() {
            index.insert(v, &mut scratch);
        }
        index.consolidate(true).expect("55/300 > default threshold");
        assert_eq!(index.live_len(), index.len());

        // Ground truth over exactly the surviving vectors.
        let live = index.vectors().clone();
        let queries = live.subset(&[3usize, 77, 150, 201]);
        let gt = brute_force_knn(&live, &queries, 5);
        let mut results = Vec::new();
        for q in queries.iter() {
            let (res, _) = index.search(q, 80, 5, &mut scratch);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        // ADC-only ranking: same floor the frozen in-memory tests use.
        assert!(recall > 0.6, "post-churn recall too low: {recall}");
    }

    #[test]
    fn labels_stay_in_lock_step_through_churn_and_consolidation() {
        let data = toy(200, 6);
        let (base, reserve) = data.split_at(150);
        let pq = pq_for(&data, 6);
        // Even local ids label 0, odd label 1.
        let base_labels = Labels::from_masks(2, (0..base.len()).map(|i| 1 << (i % 2)).collect());
        let mut index =
            StreamingIndex::build_labeled(pq, &base, base_labels, StreamingConfig::default());
        let mut scratch = SearchScratch::new();
        // Remove a swath, insert the reserve alternating labels, reclaim.
        for id in (0..150u32).step_by(3) {
            index.remove(id);
        }
        for (i, v) in reserve.iter().enumerate() {
            index.insert_labeled(v, 1 << (i % 2), &mut scratch);
        }
        index.consolidate(true).expect("over threshold");
        assert_eq!(
            index.labels().len(),
            index.len(),
            "labels must track the compacted id space"
        );
        // Every filtered result is live and matches, for both predicates
        // and both strategies.
        for label in [0usize, 1] {
            let pred = LabelPredicate::single(label);
            for strategy in [
                FilterStrategy::DuringTraversal,
                FilterStrategy::PostFilter { inflation: 4 },
            ] {
                let (res, _) =
                    index.search_filtered(data.get(10), pred, strategy, 60, 10, &mut scratch);
                assert!(!res.is_empty());
                for n in &res {
                    assert!(!index.is_tombstoned(n.id));
                    assert!(
                        index.labels().matches(n.id as usize, pred),
                        "{strategy:?} returned id {} without label {label}",
                        n.id
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_fully_tombstoned_searches() {
        let data = toy(30, 5);
        let pq = pq_for(&data, 5);
        let mut index = StreamingIndex::new(pq, StreamingConfig::default());
        let mut scratch = SearchScratch::new();
        let (res, _) = index.search(data.get(0), 10, 3, &mut scratch);
        assert!(res.is_empty(), "empty index must return nothing");
        for i in 0..5 {
            index.insert(data.get(i), &mut scratch);
        }
        for id in 0..5u32 {
            index.remove(id);
        }
        let (res, _) = index.search(data.get(0), 10, 3, &mut scratch);
        assert!(res.is_empty(), "all-tombstoned index must return nothing");
        // Reclaim everything, then keep living.
        let report = index.consolidate(true).unwrap();
        assert_eq!(report.reclaimed, 5);
        assert!(index.is_empty());
        let id = index.insert(data.get(9), &mut scratch);
        assert_eq!(id, 0);
        let (res, _) = index.search(data.get(9), 10, 1, &mut scratch);
        assert_eq!(res[0].id, 0);
    }
}
