//! Criterion micro-benchmarks for the hot paths behind each paper artifact.
//!
//! Mapping to the evaluation (see DESIGN.md §5):
//! * `adc_lookup` — the per-distance cost dominating in-memory QPS
//!   (Figures 6, 7, 10, 12),
//! * `adc_batched` / `adc_packed4` — the batched SoA and 4-bit packed
//!   kernels over the same codes (DESIGN.md §9; the `hotpath` experiment
//!   is the full sweep),
//! * `sdc_vs_adc` — the ranking-term ablation's two comparators (Table 2),
//! * `beam_search_memory` — one in-memory query (Figures 6–7),
//! * `disk_search` — one hybrid query incl. store reads (Figures 5, 11),
//! * `kmeans_subspace` — codebook training cost (Table 4, Figure 9 grid),
//! * `rotation_expm` / `rotation_cayley` — the two rotation
//!   parameterisations, fwd + backward (DESIGN.md ablation, Table 4),
//! * `rpq_training_step` — one joint-loss optimisation step (Table 4),
//! * `encode_dataset` — (re-)encoding cost paid at every routing-feature
//!   refresh (Table 4) and index build.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use rpq_anns::{DiskIndex, DiskIndexConfig, InMemoryIndex};
use rpq_autodiff::Tape;
use rpq_core::{
    loss::{combine, neighborhood_loss, routing_loss, LossWeighting},
    sample_routing_features, sample_triplets, DiffQuantizer, DiffQuantizerConfig,
    RoutingSamplerConfig, TripletSamplerConfig,
};
use rpq_data::synth::DatasetKind;
use rpq_graph::{beam_search, HnswConfig, SearchScratch, VamanaConfig};
use rpq_linalg::{cayley, cayley_vjp, expm, expm_vjp, Matrix};
use rpq_quant::{kmeans, KMeansConfig, PqConfig, ProductQuantizer, SdcEstimator, VectorCompressor};

fn bench_all(c: &mut Criterion) {
    let (base, queries) = DatasetKind::Sift.generate(2000, 8, 7);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 64,
            ..Default::default()
        },
        &base,
    );
    let codes = pq.encode_dataset(&base);
    let q = queries.get(0).to_vec();

    // adc_lookup: table build + 1k distance estimates.
    c.bench_function("adc_lookup_1k", |b| {
        let lut = pq.lookup_table(&q);
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1000 {
                acc += lut.distance(codes.code(i));
            }
            std::hint::black_box(acc)
        })
    });

    // adc_batched: the same 1k distances through the SoA block kernel
    // (bit-identical to adc_lookup_1k by contract, DESIGN.md §9).
    let soa = rpq_quant::SoaCodes::from_compact(&codes);
    let ids: Vec<u32> = (0..1000).collect();
    c.bench_function("adc_batched_1k", |b| {
        use rpq_graph::DistanceEstimator;
        let est = rpq_quant::BatchAdcEstimator::new(pq.lookup_table(&q), &soa);
        let mut out = vec![0.0f32; ids.len()];
        b.iter(|| {
            est.distance_batch(&ids, &mut out);
            std::hint::black_box(out[0])
        })
    });

    // adc_packed4: the 4-bit kernel needs nibble codes, so it gets its own
    // K=16 quantizer over the same corpus.
    let pq4 = ProductQuantizer::train(
        &PqConfig {
            m: 8,
            k: 16,
            ..Default::default()
        },
        &base,
    );
    let codes4 = pq4.encode_dataset(&base);
    let packed4 = rpq_quant::PackedCodes4::from_compact(&codes4);
    c.bench_function("adc_packed4_1k", |b| {
        use rpq_graph::DistanceEstimator;
        let est = rpq_quant::Packed4AdcEstimator::new(
            rpq_quant::QuantizedLut::new(&pq4.lookup_table(&q)),
            &packed4,
        );
        let mut out = vec![0.0f32; ids.len()];
        b.iter(|| {
            est.distance_batch(&ids, &mut out);
            std::hint::black_box(out[0])
        })
    });

    // sdc_vs_adc (Table 2 comparators).
    c.bench_function("sdc_lookup_1k", |b| {
        let est = SdcEstimator::new(pq.codebook(), &codes, &q);
        use rpq_graph::DistanceEstimator;
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1000u32 {
                acc += est.distance(i);
            }
            std::hint::black_box(acc)
        })
    });

    // beam_search_memory (Figures 6-7).
    let hnsw = HnswConfig {
        m: 8,
        ef_construction: 60,
        seed: 0,
    }
    .build(&base);
    let mem_index = InMemoryIndex::build(pq.clone(), &base, hnsw);
    c.bench_function("beam_search_memory_ef40", |b| {
        let mut scratch = SearchScratch::new();
        b.iter(|| std::hint::black_box(mem_index.search(&q, 40, 10, &mut scratch)))
    });

    // disk_search (Figure 5).
    let vamana = Arc::new(
        VamanaConfig {
            r: 16,
            l: 32,
            ..Default::default()
        }
        .build(&base),
    );
    let store = std::env::temp_dir().join("rpq-criterion.store");
    let disk_index =
        DiskIndex::build(pq.clone(), &base, &vamana, DiskIndexConfig::new(&store)).unwrap();
    c.bench_function("disk_search_ef40", |b| {
        b.iter(|| std::hint::black_box(disk_index.search(&q, 40, 10)))
    });

    // kmeans_subspace (Table 4 / Figure 9 grid).
    c.bench_function("kmeans_k64_d16_n2000", |b| {
        let sub: Vec<f32> = base.iter().flat_map(|v| v[0..16].to_vec()).collect();
        b.iter(|| {
            std::hint::black_box(kmeans(
                &sub,
                16,
                KMeansConfig {
                    k: 64,
                    max_iters: 3,
                    ..Default::default()
                },
            ))
        })
    });

    // rotation_expm vs rotation_cayley (DESIGN.md ablation: the two
    // parameterisations of the learned orthonormal rotation, D=64).
    c.bench_function("rotation_expm_fwd_bwd_d64", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Matrix::random_uniform(64, 64, 0.5, &mut rng);
        let a = w.sub(&w.transpose());
        let g = Matrix::random_uniform(64, 64, 1.0, &mut rng);
        b.iter(|| {
            let r = expm(&a);
            let ga = expm_vjp(&a, &g);
            std::hint::black_box((r, ga))
        })
    });
    c.bench_function("rotation_cayley_fwd_bwd_d64", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Matrix::random_uniform(64, 64, 0.5, &mut rng);
        let a = w.sub(&w.transpose());
        let g = Matrix::random_uniform(64, 64, 1.0, &mut rng);
        b.iter(|| {
            let r = cayley(&a);
            let ga = cayley_vjp(&a, &g);
            std::hint::black_box((r, ga))
        })
    });

    // rpq_training_step (one joint step at small scale, Table 4).
    let graph = vamana;
    let dq = DiffQuantizer::init(
        DiffQuantizerConfig {
            m: 8,
            k: 32,
            ..Default::default()
        },
        &base,
    );
    let triplets = sample_triplets(&graph, &base, &TripletSamplerConfig::default(), 16);
    let exported = dq.export_pq(0.0);
    let ecodes = exported.encode_dataset(&base);
    let decisions = sample_routing_features(
        &graph,
        &base,
        &|qv| exported.estimator(&ecodes, qv),
        &RoutingSamplerConfig {
            n_queries: 4,
            h: 8,
            ..Default::default()
        },
    );
    c.bench_function("rpq_training_step", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter_batched(
            Tape::new,
            |mut t| {
                let vars = dq.begin(&mut t);
                let ln =
                    neighborhood_loss(&mut t, &dq, &vars, &base, &triplets, 1.0, 0.5, &mut rng);
                let lr = if decisions.is_empty() {
                    None
                } else {
                    Some(routing_loss(
                        &mut t,
                        &dq,
                        &vars,
                        &base,
                        &decisions[..decisions.len().min(4)],
                        1.0,
                        0.5,
                        &mut rng,
                    ))
                };
                let loss = combine(&mut t, LossWeighting::Fixed(1.0), lr, Some(ln), None, None);
                std::hint::black_box(t.backward(loss));
            },
            BatchSize::SmallInput,
        )
    });

    // encode_dataset (routing-feature refresh cost).
    c.bench_function("encode_dataset_2k", |b| {
        b.iter(|| std::hint::black_box(pq.encode_dataset(&base)))
    });

    // exact beam search reference (the uncompressed baseline all figures
    // implicitly compare against).
    c.bench_function("beam_search_exact_ef40", |b| {
        let mut scratch = SearchScratch::new();
        let est_graph = mem_index.graph();
        b.iter(|| {
            let est = rpq_graph::ExactEstimator::new(&base, &q);
            std::hint::black_box(beam_search(est_graph, &est, 40, 10, &mut scratch))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_all
}
criterion_main!(benches);
