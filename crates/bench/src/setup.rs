//! Shared experiment setup: benchmark datasets, graph builders, and the
//! method zoo (PQ / OPQ / Catalyst / L&C / RPQ variants).

use std::path::PathBuf;
use std::sync::Arc;

use rpq_core::{
    train_rpq, DiffQuantizerConfig, RoutingSamplerConfig, RpqTrainerConfig, TrainingMode,
};
use rpq_data::synth::DatasetKind;
use rpq_data::{brute_force_knn, Dataset, GroundTruth};
use rpq_graph::{HnswConfig, NsgConfig, ProximityGraph, VamanaConfig};
use rpq_quant::catalyst::{Catalyst, CatalystConfig};
use rpq_quant::lc::{LcConfig, LinkAndCode};
use rpq_quant::{
    OpqConfig, OptimizedProductQuantizer, PqConfig, ProductQuantizer, VectorCompressor,
};

use crate::scale::Scale;

/// A prepared benchmark: base set, queries, exact ground truth.
pub struct Bench {
    pub kind: DatasetKind,
    pub base: Dataset,
    pub queries: Dataset,
    pub gt: GroundTruth,
}

/// Generates a dataset at the given size with exact ground truth.
pub fn make_bench(kind: DatasetKind, n_base: usize, n_query: usize, k: usize, seed: u64) -> Bench {
    let (base, queries) = kind.generate(n_base, n_query, seed);
    let gt = brute_force_knn(&base, &queries, k);
    Bench {
        kind,
        base,
        queries,
        gt,
    }
}

/// Which proximity graph to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Vamana (the hybrid/DiskANN scenario's graph).
    Vamana,
    Hnsw,
    Nsg,
}

/// Builds the requested graph with experiment defaults.
pub fn build_graph(kind: GraphKind, data: &Dataset, seed: u64) -> ProximityGraph {
    match kind {
        GraphKind::Vamana => VamanaConfig {
            r: 32,
            l: 64,
            seed,
            ..Default::default()
        }
        .build(data),
        GraphKind::Hnsw => HnswConfig {
            m: 16,
            ef_construction: 100,
            seed,
        }
        .build(data),
        GraphKind::Nsg => NsgConfig {
            r: 32,
            l: 64,
            seed,
            ..Default::default()
        }
        .build(data),
    }
}

/// The quantization methods compared across the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    Pq,
    Opq,
    Catalyst,
    /// L&C (in-memory HNSW comparison only, as in the paper's Figure 6).
    Lc,
    Rpq(TrainingMode),
}

impl Method {
    /// The paper's label for this method.
    pub fn name(&self) -> String {
        match self {
            Method::Pq => "PQ".into(),
            Method::Opq => "OPQ".into(),
            Method::Catalyst => "Catalyst".into(),
            Method::Lc => "L&C".into(),
            Method::Rpq(mode) => mode.label().into(),
        }
    }

    /// Methods of the hybrid-scenario comparison (paper Figure 5).
    pub const HYBRID: [Method; 4] = [
        Method::Pq,
        Method::Opq,
        Method::Catalyst,
        Method::Rpq(TrainingMode::Full),
    ];

    /// Methods of the in-memory HNSW comparison (paper Figure 6).
    pub const MEMORY_HNSW: [Method; 5] = [
        Method::Pq,
        Method::Opq,
        Method::Lc,
        Method::Catalyst,
        Method::Rpq(TrainingMode::Full),
    ];

    /// Methods of the in-memory NSG comparison (paper Figure 7).
    pub const MEMORY_NSG: [Method; 4] = [
        Method::Pq,
        Method::Opq,
        Method::Catalyst,
        Method::Rpq(TrainingMode::Full),
    ];

    /// Trains this method on `data` over `graph`.
    pub fn build(
        &self,
        data: &Dataset,
        graph: &Arc<ProximityGraph>,
        scale: &Scale,
    ) -> Box<dyn VectorCompressor> {
        build_method(*self, data, graph, scale, scale.m, scale.kk)
    }
}

/// Trains a method with explicit M/K (the K-and-M sensitivity grids need
/// non-default values).
pub fn build_method(
    method: Method,
    data: &Dataset,
    graph: &Arc<ProximityGraph>,
    scale: &Scale,
    m: usize,
    kk: usize,
) -> Box<dyn VectorCompressor> {
    let pq_cfg = PqConfig {
        m,
        k: kk,
        seed: scale.seed,
        ..Default::default()
    };
    match method {
        Method::Pq => Box::new(ProductQuantizer::train(&pq_cfg, data)),
        Method::Opq => Box::new(OptimizedProductQuantizer::train(
            &OpqConfig {
                pq: pq_cfg,
                iters: 6,
            },
            data,
        )),
        Method::Catalyst => {
            // d_out must be divisible by m; 40 works for m=8, fall back to
            // m·5 otherwise.
            let d_out = if 40 % m == 0 { 40 } else { m * 5 };
            let cfg = CatalystConfig {
                d_out,
                pq: PqConfig {
                    m,
                    k: kk,
                    seed: scale.seed,
                    ..Default::default()
                },
                seed: scale.seed,
                ..Default::default()
            };
            Box::new(Catalyst::train(&cfg, data))
        }
        Method::Lc => Box::new(LinkAndCode::train(
            &LcConfig {
                pq: pq_cfg,
                fit_sample: 2000,
            },
            data,
            Arc::clone(graph),
        )),
        Method::Rpq(mode) => {
            let cfg = rpq_config(mode, scale, m, kk);
            let (rpq, _) = train_rpq(&cfg, data, graph);
            Box::new(rpq)
        }
    }
}

/// The RPQ trainer configuration used by experiments.
pub fn rpq_config(mode: TrainingMode, scale: &Scale, m: usize, kk: usize) -> RpqTrainerConfig {
    RpqTrainerConfig {
        quantizer: DiffQuantizerConfig {
            m,
            k: kk,
            seed: scale.seed,
            ..Default::default()
        },
        mode,
        epochs: scale.rpq_epochs,
        steps_per_epoch: scale.rpq_steps,
        triplet_batch: 32,
        decision_batch: 8,
        routing_sampler: RoutingSamplerConfig {
            n_queries: 16,
            h: 8,
            ..Default::default()
        },
        seed: scale.seed,
        ..Default::default()
    }
}

/// A unique store path for a hybrid index (per experiment and method).
pub fn store_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rpq-bench-stores");
    std::fs::create_dir_all(&dir).expect("cannot create store dir");
    dir.join(format!("{tag}.store"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_has_consistent_shapes() {
        let b = make_bench(DatasetKind::Ukbench, 300, 10, 5, 1);
        assert_eq!(b.base.len(), 300);
        assert_eq!(b.queries.len(), 10);
        assert_eq!(b.gt.neighbors.len(), 10);
        assert_eq!(b.gt.k, 5);
    }

    #[test]
    fn all_graph_kinds_build() {
        let b = make_bench(DatasetKind::Deep, 250, 5, 5, 2);
        for kind in [GraphKind::Vamana, GraphKind::Hnsw, GraphKind::Nsg] {
            let g = build_graph(kind, &b.base, 0);
            assert_eq!(g.len(), 250, "{kind:?}");
        }
    }

    #[test]
    fn every_method_trains_at_tiny_scale() {
        let scale = Scale::ci();
        let b = make_bench(DatasetKind::Sift, 400, 5, 5, 3);
        let graph = Arc::new(build_graph(GraphKind::Hnsw, &b.base, 0));
        for method in [
            Method::Pq,
            Method::Opq,
            Method::Catalyst,
            Method::Lc,
            Method::Rpq(TrainingMode::Full),
        ] {
            let c = method.build(&b.base, &graph, &scale);
            let codes = c.encode_dataset(&b.base);
            assert_eq!(codes.len(), 400, "{}", method.name());
            assert!(c.model_bytes() > 0);
        }
    }
}
