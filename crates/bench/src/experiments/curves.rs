//! Figures 5–7: the headline QPS / Hops / Disk-I/O vs Recall@10 curves for
//! both deployment scenarios.

use std::sync::Arc;

use serde::Serialize;

use rpq_data::synth::DatasetKind;

use crate::experiments::{run_hybrid, run_memory, to_curves, Curve};
use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::{build_graph, make_bench, GraphKind, Method};

#[derive(Serialize)]
struct DatasetCurves {
    dataset: String,
    curves: Vec<Curve>,
}

/// **Figure 5**: hybrid (DiskANN) scenario — QPS, Hops and Disk-I/O time vs
/// Recall@10 for PQ / OPQ / Catalyst / RPQ on every dataset.
pub fn fig5(scale: &Scale) -> Report {
    let mut report = Report::new(
        "fig5",
        "Hybrid scenario: QPS / Hops / IO vs Recall@10 (paper Fig. 5)",
        &scale.label(),
        &[
            "Dataset",
            "Method",
            "ef",
            "Recall@10",
            "QPS",
            "Hops",
            "IO ms/query",
        ],
    );
    let mut outs = Vec::new();
    for kind in DatasetKind::ALL {
        let bench = make_bench(kind, scale.n_base, scale.n_query, scale.k, scale.seed);
        let graph = Arc::new(build_graph(GraphKind::Vamana, &bench.base, scale.seed));
        let sweeps = run_hybrid(
            &bench,
            &graph,
            &Method::HYBRID,
            scale,
            &format!("fig5-{}", kind.name()),
        );
        for (method, pts) in &sweeps {
            for p in pts {
                report.push_row(vec![
                    kind.name().into(),
                    method.clone(),
                    p.ef.to_string(),
                    fmt(p.recall),
                    fmt(p.qps),
                    fmt(p.hops),
                    fmt(p.io_ms),
                ]);
            }
        }
        outs.push(DatasetCurves {
            dataset: kind.name().into(),
            curves: to_curves(&sweeps),
        });
    }
    write_json("fig5", &outs);
    report
}

/// **Figure 6**: in-memory scenario over HNSW — QPS and Hops vs Recall@10
/// for PQ / OPQ / L&C / Catalyst / RPQ.
pub fn fig6(scale: &Scale) -> Report {
    memory_figure(
        scale,
        "fig6",
        GraphKind::Hnsw,
        &Method::MEMORY_HNSW,
        "paper Fig. 6 (HNSW)",
    )
}

/// **Figure 7**: in-memory scenario over NSG — PQ / OPQ / Catalyst / RPQ.
pub fn fig7(scale: &Scale) -> Report {
    memory_figure(
        scale,
        "fig7",
        GraphKind::Nsg,
        &Method::MEMORY_NSG,
        "paper Fig. 7 (NSG)",
    )
}

fn memory_figure(
    scale: &Scale,
    id: &str,
    graph_kind: GraphKind,
    methods: &[Method],
    title: &str,
) -> Report {
    let mut report = Report::new(
        id,
        &format!("In-memory scenario: QPS / Hops vs Recall@10 — {title}"),
        &scale.label(),
        &["Dataset", "Method", "ef", "Recall@10", "QPS", "Hops"],
    );
    let mut outs = Vec::new();
    for kind in DatasetKind::ALL {
        let bench = make_bench(kind, scale.n_base, scale.n_query, scale.k, scale.seed);
        let graph = Arc::new(build_graph(graph_kind, &bench.base, scale.seed));
        let sweeps = run_memory(&bench, &graph, methods, scale);
        for (method, pts) in &sweeps {
            for p in pts {
                report.push_row(vec![
                    kind.name().into(),
                    method.clone(),
                    p.ef.to_string(),
                    fmt(p.recall),
                    fmt(p.qps),
                    fmt(p.hops),
                ]);
            }
        }
        outs.push(DatasetCurves {
            dataset: kind.name().into(),
            curves: to_curves(&sweeps),
        });
    }
    write_json(id, &outs);
    report
}
