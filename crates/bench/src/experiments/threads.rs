//! The `threads` experiment: wall-clock scaling of the parallel build
//! and sweep paths vs pool width (no paper counterpart; this measures
//! the vendored rayon pool itself).
//!
//! For width 1 and the configured pool width (`RPQ_THREADS` or the
//! machine's cores) it times ground-truth computation, Vamana+PQ index
//! construction, and a `sweep_memory` pass, then reports per-phase
//! wall-clock and speedup. Results must be **identical** across widths
//! — the experiment asserts recall and per-query top-k ids match
//! bit-for-bit, so any speedup shown is for exactly the same work. On a
//! multi-core machine the build and sweep phases scale with the pool;
//! on a single-core machine both widths cost the same and the speedup
//! columns read ~1×.

use std::time::Instant;

use serde::Serialize;

use rayon::prelude::*;
use rpq_anns::{sweep_memory, InMemoryIndex};
use rpq_data::brute_force_knn;
use rpq_data::synth::DatasetKind;
use rpq_graph::{SearchScratch, VamanaConfig};
use rpq_quant::{PqConfig, ProductQuantizer};

use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::make_bench;

/// Wall-clock seconds for one pool width.
#[derive(Serialize, Clone, Copy, Debug)]
pub struct ThreadTimings {
    pub threads: usize,
    pub gt_s: f32,
    pub build_s: f32,
    pub sweep_s: f32,
    pub recall: f32,
}

fn run_once(scale: &Scale, threads: usize) -> (ThreadTimings, Vec<Vec<u32>>) {
    rayon::with_num_threads(threads, || {
        let bench = make_bench(
            DatasetKind::Sift,
            scale.n_base,
            scale.n_query,
            scale.k,
            scale.seed,
        );

        let t0 = Instant::now();
        let gt = brute_force_knn(&bench.base, &bench.queries, scale.k);
        let gt_s = t0.elapsed().as_secs_f32();

        // Vamana's batched insertion is the most parallel build path.
        let t1 = Instant::now();
        let graph = VamanaConfig {
            r: 16,
            l: 32,
            ..Default::default()
        }
        .build(&bench.base);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: scale.m,
                k: scale.kk,
                ..Default::default()
            },
            &bench.base,
        );
        let index = InMemoryIndex::build(pq, &bench.base, graph);
        let build_s = t1.elapsed().as_secs_f32();

        let t2 = Instant::now();
        let points = sweep_memory(&index, &bench.queries, &gt, scale.k, &scale.efs);
        let sweep_s = t2.elapsed().as_secs_f32();

        let ef = *scale.efs.last().expect("scale has beam widths");
        let ids: Vec<Vec<u32>> = (0..bench.queries.len())
            .into_par_iter()
            .map_init(SearchScratch::new, |scratch, qi| {
                let (res, _) = index.search(bench.queries.get(qi), ef, scale.k, scratch);
                res.iter().map(|n| n.id).collect()
            })
            .collect();

        let recall = points.last().map(|p| p.recall).unwrap_or(0.0);
        (
            ThreadTimings {
                threads,
                gt_s,
                build_s,
                sweep_s,
                recall,
            },
            ids,
        )
    })
}

/// **threads**: wall-clock scaling (and result invariance) vs pool width.
pub fn threads(scale: &Scale) -> Report {
    let mut report = Report::new(
        "threads",
        "Pool-width scaling: wall-clock per phase, identical results",
        &scale.label(),
        &[
            "Threads", "GT s", "Build s", "Sweep s", "Recall", "GT ×", "Build ×", "Sweep ×",
        ],
    );
    let full_width = rayon::current_num_threads().max(1);
    let (seq, seq_ids) = run_once(scale, 1);
    let mut rows = vec![seq];
    if full_width > 1 {
        let (par, par_ids) = run_once(scale, full_width);
        assert_eq!(
            seq_ids, par_ids,
            "top-k ids must be identical at every pool width"
        );
        assert_eq!(
            seq.recall.to_bits(),
            par.recall.to_bits(),
            "recall must be identical at every pool width"
        );
        rows.push(par);
    }
    for t in &rows {
        report.push_row(vec![
            t.threads.to_string(),
            fmt(t.gt_s),
            fmt(t.build_s),
            fmt(t.sweep_s),
            fmt(t.recall),
            fmt(seq.gt_s / t.gt_s.max(1e-9)),
            fmt(seq.build_s / t.build_s.max(1e-9)),
            fmt(seq.sweep_s / t.sweep_s.max(1e-9)),
        ]);
    }
    write_json("threads", &rows);
    report
}
