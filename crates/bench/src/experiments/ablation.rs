//! Tables 6–7 (feature/loss ablation) and Figure 8 (k_pos/k_neg ratio).

use std::sync::Arc;

use serde::Serialize;

use rpq_core::{train_rpq, TrainingMode};
use rpq_data::synth::DatasetKind;
use rpq_quant::VectorCompressor;

use crate::experiments::{common_target, hybrid_sweep, memory_sweep};
use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::{build_graph, make_bench, rpq_config, GraphKind};

const MODES: [TrainingMode; 4] = [
    TrainingMode::Full,
    TrainingMode::NeighborOnly,
    TrainingMode::RoutingOnly,
    TrainingMode::PathImitation,
];

/// **Tables 6 & 7**: QPS at a common recall operating point for the four
/// RPQ variants, in the hybrid (Table 6) and in-memory (Table 7)
/// scenarios. One training per (dataset, mode); the same learned quantizer
/// serves both scenarios (it is scenario-agnostic by construction).
pub fn tables67(scale: &Scale) -> (Report, Report) {
    let mut t6 = Report::new(
        "table6",
        "Ablation, hybrid scenario: QPS at common recall (paper Table 6, 95%)",
        &scale.label(),
        &["Method", "BigANN", "Deep", "Gist", "Sift", "Ukbench"],
    );
    let mut t7 = Report::new(
        "table7",
        "Ablation, in-memory scenario: QPS at common recall (paper Table 7)",
        &scale.label(),
        &["Method", "BigANN", "Deep", "Gist", "Sift", "Ukbench"],
    );
    #[derive(Serialize)]
    struct Out {
        dataset: String,
        mode: String,
        hybrid_qps: f32,
        memory_qps: f32,
        hybrid_target: f32,
        memory_target: f32,
    }
    let kinds = [
        DatasetKind::BigAnn,
        DatasetKind::Deep,
        DatasetKind::Gist,
        DatasetKind::Sift,
        DatasetKind::Ukbench,
    ];
    // rows[mode][dataset]
    let mut hybrid_cells = vec![Vec::new(); MODES.len()];
    let mut memory_cells = vec![Vec::new(); MODES.len()];
    let mut outs = Vec::new();
    for kind in kinds {
        let bench = make_bench(kind, scale.n_base, scale.n_query, scale.k, scale.seed);
        let vamana = Arc::new(build_graph(GraphKind::Vamana, &bench.base, scale.seed));
        let hnsw = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, scale.seed));
        let mut hybrid_sweeps = Vec::new();
        let mut memory_sweeps = Vec::new();
        for mode in MODES {
            let cfg = rpq_config(mode, scale, scale.m, scale.kk);
            let (rpq, _) = train_rpq(&cfg, &bench.base, &vamana);
            let inner = rpq.inner();
            // Re-wrap cheaply for the second scenario: rebuild from the same
            // learned rotation/codebook.
            let clone_box: Box<dyn VectorCompressor> =
                Box::new(rpq_quant::OptimizedProductQuantizer::from_parts(
                    inner.rotation().clone(),
                    inner.pq().clone(),
                    inner.train_seconds(),
                ));
            let hyb = hybrid_sweep(
                &bench,
                &vamana,
                Box::new(rpq) as Box<dyn VectorCompressor>,
                scale,
                &format!(
                    "t67-{}-{}",
                    kind.name(),
                    mode.label().replace([' ', '/'], "")
                ),
            );
            let mem = memory_sweep(&bench, &hnsw, clone_box, scale);
            hybrid_sweeps.push((mode.label().to_string(), hyb));
            memory_sweeps.push((mode.label().to_string(), mem));
        }
        let ht = common_target(&hybrid_sweeps, 0.95);
        let mt = common_target(&memory_sweeps, 0.95);
        for (i, mode) in MODES.iter().enumerate() {
            let hq = rpq_anns::qps_at_recall(&hybrid_sweeps[i].1, ht).unwrap_or(0.0);
            let mq = rpq_anns::qps_at_recall(&memory_sweeps[i].1, mt).unwrap_or(0.0);
            hybrid_cells[i].push(hq);
            memory_cells[i].push(mq);
            outs.push(Out {
                dataset: kind.name().into(),
                mode: mode.label().into(),
                hybrid_qps: hq,
                memory_qps: mq,
                hybrid_target: ht,
                memory_target: mt,
            });
        }
    }
    for (i, mode) in MODES.iter().enumerate() {
        let mut row6 = vec![mode.label().to_string()];
        row6.extend(hybrid_cells[i].iter().map(|&v| fmt(v)));
        t6.push_row(row6);
        let mut row7 = vec![mode.label().to_string()];
        row7.extend(memory_cells[i].iter().map(|&v| fmt(v)));
        t7.push_row(row7);
    }
    write_json("table6_table7", &outs);
    (t6, t7)
}

/// **Figure 8**: effect of the k_pos/k_neg ratio on QPS in both scenarios
/// (BigANN-like and Deep-like).
pub fn fig8(scale: &Scale) -> Report {
    let ratios = [0.02f32, 0.2, 0.5, 0.8, 0.98];
    let total = 25usize;
    let mut report = Report::new(
        "fig8",
        "Effect of k_pos/k_neg on QPS at common recall (paper Fig. 8)",
        &scale.label(),
        &["Dataset", "Scenario", "ratio", "k_pos", "k_neg", "QPS"],
    );
    #[derive(Serialize)]
    struct Out {
        dataset: String,
        ratio: f32,
        k_pos: usize,
        k_neg: usize,
        hybrid_qps: f32,
        memory_qps: f32,
    }
    let mut outs = Vec::new();
    for kind in [DatasetKind::BigAnn, DatasetKind::Deep] {
        let bench = make_bench(kind, scale.n_base, scale.n_query, scale.k, scale.seed);
        let vamana = Arc::new(build_graph(GraphKind::Vamana, &bench.base, scale.seed));
        let hnsw = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, scale.seed));
        let mut hyb_sweeps = Vec::new();
        let mut mem_sweeps = Vec::new();
        let mut combos = Vec::new();
        for &r in &ratios {
            let k_pos = ((total as f32 * r / (1.0 + r)).round() as usize).clamp(1, total - 1);
            let k_neg = total - k_pos;
            let mut cfg = rpq_config(TrainingMode::Full, scale, scale.m, scale.kk);
            cfg.triplet_sampler.k_pos = k_pos;
            cfg.triplet_sampler.k_neg = k_neg;
            let (rpq, _) = train_rpq(&cfg, &bench.base, &vamana);
            let inner = rpq.inner();
            let clone_box: Box<dyn VectorCompressor> =
                Box::new(rpq_quant::OptimizedProductQuantizer::from_parts(
                    inner.rotation().clone(),
                    inner.pq().clone(),
                    inner.train_seconds(),
                ));
            let hyb = hybrid_sweep(
                &bench,
                &vamana,
                Box::new(rpq) as Box<dyn VectorCompressor>,
                scale,
                &format!("fig8-{}-{}", kind.name(), (r * 100.0) as u32),
            );
            let mem = memory_sweep(&bench, &hnsw, clone_box, scale);
            hyb_sweeps.push((format!("r={r}"), hyb));
            mem_sweeps.push((format!("r={r}"), mem));
            combos.push((r, k_pos, k_neg));
        }
        let ht = common_target(&hyb_sweeps, 0.95);
        let mt = common_target(&mem_sweeps, 0.95);
        for (i, &(r, k_pos, k_neg)) in combos.iter().enumerate() {
            let hq = rpq_anns::qps_at_recall(&hyb_sweeps[i].1, ht).unwrap_or(0.0);
            let mq = rpq_anns::qps_at_recall(&mem_sweeps[i].1, mt).unwrap_or(0.0);
            report.push_row(vec![
                kind.name().into(),
                "hybrid".into(),
                fmt(r),
                k_pos.to_string(),
                k_neg.to_string(),
                fmt(hq),
            ]);
            report.push_row(vec![
                kind.name().into(),
                "in-memory".into(),
                fmt(r),
                k_pos.to_string(),
                k_neg.to_string(),
                fmt(mq),
            ]);
            outs.push(Out {
                dataset: kind.name().into(),
                ratio: r,
                k_pos,
                k_neg,
                hybrid_qps: hq,
                memory_qps: mq,
            });
        }
    }
    write_json("fig8", &outs);
    report
}
