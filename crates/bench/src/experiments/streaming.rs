//! The `streaming` experiment (DESIGN.md §8.4 — no paper counterpart;
//! this measures the repo's own live-corpus subsystem).
//!
//! One SIFT-like pool is split into a seed corpus and an insert reserve. A
//! [`StreamingIndex`] is batch-built on the seed, then driven through
//! [`Scale::streaming_rounds`] churn rounds: a deterministic insert batch
//! from the reserve, an equal-sized deterministic delete batch spread over
//! the live set, a threshold-gated consolidation (forced on the final round
//! so every run demonstrates a reclaim), and a query wave. Each round
//! reports write throughput, reclaimed tombstones, and recall@k against
//! exact ground truth recomputed over the *current* live set — and asserts
//! the [`Scale::streaming_recall_floor`] invariant: churn must not erode
//! search quality below the frozen-index operating point.
//!
//! The run ends with the §6.2 `knn_graph_recall` substrate diagnostic on a
//! deterministic vertex subsample: how much of the exact k-NN structure the
//! churned, consolidated graph still carries.

use std::time::Instant;

use serde::Serialize;

use rpq_anns::stream::{StreamingConfig, StreamingIndex};
use rpq_data::synth::DatasetKind;
use rpq_data::{brute_force_knn, Dataset};
use rpq_graph::{knn_graph_recall, SearchScratch};
use rpq_quant::{PqConfig, ProductQuantizer};

use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;

/// One churn round of the streaming sweep.
#[derive(Serialize, Clone, Debug)]
pub struct StreamingRound {
    pub round: usize,
    pub inserts: usize,
    pub deletes: usize,
    pub writes_per_sec: f32,
    pub reclaimed: usize,
    pub live: usize,
    /// Resident points after the round (live + not-yet-reclaimed
    /// tombstones).
    pub resident: usize,
    pub recall: f32,
}

/// The persisted `bench_results/streaming.json` payload.
#[derive(Serialize, Clone, Debug)]
pub struct StreamingJson {
    pub ef: usize,
    pub k: usize,
    pub recall_floor: f32,
    pub rounds: Vec<StreamingRound>,
    /// §6.2 substrate diagnostic over the final consolidated graph.
    pub knn_graph_recall: f32,
}

/// Local ids currently live (not tombstoned), ascending.
fn live_locals<C: rpq_quant::VectorCompressor>(index: &StreamingIndex<C>) -> Vec<u32> {
    (0..index.len() as u32)
        .filter(|&i| !index.is_tombstoned(i))
        .collect()
}

/// **streaming**: write throughput and recall-under-churn across
/// insert/delete/consolidate rounds (DESIGN.md §8.4).
pub fn streaming(scale: &Scale) -> Report {
    let mut report = Report::new(
        "streaming",
        "Streaming index: writes/sec and recall under churn",
        &scale.label(),
        &[
            "Round",
            "Inserts",
            "Deletes",
            "Writes/s",
            "Reclaimed",
            "Live",
            "Recall@k",
        ],
    );
    let n_rounds = scale.streaming_rounds.max(3);
    let initial = scale.n_base * 2 / 3;
    let pool = scale.n_base - initial;
    let batch = (pool / n_rounds).max(1);
    let (base, queries) = DatasetKind::Sift.generate(scale.n_base, scale.n_query, scale.seed);
    let (seed_set, _) = base.split_at(initial);

    // The compressor trains on the seed corpus only — in the streaming
    // regime future points are unknown at training time.
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: scale.m,
            k: scale.kk,
            seed: scale.seed,
            ..Default::default()
        },
        &seed_set,
    );
    let cfg = StreamingConfig {
        seed: scale.seed,
        ..Default::default()
    };
    let mut index = StreamingIndex::build(pq, &seed_set, cfg);
    let mut scratch = SearchScratch::new();
    // source[local id] = index into `base`, maintained across compactions
    // so ground truth can always be recomputed over the live set.
    let mut source: Vec<usize> = (0..initial).collect();
    let ef = *scale.efs.last().expect("scale has beam widths");

    let mut rounds = Vec::new();
    for round in 0..n_rounds {
        let timer = Instant::now();
        let lo = (round * batch).min(pool);
        let hi = ((round + 1) * batch).min(pool);
        for i in lo..hi {
            index.insert(base.get(initial + i), &mut scratch);
            source.push(initial + i);
        }
        let inserts = hi - lo;

        // Deterministic delete schedule: an equal-sized batch spread by
        // stride over the live set, offset rotating per round so churn
        // touches different neighborhoods.
        let live = live_locals(&index);
        let n_del = inserts.min(live.len().saturating_sub(1));
        let stride = (live.len() / n_del.max(1)).max(1);
        let mut deletes = 0;
        let mut at = (round * 3 + 1) % stride;
        while deletes < n_del && at < live.len() {
            if index.remove(live[at]) {
                deletes += 1;
            }
            at += stride;
        }
        let write_secs = timer.elapsed().as_secs_f32();

        let force = round + 1 == n_rounds;
        let mut reclaimed = 0;
        if let Some(rep) = index.consolidate(force) {
            reclaimed = rep.reclaimed;
            source = rep
                .survivors
                .iter()
                .map(|&old| source[old as usize])
                .collect();
        }

        // Recall against exact ground truth over the current live set.
        let live = live_locals(&index);
        let live_base: Vec<usize> = live.iter().map(|&i| source[i as usize]).collect();
        let live_data = base.subset(&live_base);
        let gt = brute_force_knn(&live_data, &queries, scale.k);
        let mut hits = 0usize;
        let mut total = 0usize;
        for (qi, q) in queries.iter().enumerate() {
            let (top, _) = index.search(q, ef, scale.k, &mut scratch);
            let got: Vec<usize> = top.iter().map(|n| source[n.id as usize]).collect();
            let want = &gt.neighbors[qi];
            total += want.len();
            hits += want
                .iter()
                .filter(|&&g| got.contains(&live_base[g as usize]))
                .count();
        }
        let recall = hits as f32 / total.max(1) as f32;
        assert!(
            recall >= scale.streaming_recall_floor,
            "round {round}: recall {recall} under churn fell below the floor {}",
            scale.streaming_recall_floor
        );

        let point = StreamingRound {
            round,
            inserts,
            deletes,
            writes_per_sec: (inserts + deletes) as f32 / write_secs.max(1e-9),
            reclaimed,
            live: index.live_len(),
            resident: index.len(),
            recall,
        };
        report.push_row(vec![
            point.round.to_string(),
            point.inserts.to_string(),
            point.deletes.to_string(),
            fmt(point.writes_per_sec),
            point.reclaimed.to_string(),
            point.live.to_string(),
            fmt(point.recall),
        ]);
        rounds.push(point);
    }

    let substrate = substrate_recall(&index, &base, &source, scale.k);
    assert!(
        substrate > 0.1,
        "consolidated graph lost its k-NN substrate: {substrate}"
    );
    report.push_row(vec![
        "substrate".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        index.live_len().to_string(),
        fmt(substrate),
    ]);

    write_json(
        "streaming",
        &StreamingJson {
            ef,
            k: scale.k,
            recall_floor: scale.streaming_recall_floor,
            rounds,
            knn_graph_recall: substrate,
        },
    );
    report
}

/// §6.2 diagnostic: fraction of each probed vertex's exact k nearest
/// neighbors present in its out-adjacency, over a deterministic subsample.
/// The final round forces consolidation, so every resident vertex is live.
fn substrate_recall<C: rpq_quant::VectorCompressor>(
    index: &StreamingIndex<C>,
    base: &Dataset,
    source: &[usize],
    k: usize,
) -> f32 {
    let n = index.len();
    let resident: Vec<usize> = (0..n).map(|i| source[i]).collect();
    let live_data = base.subset(&resident);
    let step = (n / 256).max(1);
    let probed: Vec<usize> = (0..n).step_by(step).collect();
    let probes = live_data.subset(&probed);
    // k+1 because each probe finds itself at distance zero.
    let gt = brute_force_knn(&live_data, &probes, k + 1);
    let exact: Vec<Vec<u32>> = gt
        .neighbors
        .iter()
        .zip(&probed)
        .map(|(ns, &s)| {
            ns.iter()
                .copied()
                .filter(|&j| j as usize != s)
                .take(k)
                .collect()
        })
        .collect();
    let approx: Vec<Vec<u32>> = probed
        .iter()
        .map(|&s| index.graph().neighbors(s as u32).to_vec())
        .collect();
    knn_graph_recall(&approx, &exact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_locals_skips_tombstones() {
        let data = DatasetKind::Ukbench.generate(200, 0, 7).0;
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 8,
                k: 16,
                seed: 7,
                ..Default::default()
            },
            &data,
        );
        let mut index = StreamingIndex::build(pq, &data, StreamingConfig::default());
        index.remove(5);
        index.remove(11);
        let live = live_locals(&index);
        assert_eq!(live.len(), 198);
        assert!(!live.contains(&5) && !live.contains(&11));
    }
}
