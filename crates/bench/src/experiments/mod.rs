//! One module per paper artifact (DESIGN.md §5 maps ids to tables/figures).

pub mod ablation;
pub mod artifacts;
pub mod cluster;
pub mod curves;
pub mod diskio;
pub mod filtered;
pub mod hotpath;
pub mod sensitivity;
pub mod serve;
pub mod streaming;
pub mod threads;

use std::sync::Arc;

use serde::Serialize;

use rpq_anns::{sweep_disk, sweep_memory, DiskIndex, DiskIndexConfig, InMemoryIndex, SweepPoint};
use rpq_graph::ProximityGraph;
use rpq_quant::VectorCompressor;

use crate::scale::Scale;
use crate::setup::{store_path, Bench, Method};

/// JSON-friendly sweep point.
#[derive(Serialize, Clone, Copy, Debug)]
pub struct PointJson {
    pub ef: usize,
    pub recall: f32,
    pub qps: f32,
    pub hops: f32,
    pub io_ms: f32,
    /// Unhidden (QPS-charged) modelled I/O per query, ms.
    pub io_stall_ms: f32,
    /// Coalesced I/O commands per query.
    pub coalesced_ios: f32,
    /// Fraction of node lookups served from the RAM node cache.
    pub cache_hit_rate: f32,
}

impl From<SweepPoint> for PointJson {
    fn from(p: SweepPoint) -> Self {
        Self {
            ef: p.ef,
            recall: p.recall,
            qps: p.qps,
            hops: p.hops,
            io_ms: p.io_ms,
            io_stall_ms: p.io_stall_ms,
            coalesced_ios: p.coalesced_ios,
            cache_hit_rate: p.cache_hit_rate,
        }
    }
}

/// One method's QPS-vs-recall curve.
#[derive(Serialize, Clone, Debug)]
pub struct Curve {
    pub method: String,
    pub points: Vec<PointJson>,
}

/// Runs the hybrid (DiskANN-style) scenario for a set of methods sharing
/// one Vamana graph.
pub fn run_hybrid(
    bench: &Bench,
    graph: &Arc<ProximityGraph>,
    methods: &[Method],
    scale: &Scale,
    tag: &str,
) -> Vec<(String, Vec<SweepPoint>)> {
    methods
        .iter()
        .map(|m| {
            let compressor = m.build(&bench.base, graph, scale);
            (
                m.name(),
                hybrid_sweep(
                    bench,
                    graph,
                    compressor,
                    scale,
                    &format!("{tag}-{}", sanitize(&m.name())),
                ),
            )
        })
        .collect()
}

/// Sweeps a single already-trained compressor in the hybrid scenario.
pub fn hybrid_sweep(
    bench: &Bench,
    graph: &Arc<ProximityGraph>,
    compressor: Box<dyn VectorCompressor>,
    scale: &Scale,
    tag: &str,
) -> Vec<SweepPoint> {
    let index = DiskIndex::build(
        compressor,
        &bench.base,
        graph,
        DiskIndexConfig::new(store_path(tag)),
    )
    .expect("disk index build failed");
    sweep_disk(&index, &bench.queries, &bench.gt, scale.k, &scale.efs)
}

/// Runs the in-memory scenario for a set of methods over a shared graph.
pub fn run_memory(
    bench: &Bench,
    graph: &Arc<ProximityGraph>,
    methods: &[Method],
    scale: &Scale,
) -> Vec<(String, Vec<SweepPoint>)> {
    methods
        .iter()
        .map(|m| {
            let compressor = m.build(&bench.base, graph, scale);
            (m.name(), memory_sweep(bench, graph, compressor, scale))
        })
        .collect()
}

/// Sweeps a single already-trained compressor in the in-memory scenario.
pub fn memory_sweep(
    bench: &Bench,
    graph: &Arc<ProximityGraph>,
    compressor: Box<dyn VectorCompressor>,
    scale: &Scale,
) -> Vec<SweepPoint> {
    let index = InMemoryIndex::build(compressor, &bench.base, ProximityGraph::clone(graph));
    sweep_memory(&index, &bench.queries, &bench.gt, scale.k, &scale.efs)
}

/// The highest recall every method in a comparison can reach, capped —
/// used as the common "QPS at the same recall" operating point when the
/// paper's absolute target (95%) is out of reach at reproduction scale.
pub fn common_target(curves: &[(String, Vec<SweepPoint>)], cap: f32) -> f32 {
    let weakest = curves
        .iter()
        .map(|(_, pts)| pts.iter().map(|p| p.recall).fold(0.0f32, f32::max))
        .fold(f32::INFINITY, f32::min);
    (weakest * 0.98).min(cap)
}

/// Converts sweeps into JSON curves.
pub fn to_curves(sweeps: &[(String, Vec<SweepPoint>)]) -> Vec<Curve> {
    sweeps
        .iter()
        .map(|(name, pts)| Curve {
            method: name.clone(),
            points: pts.iter().map(|&p| p.into()).collect(),
        })
        .collect()
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}
