//! The `serve` experiment: serving-layer throughput and tail latency vs
//! shard count (DESIGN.md §7.5 — no paper counterpart; this measures the
//! repo's own production-path subsystem).
//!
//! One SIFT-like dataset, one shared PQ compressor, one HNSW graph per
//! shard. For every shard count in [`Scale::shard_counts`] the query set is
//! served through a [`ServeEngine`] (worker pool = available cores) at a
//! low / mid / high beam width, reporting recall@k, QPS, and the
//! p50/p95/p99 per-query latency tails. Recall stays flat across shard
//! counts (the merge invariant); QPS and tails show what fan-out costs or
//! buys at each operating point.

use std::sync::Arc;

use serde::Serialize;

use rpq_anns::serve::{ArrivalSchedule, ServeConfig, ServeEngine, ShardedIndex};
use rpq_data::synth::DatasetKind;
use rpq_data::GroundTruth;
use rpq_graph::HnswConfig;
use rpq_quant::{PqConfig, ProductQuantizer};

use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::make_bench;

/// One (shard count, beam width) operating point of the serving sweep.
#[derive(Serialize, Clone, Debug)]
pub struct ServePoint {
    pub shards: usize,
    pub workers: usize,
    pub ef: usize,
    /// Zipf exponent of the query mix (0 = uniform, each query once).
    pub skew: f32,
    pub recall: f32,
    pub qps: f32,
    pub p50_us: f32,
    pub p95_us: f32,
    pub p99_us: f32,
    pub mean_hops: f32,
    /// Coalesced I/O commands per query (0 for in-memory shards).
    pub mean_coalesced_ios: f32,
    /// Fraction of node lookups served from shard RAM caches.
    pub cache_hit_rate: f32,
}

/// Beam widths exercised per shard count: the sweep's low / mid / high
/// operating points (a full ef sweep would dominate runtime without
/// changing the shard-count story).
fn serve_efs(scale: &Scale) -> Vec<usize> {
    let efs = &scale.efs;
    let mut picked = vec![
        efs[0],
        efs[efs.len() / 2],
        *efs.last().expect("scale has beam widths"),
    ];
    picked.dedup();
    picked
}

/// **serve**: QPS + latency percentiles vs shard count at fixed recall
/// operating points.
pub fn serve(scale: &Scale) -> Report {
    let mut report = Report::new(
        "serve",
        "Serving layer: QPS and tail latency vs shard count",
        &scale.label(),
        &[
            "Shards",
            "Workers",
            "ef",
            "Skew",
            "Recall@10",
            "QPS",
            "p50 µs",
            "p95 µs",
            "p99 µs",
            "Hops",
        ],
    );
    let bench = make_bench(
        DatasetKind::Sift,
        scale.n_base,
        scale.n_query,
        scale.k,
        scale.seed,
    );
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: scale.m,
            k: scale.kk,
            seed: scale.seed,
            ..Default::default()
        },
        &bench.base,
    );
    let efs = serve_efs(scale);
    let seed = scale.seed;

    // Zipf-skewed traffic: resample the query set by rank-CDF draws (the
    // same generator the cluster schedules use), so skewed rows serve a
    // head-heavy mix of the *same* queries. Ground truth follows the
    // resampling positionally.
    let zipf = ArrivalSchedule::open_loop_zipf(
        bench.queries.len() * 4,
        1_000.0,
        bench.queries.len(),
        1,
        seed,
        scale.zipf_s,
    );
    let zipf_idx: Vec<usize> = zipf.requests.iter().map(|r| r.query as usize).collect();
    let zipf_queries = bench.queries.subset(&zipf_idx);
    let zipf_gt = GroundTruth {
        neighbors: zipf_idx
            .iter()
            .map(|&i| bench.gt.neighbors[i].clone())
            .collect(),
        k: bench.gt.k,
    };

    let mut points = Vec::new();
    for &n_shards in &scale.shard_counts {
        let index = Arc::new(ShardedIndex::build_in_memory(
            &pq,
            &bench.base,
            n_shards,
            |part| {
                HnswConfig {
                    m: 16,
                    ef_construction: 100,
                    seed,
                }
                .build(part)
            },
        ));
        let engine = ServeEngine::new(Arc::clone(&index), ServeConfig::default());
        for &ef in &efs {
            // Uniform rows (skew 0: each held-out query once) and
            // Zipf-skewed rows (the resampled head-heavy mix), same engine.
            let waves = [
                (0.0f32, &bench.queries, &bench.gt),
                (scale.zipf_s as f32, &zipf_queries, &zipf_gt),
            ];
            for (skew, queries, gt) in waves {
                // Warm-up wave so thread spin-up never lands in the
                // measured tail, then the measured batch.
                let _ = engine.serve_batch(queries, ef, scale.k);
                let (results, batch) = engine.serve_batch(queries, ef, scale.k);
                let ids: Vec<Vec<u32>> = results
                    .iter()
                    .map(|r| r.iter().map(|n| n.id).collect())
                    .collect();
                let point = ServePoint {
                    shards: n_shards,
                    workers: batch.workers,
                    ef,
                    skew,
                    recall: gt.recall(&ids),
                    qps: batch.qps,
                    p50_us: batch.latency.p50_us,
                    p95_us: batch.latency.p95_us,
                    p99_us: batch.latency.p99_us,
                    mean_hops: batch.mean_hops,
                    mean_coalesced_ios: batch.mean_coalesced_ios,
                    cache_hit_rate: batch.cache_hit_rate,
                };
                report.push_row(vec![
                    point.shards.to_string(),
                    point.workers.to_string(),
                    point.ef.to_string(),
                    fmt(point.skew),
                    fmt(point.recall),
                    fmt(point.qps),
                    fmt(point.p50_us),
                    fmt(point.p95_us),
                    fmt(point.p99_us),
                    fmt(point.mean_hops),
                ]);
                points.push(point);
            }
        }
    }
    write_json("serve", &points);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_efs_are_sorted_unique_and_from_scale() {
        let scale = Scale::ci();
        let efs = serve_efs(&scale);
        assert!(!efs.is_empty() && efs.len() <= 3);
        assert!(efs.windows(2).all(|w| w[0] < w[1]));
        assert!(efs.iter().all(|ef| scale.efs.contains(ef)));
    }
}
