//! The `cluster` experiment: goodput, tail latency, and shed fraction vs
//! offered load at 1/2/4 replicas (DESIGN.md §11.6 — no paper
//! counterpart; this measures the repo's replicated serving layer).
//!
//! Open-loop methodology (§11.4): a fixed Poisson arrival schedule is
//! replayed against the cluster in virtual time — requests keep arriving
//! whether or not the system keeps up, which is what makes overload
//! visible at all. Service times come from a [`CostModel`] calibrated
//! against a wall-clock probe of this machine, and queue waits from the
//! per-replica virtual device timelines, so the curves are deterministic
//! for a given seed and honest about queueing physics on a 1-core
//! container.
//!
//! Offered loads are expressed as fractions of the measured
//! single-replica capacity and held **absolute** across replica counts,
//! so "2 replicas ≥ 1 replica goodput at equal offered load" (the CI
//! gate) compares like with like.

use serde::Serialize;

use rpq_anns::serve::{
    AdmissionConfig, ArrivalSchedule, ClusterEngine, ClusterIndex, CostModel, LoadBalancePolicy,
};
use rpq_data::synth::DatasetKind;
use rpq_graph::HnswConfig;
use rpq_quant::{PqConfig, ProductQuantizer};

use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::make_bench;

/// One (replica count, offered load) operating point.
#[derive(Serialize, Clone, Debug)]
pub struct ClusterPoint {
    pub replicas: usize,
    pub shards: usize,
    pub ef: usize,
    /// Zipf exponent of the schedule's query selection (0 = uniform).
    pub skew: f32,
    /// Offered load as a fraction of single-replica capacity.
    pub load_frac: f32,
    pub offered_qps: f32,
    pub goodput_qps: f32,
    pub offered: usize,
    pub admitted: usize,
    pub completed: usize,
    pub shed: usize,
    pub shed_fraction: f32,
    pub p50_us: f32,
    pub p99_us: f32,
}

/// Shards in the cluster (partitions; the experiment's axis is replicas).
const N_SHARDS: usize = 2;

/// **cluster**: goodput + p99 vs offered load at 1/2/4 replicas, with the
/// shed fraction past saturation.
pub fn cluster(scale: &Scale) -> Report {
    let mut report = Report::new(
        "cluster",
        "Replicated serving: goodput and shed fraction vs offered load",
        &scale.label(),
        &[
            "Replicas",
            "Skew",
            "Load frac",
            "Offered QPS",
            "Goodput QPS",
            "Shed %",
            "p50 µs",
            "p99 µs",
        ],
    );
    let bench = make_bench(
        DatasetKind::Sift,
        scale.n_base,
        scale.n_query,
        scale.k,
        scale.seed,
    );
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: scale.m,
            k: scale.kk,
            seed: scale.seed,
            ..Default::default()
        },
        &bench.base,
    );
    let seed = scale.seed;
    let ef = scale.efs[scale.efs.len() / 2];
    let mk_engine = |replicas: usize, cost: CostModel| {
        let index = ClusterIndex::build_in_memory(
            &pq,
            &bench.base,
            N_SHARDS,
            replicas,
            LoadBalancePolicy::QueueAware,
            |part| {
                HnswConfig {
                    m: 16,
                    ef_construction: 100,
                    seed,
                }
                .build(part)
            },
        );
        ClusterEngine::new(
            index,
            AdmissionConfig {
                queue_cap: scale.cluster_queue_cap,
                ..Default::default()
            },
            cost,
        )
    };

    // Calibrate the cost model against this machine: time an unloaded
    // probe run and spread its wall time over the distance evaluations it
    // did. The virtual curves stay deterministic per seed; calibration
    // only anchors their absolute scale to real hardware.
    let probe_engine = mk_engine(1, CostModel::default());
    let probe = ArrivalSchedule::open_loop(128, 1.0, bench.queries.len(), 1, seed);
    let (_, probe_report) = probe_engine.serve_open_loop(&bench.queries, &probe, ef, scale.k);
    let per_dist_us = (probe_report.wall_seconds * 1e6
        / (probe_report.mean_dist_comps * probe_report.completed as f32).max(1.0))
    .clamp(0.001, 1.0);
    let cost = CostModel {
        fixed_us: 1.0,
        per_dist_us,
        per_hop_us: 0.0,
    };

    // Single-replica capacity: the unloaded mean virtual latency is the
    // slowest group's service time, and each replica set drains one
    // request per bottleneck-service-time.
    let capacity_engine = mk_engine(1, cost);
    let (_, unloaded) = capacity_engine.serve_open_loop(&bench.queries, &probe, ef, scale.k);
    let capacity_qps = 1e6 / unloaded.latency.mean_us.max(1e-3) as f64;

    let mut points = Vec::new();
    for &replicas in &scale.cluster_replicas {
        let engine = mk_engine(replicas, cost);
        for (li, &load_frac) in scale.cluster_load_fracs.iter().enumerate() {
            let offered_qps = load_frac as f64 * capacity_qps;
            // Uniform and Zipf-skewed schedules per load point, each
            // shared across replica counts so comparisons are paired.
            let schedules = [
                (
                    0.0f32,
                    ArrivalSchedule::open_loop(
                        scale.cluster_requests,
                        offered_qps,
                        bench.queries.len(),
                        1,
                        seed + 100 + li as u64,
                    ),
                ),
                (
                    scale.zipf_s as f32,
                    ArrivalSchedule::open_loop_zipf(
                        scale.cluster_requests,
                        offered_qps,
                        bench.queries.len(),
                        1,
                        seed + 200 + li as u64,
                        scale.zipf_s,
                    ),
                ),
            ];
            for (skew, schedule) in &schedules {
                let (_, run) = engine.serve_open_loop(&bench.queries, schedule, ef, scale.k);
                assert_eq!(
                    run.completed + run.shed,
                    run.offered,
                    "admission accounting must conserve requests"
                );
                let point = ClusterPoint {
                    replicas,
                    shards: N_SHARDS,
                    ef,
                    skew: *skew,
                    load_frac,
                    offered_qps: run.offered_qps,
                    goodput_qps: run.goodput_qps,
                    offered: run.offered,
                    admitted: run.admitted,
                    completed: run.completed,
                    shed: run.shed,
                    shed_fraction: run.shed as f32 / run.offered.max(1) as f32,
                    p50_us: run.latency.p50_us,
                    p99_us: run.latency.p99_us,
                };
                report.push_row(vec![
                    point.replicas.to_string(),
                    fmt(point.skew),
                    fmt(point.load_frac),
                    fmt(point.offered_qps),
                    fmt(point.goodput_qps),
                    fmt(point.shed_fraction * 100.0),
                    fmt(point.p50_us),
                    fmt(point.p99_us),
                ]);
                points.push(point);
            }
        }
    }
    write_json("cluster", &points);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_fracs_span_under_and_over_load_at_every_preset() {
        for scale in [Scale::ci(), Scale::small(), Scale::full()] {
            assert!(scale.cluster_load_fracs.len() >= 3);
            assert!(scale.cluster_load_fracs.iter().any(|&f| f < 1.0));
            assert!(scale.cluster_load_fracs.iter().any(|&f| f > 1.5));
            assert!(scale.cluster_replicas.contains(&1));
            assert!(scale.cluster_replicas.contains(&2));
            assert!(scale.cluster_queue_cap >= 1);
        }
    }
}
