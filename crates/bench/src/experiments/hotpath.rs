//! The `hotpath` experiment: throughput of the ADC scoring kernels
//! (DESIGN.md §9) — scalar AoS lookups vs the batched SoA kernel vs the
//! 4-bit packed kernel — swept over PQ shapes (M, K).
//!
//! Every (M, K) point trains a PQ on the bench corpus, encodes it in both
//! layouts, and times how fast each kernel scores the full code store for
//! a rotating set of queries (best-of-`REPS` wall clock, reported as
//! millions of codes scored per second). While timing, the experiment
//! **asserts** the batched distances are bit-identical to the scalar
//! LUT's, and that the 4-bit kernel's error stays within its proven
//! `M·Δ/2` bound — the numbers are only comparable because the work is
//! provably the same.
//!
//! Single-core caveat (DESIGN.md §7.6 applies here too): on a 1-core CI
//! runner the batched kernel's win is mostly cache locality and bounds-
//! check elision, so CI gates on *non-regression* (best batched speedup
//! ≥ 1×); read the headline speedups from a multi-core desktop run.

use std::time::Instant;

use serde::Serialize;

use rpq_data::synth::DatasetKind;
use rpq_graph::DistanceEstimator;
use rpq_quant::{
    BatchAdcEstimator, Packed4AdcEstimator, PackedCodes4, PqConfig, ProductQuantizer, QuantizedLut,
    SoaCodes, VectorCompressor, ADC_BLOCK,
};

use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::make_bench;

/// Timed repetitions per kernel; the best one is reported.
const REPS: usize = 3;

/// One (M, K) sweep point. Throughputs are millions of codes scored per
/// second; `packed4_*` fields are zero when K > 16 (the packed kernel
/// needs nibble codes).
#[derive(Serialize, Clone, Copy, Debug)]
pub struct HotpathPoint {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub block: usize,
    pub scalar_mcps: f32,
    pub batched_mcps: f32,
    /// batched / scalar — the CI non-regression gate reads this.
    pub batched_speedup: f32,
    pub packed4_mcps: f32,
    pub packed4_speedup: f32,
    /// Largest observed |4-bit − exact| across the timed queries.
    pub packed4_max_err: f32,
    /// The proven `M·Δ/2` bound the observation must sit under.
    pub packed4_err_bound: f32,
}

fn best_of<F: FnMut()>(mut f: F) -> f32 {
    let mut best = f32::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f32());
    }
    best
}

fn run_point(scale: &Scale, m: usize, k: usize) -> HotpathPoint {
    let bench = make_bench(
        DatasetKind::Sift,
        scale.n_base,
        scale.n_query,
        scale.k,
        scale.seed,
    );
    let pq = ProductQuantizer::train(
        &PqConfig {
            m,
            k,
            ..Default::default()
        },
        &bench.base,
    );
    let codes = pq.encode_dataset(&bench.base);
    let soa = SoaCodes::from_compact(&codes);
    let n = codes.len();
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut out = vec![0.0f32; n];
    let n_queries = bench.queries.len().clamp(1, 8);
    let codes_scored = (n * n_queries) as f32;

    // Scalar baseline: the AoS LUT walk every pre-batching search ran.
    let scalar_s = best_of(|| {
        for qi in 0..n_queries {
            let lut = pq.lookup_table(bench.queries.get(qi));
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = lut.distance(codes.code(i));
            }
        }
    });

    // Batched SoA kernel — asserted bit-identical to the scalar walk.
    let mut batched_out = vec![0.0f32; n];
    let batched_s = best_of(|| {
        for qi in 0..n_queries {
            let est = BatchAdcEstimator::new(pq.lookup_table(bench.queries.get(qi)), &soa);
            est.distance_batch(&ids, &mut batched_out);
        }
    });
    {
        let lut = pq.lookup_table(bench.queries.get(0));
        let est = BatchAdcEstimator::new(pq.lookup_table(bench.queries.get(0)), &soa);
        est.distance_batch(&ids, &mut batched_out);
        for (i, got) in batched_out.iter().enumerate() {
            assert_eq!(
                lut.distance(codes.code(i)).to_bits(),
                got.to_bits(),
                "batched kernel diverged from scalar at code {i} (m={m}, k={k})"
            );
        }
    }

    // 4-bit packed kernel: only meaningful for nibble codebooks.
    let (packed4_s, packed4_max_err, packed4_err_bound) = if k <= 16 {
        let packed = PackedCodes4::from_compact(&codes);
        let mut p4_out = vec![0.0f32; n];
        let secs = best_of(|| {
            for qi in 0..n_queries {
                let qlut = QuantizedLut::new(&pq.lookup_table(bench.queries.get(qi)));
                let est = Packed4AdcEstimator::new(qlut, &packed);
                est.distance_batch(&ids, &mut p4_out);
            }
        });
        let mut max_err = 0.0f32;
        let mut bound = 0.0f32;
        for qi in 0..n_queries {
            let lut = pq.lookup_table(bench.queries.get(qi));
            let qlut = QuantizedLut::new(&lut);
            bound = bound.max(qlut.error_bound());
            let est = Packed4AdcEstimator::new(qlut, &packed);
            est.distance_batch(&ids, &mut p4_out);
            for (i, got) in p4_out.iter().enumerate() {
                max_err = max_err.max((got - lut.distance(codes.code(i))).abs());
            }
        }
        assert!(
            max_err <= bound * 1.0001 + 1e-5,
            "4-bit error {max_err} exceeds proven bound {bound} (m={m}, k={k})"
        );
        (secs, max_err, bound)
    } else {
        (f32::INFINITY, 0.0, 0.0)
    };

    let mcps = |secs: f32| {
        if secs.is_finite() {
            codes_scored / secs.max(1e-9) / 1e6
        } else {
            0.0
        }
    };
    HotpathPoint {
        m,
        k,
        n,
        block: ADC_BLOCK,
        scalar_mcps: mcps(scalar_s),
        batched_mcps: mcps(batched_s),
        batched_speedup: scalar_s / batched_s.max(1e-9),
        packed4_mcps: mcps(packed4_s),
        packed4_speedup: if packed4_s.is_finite() {
            scalar_s / packed4_s.max(1e-9)
        } else {
            0.0
        },
        packed4_max_err,
        packed4_err_bound,
    }
}

/// **hotpath**: ADC kernel throughput over PQ shapes, with exactness
/// asserted inline.
pub fn hotpath(scale: &Scale) -> Report {
    let mut report = Report::new(
        "hotpath",
        "ADC kernel throughput: scalar vs batched SoA vs 4-bit packed",
        &scale.label(),
        &[
            "M",
            "K",
            "Scalar Mc/s",
            "Batched Mc/s",
            "Batched ×",
            "4-bit Mc/s",
            "4-bit ×",
            "4-bit err",
            "Err bound",
        ],
    );
    // The sweep covers the repo's operating shapes: the scale preset's own
    // (M, K), the nibble regime the 4-bit kernel targets, and the paper's
    // K=256 codebooks.
    let mut shapes = vec![(4, 16), (8, 16), (scale.m, scale.kk), (8, 256), (16, 256)];
    shapes.dedup();
    let mut rows = Vec::new();
    for (m, k) in shapes {
        if rows.iter().any(|p: &HotpathPoint| p.m == m && p.k == k) {
            continue;
        }
        let p = run_point(scale, m, k);
        report.push_row(vec![
            p.m.to_string(),
            p.k.to_string(),
            fmt(p.scalar_mcps),
            fmt(p.batched_mcps),
            fmt(p.batched_speedup),
            fmt(p.packed4_mcps),
            fmt(p.packed4_speedup),
            fmt(p.packed4_max_err),
            fmt(p.packed4_err_bound),
        ]);
        rows.push(p);
    }
    write_json("hotpath", &rows);
    report
}
