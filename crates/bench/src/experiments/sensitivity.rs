//! Figures 9–10 (K and M sensitivity grids) and Figures 11–12
//! (scalability over dataset size).

use std::sync::Arc;

use serde::Serialize;

use rpq_core::{train_rpq, TrainingMode};
use rpq_data::synth::DatasetKind;
use rpq_quant::VectorCompressor;

use crate::experiments::{common_target, hybrid_sweep, memory_sweep};
use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::{build_graph, build_method, make_bench, rpq_config, GraphKind, Method};

/// **Figures 9 & 10**: effect of K (codewords) and M (chunks) on hybrid QPS
/// (Fig. 9) and on the in-memory recall ceiling (Fig. 10), for RPQ.
pub fn fig910(scale: &Scale) -> (Report, Report) {
    let ks = [64usize, 128, 256];
    let ms = [8usize, 16, 32];
    let mut f9 = Report::new(
        "fig9",
        "Effect of K and M, hybrid scenario: QPS at common recall (paper Fig. 9)",
        &scale.label(),
        &["Dataset", "K", "M=8", "M=16", "M=32"],
    );
    let mut f10 = Report::new(
        "fig10",
        "Effect of K and M, in-memory: max Recall@10 (paper Fig. 10)",
        &scale.label(),
        &["Dataset", "K", "M=8", "M=16", "M=32"],
    );
    #[derive(Serialize)]
    struct Out {
        dataset: String,
        k: usize,
        m: usize,
        hybrid_qps: f32,
        memory_max_recall: f32,
    }
    let mut outs = Vec::new();
    // A faster trainer for the 27-cell grid.
    let mut grid_scale = scale.clone();
    grid_scale.rpq_epochs = grid_scale.rpq_epochs.min(2);
    grid_scale.rpq_steps = grid_scale.rpq_steps.min(10);
    for kind in [DatasetKind::BigAnn, DatasetKind::Deep, DatasetKind::Gist] {
        let bench = make_bench(kind, scale.n_base, scale.n_query, scale.k, scale.seed);
        let vamana = Arc::new(build_graph(GraphKind::Vamana, &bench.base, scale.seed));
        let hnsw = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, scale.seed));
        let mut cells = Vec::new(); // (k, m, hybrid sweep, memory sweep)
        for &kk in &ks {
            for &m in &ms {
                let cfg = rpq_config(TrainingMode::Full, &grid_scale, m, kk);
                let (rpq, _) = train_rpq(&cfg, &bench.base, &vamana);
                let inner = rpq.inner();
                let clone_box: Box<dyn VectorCompressor> =
                    Box::new(rpq_quant::OptimizedProductQuantizer::from_parts(
                        inner.rotation().clone(),
                        inner.pq().clone(),
                        inner.train_seconds(),
                    ));
                let hyb = hybrid_sweep(
                    &bench,
                    &vamana,
                    Box::new(rpq) as Box<dyn VectorCompressor>,
                    scale,
                    &format!("fig9-{}-{kk}-{m}", kind.name()),
                );
                let mem = memory_sweep(&bench, &hnsw, clone_box, scale);
                cells.push((kk, m, hyb, mem));
            }
        }
        let named: Vec<(String, Vec<rpq_anns::SweepPoint>)> = cells
            .iter()
            .map(|(kk, m, h, _)| (format!("K{kk}M{m}"), h.clone()))
            .collect();
        let target = common_target(&named, 0.95);
        for &kk in &ks {
            let mut row9 = vec![kind.name().to_string(), kk.to_string()];
            let mut row10 = vec![kind.name().to_string(), kk.to_string()];
            for &m in &ms {
                let (_, _, hyb, mem) = cells
                    .iter()
                    .find(|(ck, cm, _, _)| *ck == kk && *cm == m)
                    .unwrap();
                let qps = rpq_anns::qps_at_recall(hyb, target).unwrap_or(0.0);
                let max_recall = mem.iter().map(|p| p.recall).fold(0.0f32, f32::max);
                row9.push(fmt(qps));
                row10.push(fmt(max_recall));
                outs.push(Out {
                    dataset: kind.name().into(),
                    k: kk,
                    m,
                    hybrid_qps: qps,
                    memory_max_recall: max_recall,
                });
            }
            f9.push_row(row9);
            f10.push_row(row10);
        }
    }
    write_json("fig9_fig10", &outs);
    (f9, f10)
}

/// **Figure 11**: scalability of DiskANN-PQ vs DiskANN-RPQ (hybrid) over
/// dataset size — QPS at a common recall operating point per size.
pub fn fig11(scale: &Scale) -> Report {
    let mut report = Report::new(
        "fig11",
        "Scalability, hybrid: QPS at common recall vs scale (paper Fig. 11)",
        &scale.label(),
        &["Dataset", "n", "DiskANN-PQ", "DiskANN-RPQ"],
    );
    #[derive(Serialize)]
    struct Out {
        dataset: String,
        n: usize,
        pq_qps: f32,
        rpq_qps: f32,
    }
    let mut outs = Vec::new();
    for kind in [DatasetKind::BigAnn, DatasetKind::Deep] {
        for &n in &scale.scalability_sizes {
            let bench = make_bench(kind, n, scale.n_query, scale.k, scale.seed);
            let vamana = Arc::new(build_graph(GraphKind::Vamana, &bench.base, scale.seed));
            let mut sweeps = Vec::new();
            for method in [Method::Pq, Method::Rpq(TrainingMode::Full)] {
                let compressor =
                    build_method(method, &bench.base, &vamana, scale, scale.m, scale.kk);
                let pts = hybrid_sweep(
                    &bench,
                    &vamana,
                    compressor,
                    scale,
                    &format!(
                        "fig11-{}-{n}-{}",
                        kind.name(),
                        method.name().replace(['&', ' ', '/'], "")
                    ),
                );
                sweeps.push((method.name(), pts));
            }
            let target = common_target(&sweeps, 0.95);
            let pq_qps = rpq_anns::qps_at_recall(&sweeps[0].1, target).unwrap_or(0.0);
            let rpq_qps = rpq_anns::qps_at_recall(&sweeps[1].1, target).unwrap_or(0.0);
            report.push_row(vec![
                kind.name().into(),
                n.to_string(),
                fmt(pq_qps),
                fmt(rpq_qps),
            ]);
            outs.push(Out {
                dataset: kind.name().into(),
                n,
                pq_qps,
                rpq_qps,
            });
        }
    }
    write_json("fig11", &outs);
    report
}

/// **Figure 12**: scalability of HNSW-PQ vs HNSW-RPQ (in-memory) — QPS at a
/// fixed beam width with the achieved recall annotated (the paper's bar
/// labels).
pub fn fig12(scale: &Scale) -> Report {
    let mut report = Report::new(
        "fig12",
        "Scalability, in-memory: QPS (recall annotated) vs scale (paper Fig. 12)",
        &scale.label(),
        &[
            "Dataset",
            "n",
            "HNSW-PQ QPS",
            "PQ recall",
            "HNSW-RPQ QPS",
            "RPQ recall",
        ],
    );
    #[derive(Serialize)]
    struct Out {
        dataset: String,
        n: usize,
        pq_qps: f32,
        pq_recall: f32,
        rpq_qps: f32,
        rpq_recall: f32,
    }
    let ef = 64usize;
    let mut outs = Vec::new();
    for kind in [DatasetKind::BigAnn, DatasetKind::Deep] {
        for &n in &scale.scalability_sizes {
            let bench = make_bench(kind, n, scale.n_query, scale.k, scale.seed);
            let hnsw = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, scale.seed));
            let mut cells = Vec::new();
            for method in [Method::Pq, Method::Rpq(TrainingMode::Full)] {
                let compressor = build_method(method, &bench.base, &hnsw, scale, scale.m, scale.kk);
                let one = crate::scale::Scale {
                    efs: vec![ef],
                    ..scale.clone()
                };
                let pts = memory_sweep(&bench, &hnsw, compressor, &one);
                cells.push(pts[0]);
            }
            report.push_row(vec![
                kind.name().into(),
                n.to_string(),
                fmt(cells[0].qps),
                fmt(cells[0].recall),
                fmt(cells[1].qps),
                fmt(cells[1].recall),
            ]);
            outs.push(Out {
                dataset: kind.name().into(),
                n,
                pq_qps: cells[0].qps,
                pq_recall: cells[0].recall,
                rpq_qps: cells[1].qps,
                rpq_recall: cells[1].recall,
            });
        }
    }
    write_json("fig12", &outs);
    report
}
