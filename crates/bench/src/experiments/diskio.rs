//! The `diskio` experiment: the pipelined disk engine's `io_width ×
//! queue_depth` trade-off surface (DESIGN.md §10 — no direct paper
//! counterpart; it characterizes the repo's own DiskANN-style subsystem
//! the way DiskANN sweeps its beam width W).
//!
//! One SIFT-like dataset, one Vamana graph, one PQ compressor, one hybrid
//! index with a trace-warmed node cache — then every (io_width,
//! queue_depth) policy re-points the same index via
//! [`DiskIndex::set_io_policy`] and sweeps the scale's beam widths.
//! `io_width` is the frontier batch the engine stages per iteration (the
//! sweep's W axis; width 1 is the serial engine, bit-identical to the
//! pre-pipeline code). `queue_depth` parameterizes the modelled device's
//! channel parallelism: at depth 1 a wider stage only buys coalescing and
//! compute overlap; at depth 8 batched commands genuinely run concurrently
//! and the modelled I/O bill drops toward `1/depth`.
//!
//! The headline readout (and the CI gate): at matched ef, pipelined QPS at
//! `io_width ≥ 8` on the deep-queue device is well above the serial
//! width-1 engine, while recall stays within 0.02 — extra speculative
//! reads widen the explored region, they never shrink it.

use serde::Serialize;

use rpq_anns::{sweep_disk, DiskIndex, DiskIndexConfig, SsdModel};
use rpq_data::synth::DatasetKind;
use rpq_graph::VamanaConfig;
use rpq_quant::{PqConfig, ProductQuantizer};

use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::{make_bench, store_path};

/// One (io_width, queue_depth, ef) operating point.
#[derive(Serialize, Clone, Copy, Debug)]
pub struct DiskIoPoint {
    pub io_width: usize,
    pub queue_depth: usize,
    pub ef: usize,
    pub recall: f32,
    pub qps: f32,
    pub io_ms: f32,
    pub stall_ms: f32,
    pub coalesced_ios: f32,
    pub cache_hit_rate: f32,
}

/// Frontier widths swept (width 1 is the serial baseline the gates
/// compare against).
fn widths() -> Vec<usize> {
    vec![1, 4, 8, 16]
}

/// Device queue depths swept (modelled channel parallelism).
fn depths() -> Vec<usize> {
    vec![1, 8]
}

/// The modelled NVMe-style device at a given channel count: 80 µs of
/// per-command overhead plus 8 µs per 4 KiB sector (DESIGN.md §10).
fn device(queue_depth: usize) -> SsdModel {
    SsdModel {
        service_us: 80.0,
        transfer_us_per_sector: 8.0,
        channels: queue_depth,
    }
}

/// **diskio**: pipelined disk-engine QPS/recall vs `io_width ×
/// queue_depth`, with coalescing and cache-hit columns.
pub fn diskio(scale: &Scale) -> Report {
    let mut report = Report::new(
        "diskio",
        "Pipelined disk engine: io_width x queue_depth sweep",
        &scale.label(),
        &[
            "W",
            "QD",
            "ef",
            "Recall@10",
            "QPS",
            "IO ms",
            "Stall ms",
            "Cmds",
            "Cache hit",
        ],
    );
    let bench = make_bench(
        DatasetKind::Sift,
        scale.n_base,
        scale.n_query,
        scale.k,
        scale.seed,
    );
    let graph = VamanaConfig {
        r: 32,
        l: 64,
        ..Default::default()
    }
    .build(&bench.base);
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: scale.m,
            k: scale.kk,
            seed: scale.seed,
            ..Default::default()
        },
        &bench.base,
    );
    let cfg = DiskIndexConfig {
        cache_nodes: scale.n_base / 8,
        ..DiskIndexConfig::new(store_path("diskio"))
    };
    let mut index =
        DiskIndex::build(pq, &bench.base, &graph, cfg).expect("disk index build failed");

    // Trace-driven cache admission: warm on base vectors reused as
    // queries — distribution-matched but disjoint from the evaluation
    // query set, so the reported hit rate is not self-fulfilling.
    let warm_ids: Vec<usize> = (0..scale.n_query.min(scale.n_base)).collect();
    let warm = bench.base.subset(&warm_ids);
    let mid_ef = scale.efs[scale.efs.len() / 2];
    let pinned = index.warm_cache_by_trace(&warm, mid_ef);
    assert!(pinned > 0, "trace warm-up must pin nodes");

    let mut points = Vec::new();
    for &qd in &depths() {
        for &w in &widths() {
            index.set_io_policy(w, device(qd));
            for p in sweep_disk(&index, &bench.queries, &bench.gt, scale.k, &scale.efs) {
                let point = DiskIoPoint {
                    io_width: w,
                    queue_depth: qd,
                    ef: p.ef,
                    recall: p.recall,
                    qps: p.qps,
                    io_ms: p.io_ms,
                    stall_ms: p.io_stall_ms,
                    coalesced_ios: p.coalesced_ios,
                    cache_hit_rate: p.cache_hit_rate,
                };
                report.push_row(vec![
                    point.io_width.to_string(),
                    point.queue_depth.to_string(),
                    point.ef.to_string(),
                    fmt(point.recall),
                    fmt(point.qps),
                    fmt(point.io_ms),
                    fmt(point.stall_ms),
                    fmt(point.coalesced_ios),
                    fmt(point.cache_hit_rate),
                ]);
                points.push(point);
            }
        }
    }
    write_json("diskio", &points);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_axes_cover_the_gated_configs() {
        // The CI gate compares widths 1, 4 and 8 at queue depth 8; the
        // sweep must produce those rows.
        assert!(widths().contains(&1));
        assert!(widths().contains(&4));
        assert!(widths().contains(&8));
        assert!(depths().contains(&8));
        assert!(device(8).channels == 8 && device(1).channels == 1);
    }
}
