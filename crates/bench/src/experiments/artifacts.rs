//! Table 2 (ranking-term ablation), Figure 4 (valuable-dimension
//! distribution), Tables 4–5 (training time & model size).

use std::sync::Arc;

use serde::Serialize;

use rpq_anns::InMemoryIndex;
use rpq_core::{train_rpq, TrainingMode};
use rpq_data::synth::DatasetKind;
use rpq_data::Dataset;
use rpq_graph::{beam_search, ProximityGraph, SearchScratch};
use rpq_quant::catalyst::{Catalyst, CatalystConfig};
use rpq_quant::{PqConfig, ProductQuantizer, SdcEstimator, VectorCompressor};

use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::{build_graph, make_bench, rpq_config, GraphKind};

/// **Table 2**: recall@10 when ranking beam-search candidates with the
/// truncated Eq. 5 (first two terms — realised as SDC, whose quantized
/// query discards the angle-term precision) vs the full Eq. 5 (all three
/// terms — the exact distance comparison, realised with full-precision
/// distances). The paper's row-2 magnitudes (0.95+) correspond to the
/// exact comparison; the gap between rows is the information carried by
/// the third (angle) term.
pub fn table2(scale: &Scale) -> Report {
    let kinds = [
        DatasetKind::Sift,
        DatasetKind::Deep,
        DatasetKind::Ukbench,
        DatasetKind::Gist,
    ];
    let mut report = Report::new(
        "table2",
        "Recall@10 with partial vs full ranking terms (paper Table 2)",
        &scale.label(),
        &["Ranking", "Sift", "Deep", "Ukbench", "Gist"],
    );
    let ef = *scale.efs.last().unwrap();
    let mut partial_row = vec!["w/ neighbor & routing terms (SDC)".to_string()];
    let mut full_row = vec!["by Eq. 5, all terms (exact)".to_string()];
    #[derive(Serialize)]
    struct Out {
        dataset: String,
        sdc_recall: f32,
        adc_recall: f32,
    }
    let mut outs = Vec::new();
    for kind in kinds {
        let bench = make_bench(kind, scale.n_base, scale.n_query, scale.k, scale.seed);
        let graph = build_graph(GraphKind::Hnsw, &bench.base, scale.seed);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: scale.m,
                k: scale.kk,
                seed: scale.seed,
                ..Default::default()
            },
            &bench.base,
        );
        let codes = pq.encode_dataset(&bench.base);
        let mut scratch = SearchScratch::new();
        let mut run = |full_terms: bool| -> f32 {
            let mut results = Vec::new();
            for q in bench.queries.iter() {
                let res = if full_terms {
                    // All three Eq. 5 terms = exact distance comparison.
                    let est = rpq_graph::ExactEstimator::new(&bench.base, q);
                    beam_search(&graph, &est, ef, scale.k, &mut scratch).0
                } else {
                    // First two terms only: symmetric (SDC) estimate.
                    let est = SdcEstimator::new(pq.codebook(), &codes, q);
                    beam_search(&graph, &est, ef, scale.k, &mut scratch).0
                };
                results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
            }
            bench.gt.recall(&results)
        };
        let sdc_recall = run(false);
        let adc_recall = run(true);
        partial_row.push(fmt(sdc_recall));
        full_row.push(fmt(adc_recall));
        outs.push(Out {
            dataset: kind.name().into(),
            sdc_recall,
            adc_recall,
        });
    }
    report.push_row(partial_row);
    report.push_row(full_row);
    write_json("table2", &outs);
    report
}

/// **Figure 4**: distribution of valuable dimensions (per-chunk variance
/// share) before vs after adaptive vector decomposition. Uses a
/// deliberately imbalanced variant of the dataset (exponentially decaying
/// per-dimension scale) so vertical division starts badly, then reports how
/// the learned rotation redistributes variance across the M chunks.
pub fn fig4(scale: &Scale) -> Report {
    let mut report = Report::new(
        "fig4",
        "Per-chunk variance share before/after adaptive decomposition (paper Fig. 4)",
        &scale.label(),
        &[
            "Dataset",
            "Stage",
            "chunk variance shares (M chunks)",
            "max/mean imbalance",
        ],
    );
    #[derive(Serialize)]
    struct Out {
        dataset: String,
        before: Vec<f32>,
        after_rpq: Vec<f32>,
        after_opq: Vec<f32>,
        imbalance_before: f32,
        imbalance_after: f32,
        imbalance_opq: f32,
    }
    let mut outs = Vec::new();
    for kind in [DatasetKind::Sift, DatasetKind::Deep] {
        let bench = make_bench(kind, scale.n_base.min(3000), 10, scale.k, scale.seed);
        let imbalanced = imbalance(&bench.base);
        let graph = Arc::new(build_graph(GraphKind::Vamana, &imbalanced, scale.seed));
        // The paper's Fig. 4 trains the rotation for 100 iterations; the
        // rotation only moves through the losses, so this experiment uses a
        // longer schedule and a hotter LR than the QPS experiments.
        let mut cfg = rpq_config(TrainingMode::Full, scale, scale.m, scale.kk.min(64));
        cfg.epochs = (scale.rpq_epochs * 2).max(4);
        cfg.steps_per_epoch = (scale.rpq_steps * 2).max(25);
        cfg.lr = 5e-3;
        let (rpq, _) = train_rpq(&cfg, &imbalanced, &graph);
        let before = chunk_variance_shares(&imbalanced, scale.m);
        let rotated = rpq.inner().rotate_dataset(&imbalanced);
        let after = chunk_variance_shares(&rotated, scale.m);
        // OPQ's distortion-minimising rotation as the balancing reference.
        let opq = rpq_quant::OptimizedProductQuantizer::train(
            &rpq_quant::OpqConfig {
                pq: rpq_quant::PqConfig {
                    m: scale.m,
                    k: scale.kk.min(64),
                    ..Default::default()
                },
                iters: 6,
            },
            &imbalanced,
        );
        let after_opq = chunk_variance_shares(&opq.rotate_dataset(&imbalanced), scale.m);
        let ib = imbalance_metric(&before);
        let ia = imbalance_metric(&after);
        let io = imbalance_metric(&after_opq);
        report.push_row(vec![
            kind.name().into(),
            "before".into(),
            before
                .iter()
                .map(|v| fmt(*v))
                .collect::<Vec<_>>()
                .join(", "),
            fmt(ib),
        ]);
        report.push_row(vec![
            kind.name().into(),
            "after (RPQ rotation)".into(),
            after.iter().map(|v| fmt(*v)).collect::<Vec<_>>().join(", "),
            fmt(ia),
        ]);
        report.push_row(vec![
            kind.name().into(),
            "after (OPQ rotation, reference)".into(),
            after_opq
                .iter()
                .map(|v| fmt(*v))
                .collect::<Vec<_>>()
                .join(", "),
            fmt(io),
        ]);
        outs.push(Out {
            dataset: kind.name().into(),
            before,
            after_rpq: after,
            after_opq,
            imbalance_before: ib,
            imbalance_after: ia,
            imbalance_opq: io,
        });
    }
    write_json("fig4", &outs);
    report
}

/// Applies an exponentially decaying per-dimension scale (the imbalance
/// vertical division suffers from; same shape as the OPQ unit tests).
fn imbalance(data: &Dataset) -> Dataset {
    let d = data.dim();
    let mut out = Dataset::with_capacity(d, data.len());
    let mut v = vec![0.0f32; d];
    for row in data.iter() {
        for (i, (dst, &src)) in v.iter_mut().zip(row).enumerate() {
            *dst = src * 3.0 / (1.0 + i as f32).sqrt();
        }
        out.push(&v);
    }
    out
}

/// Fraction of total variance carried by each of the M vertical chunks.
fn chunk_variance_shares(data: &Dataset, m: usize) -> Vec<f32> {
    let var = data.dimension_variance();
    let dsub = var.len() / m;
    let total: f32 = var.iter().sum::<f32>().max(1e-12);
    (0..m)
        .map(|j| var[j * dsub..(j + 1) * dsub].iter().sum::<f32>() / total)
        .collect()
}

fn imbalance_metric(shares: &[f32]) -> f32 {
    let mean = shares.iter().sum::<f32>() / shares.len() as f32;
    shares.iter().cloned().fold(0.0f32, f32::max) / mean.max(1e-12)
}

/// **Tables 4 & 5**: training time (s at reproduction scale; the paper
/// reports hours at 500K-vector scale) and model size (MB) for Catalyst vs
/// RPQ.
pub fn tables45(scale: &Scale) -> (Report, Report) {
    let mut t4 = Report::new(
        "table4",
        "Training time, seconds (paper Table 4 reports hours at 500K scale)",
        &scale.label(),
        &["Method", "BigANN", "Deep", "Sift", "Gist", "Ukbench"],
    );
    let mut t5 = Report::new(
        "table5",
        "Model size, MB (paper Table 5)",
        &scale.label(),
        &["Method", "BigANN", "Deep", "Sift", "Gist", "Ukbench"],
    );
    #[derive(Serialize)]
    struct Out {
        dataset: String,
        catalyst_seconds: f32,
        rpq_seconds: f32,
        catalyst_mb: f32,
        rpq_mb: f32,
    }
    let kinds = [
        DatasetKind::BigAnn,
        DatasetKind::Deep,
        DatasetKind::Sift,
        DatasetKind::Gist,
        DatasetKind::Ukbench,
    ];
    let mut cat_time = vec!["Catalyst".to_string()];
    let mut rpq_time = vec!["RPQ".to_string()];
    let mut cat_size = vec!["Catalyst".to_string()];
    let mut rpq_size = vec!["RPQ".to_string()];
    let mut outs = Vec::new();
    for kind in kinds {
        let bench = make_bench(kind, scale.n_base, 10, scale.k, scale.seed);
        let graph = Arc::new(build_graph(GraphKind::Vamana, &bench.base, scale.seed));
        let cat = Catalyst::train(
            &CatalystConfig {
                pq: PqConfig {
                    m: scale.m,
                    k: scale.kk,
                    seed: scale.seed,
                    ..Default::default()
                },
                seed: scale.seed,
                ..Default::default()
            },
            &bench.base,
        );
        let cfg = rpq_config(TrainingMode::Full, scale, scale.m, scale.kk);
        let (rpq, stats) = train_rpq(&cfg, &bench.base, &graph);
        let mb = |b: usize| b as f32 / (1024.0 * 1024.0);
        cat_time.push(fmt(cat.train_seconds()));
        rpq_time.push(fmt(stats.seconds));
        cat_size.push(fmt(mb(cat.model_bytes())));
        rpq_size.push(fmt(mb(rpq.model_bytes())));
        outs.push(Out {
            dataset: kind.name().into(),
            catalyst_seconds: cat.train_seconds(),
            rpq_seconds: stats.seconds,
            catalyst_mb: mb(cat.model_bytes()),
            rpq_mb: mb(rpq.model_bytes()),
        });
        // Sanity: the quantizers remain servable (guards against silent
        // training collapse inside the timing experiment).
        let idx = InMemoryIndex::build(
            Box::new(rpq) as Box<dyn VectorCompressor>,
            &bench.base,
            ProximityGraph::clone(&graph),
        );
        assert!(idx.memory_bytes() > 0);
    }
    t4.push_row(cat_time);
    t4.push_row(rpq_time);
    t5.push_row(cat_size);
    t5.push_row(rpq_size);
    write_json("table4_table5", &outs);
    (t4, t5)
}
