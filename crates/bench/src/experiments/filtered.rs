//! The `filtered` experiment: filtered-ANN recall, QPS, and traversal
//! work vs predicate selectivity, for both filter strategies
//! (DESIGN.md §12 — no paper counterpart; this measures the repo's
//! predicate layer).
//!
//! The corpus is SIFT-like with one label per point derived from its
//! cluster (`generate_labeled`), so a predicate's matching points are
//! geometrically clumped — the hard case, where an unfiltered traversal
//! can wander regions with no matches at all. The label ladder in
//! [`Scale::filter_labels`] sweeps selectivity ~50% → ~2%; at every
//! rung both strategies answer the same queries through the disk engine
//! (PQ routing + exact rerank, so recall reflects the strategy rather
//! than the ADC quantization floor):
//!
//! - **in-traversal** (Filtered-DiskANN-style): the beam routes through
//!   non-matching vertices but only admits matches to the result heap.
//! - **post-filter** (ACORN-style): an unfiltered search at
//!   `ef × inflation`, filtered and truncated afterwards.
//!
//! Recall is measured against *filtered* exact ground truth
//! (`brute_force_knn_filtered`). The expected shape: at high selectivity
//! the strategies tie; as the predicate sharpens, post-filter pays
//! `inflation×` the traversal and I/O work and still loses recall once
//! the inflated beam holds fewer than `k` matches, while in-traversal
//! keeps collecting admissible candidates at unchanged routing cost.

use serde::Serialize;

use rpq_anns::{hybrid_qps, DiskIndex, DiskIndexConfig, FilterStrategy};
use rpq_data::synth::DatasetKind;
use rpq_data::{brute_force_knn_filtered, LabelPredicate};
use rpq_graph::{HnswConfig, SearchScratch};
use rpq_quant::{PqConfig, ProductQuantizer};

use crate::report::{fmt, write_json, Report};
use crate::scale::Scale;
use crate::setup::store_path;

/// One (selectivity, strategy, beam width) operating point.
#[derive(Serialize, Clone, Debug)]
pub struct FilteredPoint {
    /// The swept label (predicate = `LabelPredicate::single(label)`).
    pub label: usize,
    /// Fraction of the base set the predicate matches.
    pub selectivity: f32,
    /// `in-traversal` or `post-filter`.
    pub strategy: String,
    pub ef: usize,
    /// recall@k against filtered exact ground truth.
    pub recall_filtered: f32,
    /// Throughput charging the modelled I/O stall (see `hybrid_qps`).
    pub qps: f32,
    /// Mean next-hop selections per query — the traversal-work axis.
    pub hops: f32,
    /// Mean distance evaluations per query.
    pub dist_comps: f32,
    /// Mean unhidden (QPS-charged) modelled I/O per query, ms.
    pub io_stall_ms: f32,
}

/// **filtered**: recall/QPS/work vs selectivity for both strategies.
pub fn filtered(scale: &Scale) -> Report {
    let mut report = Report::new(
        "filtered",
        "Filtered search: recall and traversal work vs predicate selectivity",
        &scale.label(),
        &[
            "Label",
            "Selectivity",
            "Strategy",
            "ef",
            "Recall@10 (filt)",
            "QPS",
            "Hops",
            "Dists",
            "IO stall ms",
        ],
    );
    // Labeled SIFT-like corpus: same generator configuration as the other
    // experiments' `DatasetKind::Sift`, plus the geometric cluster→label
    // map (the vectors are bit-identical to the unlabeled draw).
    let cfg = DatasetKind::Sift.config();
    let (all, all_labels) =
        cfg.generate_labeled(scale.n_base + scale.n_query, scale.seed, scale.label_vocab);
    let (base, queries) = all.split_at(scale.n_base);
    let labels = all_labels.subset(&(0..scale.n_base).collect::<Vec<_>>());
    let pq = ProductQuantizer::train(
        &PqConfig {
            m: scale.m,
            k: scale.kk,
            seed: scale.seed,
            ..Default::default()
        },
        &base,
    );
    let graph = HnswConfig {
        m: 16,
        ef_construction: 100,
        seed: scale.seed,
    }
    .build(&base);
    let mut index = DiskIndex::build(
        pq,
        &base,
        &graph,
        DiskIndexConfig::new(store_path("filtered")),
    )
    .expect("disk index build failed");
    index.set_labels(labels.clone());
    let strategies = [
        FilterStrategy::DuringTraversal,
        FilterStrategy::PostFilter {
            inflation: scale.filter_inflation,
        },
    ];

    let mut points = Vec::new();
    let mut scratch = SearchScratch::new();
    for &label in &scale.filter_labels {
        let pred = LabelPredicate::single(label);
        let selectivity = labels.selectivity(pred);
        assert!(
            labels.count_matching(pred) > 0,
            "label {label} matches nothing at this scale; shrink filter_labels"
        );
        let gt = brute_force_knn_filtered(&base, &queries, scale.k, &labels, pred);
        for strategy in strategies {
            for &ef in &scale.efs {
                let mut ids: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
                let mut hops = 0usize;
                let mut dists = 0usize;
                let mut stall = 0.0f32;
                let t0 = std::time::Instant::now();
                for q in queries.iter() {
                    let (res, stats) =
                        index.search_filtered(q, pred, strategy, ef, scale.k, &mut scratch);
                    hops += stats.hops;
                    dists += stats.dist_comps;
                    stall += stats.io_stall_seconds;
                    ids.push(res.iter().map(|n| n.id).collect());
                }
                let wall = t0.elapsed().as_secs_f32().max(1e-9);
                let n = queries.len().max(1) as f32;
                let point = FilteredPoint {
                    label,
                    selectivity,
                    strategy: strategy.name().to_string(),
                    ef,
                    recall_filtered: gt.recall(&ids),
                    qps: hybrid_qps(queries.len(), wall, stall, 1),
                    hops: hops as f32 / n,
                    dist_comps: dists as f32 / n,
                    io_stall_ms: stall * 1e3 / n,
                };
                report.push_row(vec![
                    point.label.to_string(),
                    fmt(point.selectivity),
                    point.strategy.clone(),
                    point.ef.to_string(),
                    fmt(point.recall_filtered),
                    fmt(point.qps),
                    fmt(point.hops),
                    fmt(point.dist_comps),
                    fmt(point.io_stall_ms),
                ]);
                points.push(point);
            }
        }
    }
    write_json("filtered", &points);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_labels_form_a_selectivity_ladder_at_every_preset() {
        for scale in [Scale::ci(), Scale::small(), Scale::full()] {
            assert!(scale.filter_labels.len() >= 3, "need >= 3 selectivities");
            assert!(
                scale.filter_labels.windows(2).all(|w| w[0] < w[1]),
                "labels must be ascending (descending selectivity)"
            );
            assert!(scale.filter_labels.iter().all(|&l| l < scale.label_vocab));
            assert!(scale.filter_inflation >= 2);
            assert!(scale.zipf_s > 0.0);
        }
    }
}
