//! Result reporting: JSON persistence (so EXPERIMENTS.md numbers are
//! regenerable) and paper-style markdown tables on stdout.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A generic experiment report: one named table of rows.
#[derive(Serialize, Debug, Clone)]
pub struct Report {
    /// Experiment id (`table2`, `fig5`, …).
    pub id: String,
    /// Paper artifact this regenerates.
    pub title: String,
    /// Scale description.
    pub scale: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of stringified cells (numbers pre-formatted).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(id: &str, title: &str, scale: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            scale: scale.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "\n## {} — {} ({})\n\n",
            self.id, self.title, self.scale
        ));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Prints the markdown table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Writes a serialisable result to `bench_results/<id>.json` (workspace
/// root when run via cargo, else cwd).
pub fn write_json<T: Serialize>(id: &str, value: &T) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("cannot create bench_results dir");
    let path = dir.join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialisation failed");
    fs::write(&path, json).expect("cannot write result json");
    path
}

fn results_dir() -> PathBuf {
    // Prefer the workspace root (set by cargo run); fall back to cwd.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            return root.join("bench_results");
        }
    }
    PathBuf::from("bench_results")
}

/// Formats a float compactly for table cells.
pub fn fmt(v: f32) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders() {
        let mut r = Report::new("t", "Test", "tiny", &["a", "b"]);
        r.push_row(vec!["1".into(), "2".into()]);
        let md = r.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("t", "Test", "tiny", &["a", "b"]);
        r.push_row(vec!["1".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.123");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1234.6), "1235");
    }

    #[test]
    fn json_roundtrip() {
        let r = Report::new("unit-test-report", "Test", "tiny", &["x"]);
        let path = write_json("unit-test-report", &r);
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back["id"], "unit-test-report");
        std::fs::remove_file(path).ok();
    }
}
