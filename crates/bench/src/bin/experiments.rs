//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p rpq-bench --release --bin experiments -- all
//! cargo run -p rpq-bench --release --bin experiments -- fig5 table6
//! RPQ_SCALE=ci cargo run -p rpq-bench --release --bin experiments -- table2
//! cargo run -p rpq-bench --release --bin experiments -- serve
//! ```
//!
//! Results print as markdown and persist to `bench_results/<id>.json`.

use std::time::Instant;

use rpq_bench::experiments::{
    ablation, artifacts, cluster, curves, diskio, filtered, hotpath, sensitivity, serve, streaming,
    threads,
};
use rpq_bench::Scale;

const ALL: &[&str] = &[
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "serve",
    "streaming",
    "threads",
    "hotpath",
    "diskio",
    "cluster",
    "filtered",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments <id>... | all");
        eprintln!("ids: {}", ALL.join(", "));
        eprintln!("scale via RPQ_SCALE=ci|small|full (default small)");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let scale = Scale::from_env();
    println!("# RPQ experiment run ({})", scale.label());

    let mut wanted: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in &wanted {
        if !ALL.contains(id) {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        }
    }
    // Paired experiments run once for both ids.
    dedup_pairs(&mut wanted);

    for id in wanted {
        let start = Instant::now();
        match id {
            "table2" => artifacts::table2(&scale).print(),
            "fig4" => artifacts::fig4(&scale).print(),
            "fig5" => curves::fig5(&scale).print(),
            "fig6" => curves::fig6(&scale).print(),
            "fig7" => curves::fig7(&scale).print(),
            "table4" | "table5" => {
                let (t4, t5) = artifacts::tables45(&scale);
                t4.print();
                t5.print();
            }
            "table6" | "table7" => {
                let (t6, t7) = ablation::tables67(&scale);
                t6.print();
                t7.print();
            }
            "fig8" => ablation::fig8(&scale).print(),
            "fig9" | "fig10" => {
                let (f9, f10) = sensitivity::fig910(&scale);
                f9.print();
                f10.print();
            }
            "fig11" => sensitivity::fig11(&scale).print(),
            "fig12" => sensitivity::fig12(&scale).print(),
            "serve" => serve::serve(&scale).print(),
            "streaming" => streaming::streaming(&scale).print(),
            "threads" => threads::threads(&scale).print(),
            "hotpath" => hotpath::hotpath(&scale).print(),
            "diskio" => diskio::diskio(&scale).print(),
            "cluster" => cluster::cluster(&scale).print(),
            "filtered" => filtered::filtered(&scale).print(),
            _ => unreachable!(),
        }
        eprintln!("[{id}] done in {:.1}s", start.elapsed().as_secs_f32());
    }
}

/// table4/table5, table6/table7 and fig9/fig10 are produced together; keep
/// only the first of each pair.
fn dedup_pairs(ids: &mut Vec<&str>) {
    let pairs = [
        ("table5", "table4"),
        ("table7", "table6"),
        ("fig10", "fig9"),
    ];
    for (dup, canonical) in pairs {
        if ids.contains(&dup) && ids.contains(&canonical) {
            ids.retain(|x| *x != dup);
        }
    }
    let mut seen = std::collections::HashSet::new();
    ids.retain(|x| seen.insert(*x));
}
