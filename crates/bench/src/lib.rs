//! # rpq-bench
//!
//! Experiment drivers that regenerate **every table and figure** of the
//! paper's evaluation (§8), at a laptop scale controlled by
//! [`scale::Scale`] (env var `RPQ_SCALE=ci|small|full`). Each experiment:
//!
//! 1. builds the datasets/graphs/compressors it needs through [`setup`],
//! 2. runs the measurement through `rpq-anns`' harness,
//! 3. prints a paper-style table and writes `bench_results/<id>.json`.
//!
//! Run them with `cargo run -p rpq-bench --release --bin experiments -- all`
//! (or a specific id: `table2`, `fig4` … `fig12`, `serve`). The mapping
//! from paper artifact to experiment id is DESIGN.md §5; measured-vs-paper
//! numbers are recorded in EXPERIMENTS.md. The `serve` id has no paper
//! counterpart: it measures the repo's own sharded serving layer
//! (QPS and p50/p95/p99 latency vs shard count, DESIGN.md §7.5).

pub mod experiments;
pub mod report;
pub mod scale;
pub mod setup;

pub use report::{write_json, Report};
pub use scale::Scale;
pub use setup::{build_graph, make_bench, Bench, GraphKind, Method};
