//! Experiment scale presets.
//!
//! The paper evaluates at 1M–1B vectors on a 2×Xeon server; the reproduction
//! runs the same pipelines at a proportional laptop scale (DESIGN.md §4).
//! `RPQ_SCALE=ci|small|full` selects a preset; `small` is the default used
//! by EXPERIMENTS.md.

/// Sizing knobs shared by all experiments.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Base vectors per dataset.
    pub n_base: usize,
    /// Held-out queries.
    pub n_query: usize,
    /// recall@k cut-off (the paper reports recall@10).
    pub k: usize,
    /// Beam widths swept for QPS-vs-recall curves.
    pub efs: Vec<usize>,
    /// Codewords per sub-codebook (paper: 256).
    pub kk: usize,
    /// PQ chunks M.
    pub m: usize,
    /// Dataset sizes for the scalability experiments (stand-in for the
    /// paper's 1M→1B axis).
    pub scalability_sizes: Vec<usize>,
    /// Shard counts swept by the `serve` experiment (DESIGN.md §7).
    pub shard_counts: Vec<usize>,
    /// Insert/delete/query rounds of the `streaming` experiment
    /// (DESIGN.md §8.4).
    pub streaming_rounds: usize,
    /// Per-round recall@k floor the `streaming` experiment asserts; pinned
    /// below observed values with margin for the ADC quantization ceiling
    /// at each preset's K.
    pub streaming_recall_floor: f32,
    /// Replica counts swept by the `cluster` experiment (DESIGN.md §11).
    pub cluster_replicas: Vec<usize>,
    /// Offered load as fractions of single-replica capacity; must span
    /// under- and over-load so the shed curve has both tails.
    pub cluster_load_fracs: Vec<f32>,
    /// Requests per open-loop run of the `cluster` experiment.
    pub cluster_requests: usize,
    /// Admission queue bound of the `cluster` experiment.
    pub cluster_queue_cap: usize,
    /// Label vocabulary of the `filtered` experiment's labeled corpus
    /// (DESIGN.md §12; labels are correlated with cluster geometry).
    pub label_vocab: usize,
    /// Labels swept by the `filtered` experiment. The geometric
    /// cluster→label map makes label `j` cover ~`2^-(j+1)` of the corpus,
    /// so this is a selectivity ladder (0 ≈ 50%, 2 ≈ 12.5%, 5 ≈ 1.6%).
    pub filter_labels: Vec<usize>,
    /// `ef` inflation factor of the post-filter strategy.
    pub filter_inflation: u32,
    /// Zipf exponent for the skewed-traffic rows of the `serve` and
    /// `cluster` experiments (0 = uniform rows only would be pointless,
    /// so presets pick a realistic head-heavy skew).
    pub zipf_s: f64,
    /// RPQ training epochs / steps per epoch for experiment runs.
    pub rpq_epochs: usize,
    pub rpq_steps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny preset for CI and integration tests (~seconds).
    pub fn ci() -> Self {
        Self {
            n_base: 1200,
            n_query: 30,
            k: 10,
            efs: vec![10, 30, 90],
            kk: 32,
            m: 8,
            scalability_sizes: vec![400, 800, 1600],
            shard_counts: vec![1, 2],
            streaming_rounds: 4,
            streaming_recall_floor: 0.5,
            cluster_replicas: vec![1, 2],
            cluster_load_fracs: vec![0.6, 1.2, 2.5],
            cluster_requests: 1200,
            cluster_queue_cap: 32,
            label_vocab: 8,
            filter_labels: vec![0, 2, 5],
            filter_inflation: 4,
            zipf_s: 1.1,
            rpq_epochs: 2,
            rpq_steps: 8,
            seed: 42,
        }
    }

    /// Default preset (~minutes for the full suite).
    pub fn small() -> Self {
        Self {
            n_base: 6000,
            n_query: 100,
            k: 10,
            efs: vec![10, 20, 40, 80, 160, 320],
            // At reproduction scale (6k points) K=256 over-provisions the
            // quantizer and saturates every method at the same ADC ceiling;
            // K=64 reproduces the paper's operating regime, where code
            // capacity is small relative to dataset complexity (8-byte
            // codes vs 1M-1B vectors). The K=256 points appear in the K/M
            // sensitivity grid (fig9/fig10).
            kk: 64,
            m: 8,
            scalability_sizes: vec![1000, 4000, 12000, 30000],
            shard_counts: vec![1, 2, 4],
            streaming_rounds: 6,
            streaming_recall_floor: 0.5,
            cluster_replicas: vec![1, 2, 4],
            cluster_load_fracs: vec![0.5, 1.0, 2.0, 4.0],
            cluster_requests: 4000,
            cluster_queue_cap: 64,
            label_vocab: 8,
            filter_labels: vec![0, 2, 5],
            filter_inflation: 4,
            zipf_s: 1.1,
            rpq_epochs: 3,
            rpq_steps: 15,
            seed: 42,
        }
    }

    /// Larger preset for overnight runs.
    pub fn full() -> Self {
        Self {
            n_base: 50_000,
            n_query: 500,
            k: 10,
            efs: vec![10, 20, 40, 80, 160, 320, 640],
            kk: 256,
            m: 8,
            scalability_sizes: vec![5000, 20_000, 80_000, 200_000],
            shard_counts: vec![1, 2, 4, 8],
            streaming_rounds: 8,
            streaming_recall_floor: 0.55,
            cluster_replicas: vec![1, 2, 4],
            cluster_load_fracs: vec![0.5, 1.0, 2.0, 4.0],
            cluster_requests: 12_000,
            cluster_queue_cap: 128,
            label_vocab: 8,
            filter_labels: vec![0, 2, 5],
            filter_inflation: 4,
            zipf_s: 1.1,
            rpq_epochs: 4,
            rpq_steps: 25,
            seed: 42,
        }
    }

    /// Reads `RPQ_SCALE` (defaults to `small`).
    pub fn from_env() -> Self {
        match std::env::var("RPQ_SCALE").as_deref() {
            Ok("ci") => Self::ci(),
            Ok("full") => Self::full(),
            _ => Self::small(),
        }
    }

    /// Name for report headers.
    pub fn label(&self) -> String {
        format!(
            "n={}, q={}, K={}, M={}",
            self.n_base, self.n_query, self.kk, self.m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(Scale::ci().n_base < Scale::small().n_base);
        assert!(Scale::small().n_base < Scale::full().n_base);
    }

    #[test]
    fn env_fallback_is_small() {
        std::env::remove_var("RPQ_SCALE");
        assert_eq!(Scale::from_env().n_base, Scale::small().n_base);
    }
}
