//! Workspace smoke test: drives the CI-scale experiment setup path end to
//! end (synthetic data → ground truth → graph → quantizer → in-memory
//! search → JSON report) in a few seconds. Its job is catching workspace
//! wiring regressions — a broken manifest, re-export, or shim anywhere in
//! the linalg → quant/graph → anns → bench chain fails this test under a
//! plain `cargo test -q` without running the full experiment suite.

use rpq_bench::setup::{build_graph, make_bench, GraphKind, Method};
use rpq_bench::{write_json, Scale};
use rpq_data::ground_truth::recall_at_k;
use rpq_data::synth::DatasetKind;
use rpq_graph::SearchScratch;
use std::sync::Arc;

#[test]
fn ci_scale_setup_path_works() {
    let scale = Scale::ci();
    let bench = make_bench(
        DatasetKind::Sift,
        scale.n_base,
        scale.n_query,
        scale.k,
        scale.seed,
    );
    assert_eq!(bench.base.len(), scale.n_base);
    assert_eq!(bench.queries.len(), scale.n_query);
    assert_eq!(bench.gt.neighbors.len(), scale.n_query);

    // One graph + one cheap method is enough to cross every crate boundary.
    let graph = Arc::new(build_graph(GraphKind::Hnsw, &bench.base, scale.seed));
    assert_eq!(graph.len(), scale.n_base);
    let compressor = Method::Pq.build(&bench.base, &graph, &scale);

    let index = rpq_anns::InMemoryIndex::build(compressor, &bench.base, (*graph).clone());
    let mut scratch = SearchScratch::new();
    let ef = *scale.efs.last().expect("ci scale has beam widths");
    let mut recall_sum = 0.0;
    for qi in 0..bench.queries.len() {
        let (res, _) = index.search(bench.queries.get(qi), ef, scale.k, &mut scratch);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        recall_sum += recall_at_k(&ids, &bench.gt.neighbors[qi], scale.k);
    }
    let recall = recall_sum / bench.queries.len() as f32;
    assert!(recall > 0.3, "CI-scale recall collapsed: {recall}");

    // JSON reporting path (serde shims + bench_results dir).
    let path = write_json("smoke-test", &vec![recall]);
    assert!(path.exists());
    std::fs::remove_file(path).ok();
}

#[test]
fn ci_scale_serve_experiment_reports_all_operating_points() {
    let scale = Scale::ci();
    let report = rpq_bench::experiments::serve::serve(&scale);
    assert_eq!(report.id, "serve");
    // One row per (shard count, beam width); ≥ 2 shard counts so the
    // QPS-vs-shards readout exists.
    assert!(scale.shard_counts.len() >= 2);
    assert_eq!(report.rows.len() % scale.shard_counts.len(), 0);
    assert!(!report.rows.is_empty());
    let col = |name: &str| {
        report
            .columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("serve report lost its {name} column"))
    };
    let (recall_col, qps_col) = (col("Recall@10"), col("QPS"));
    for row in &report.rows {
        assert_eq!(row.len(), report.columns.len());
        let recall: f32 = row[recall_col].parse().expect("recall cell parses");
        assert!(
            (0.0..=1.0).contains(&recall),
            "recall out of range: {recall}"
        );
        let qps: f32 = row[qps_col].parse().expect("qps cell parses");
        assert!(qps > 0.0);
    }
    // The experiment persists its JSON artifact.
    let json = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .join("bench_results/serve.json");
    assert!(json.exists(), "serve.json not written at {json:?}");
}
