//! Cayley transform — the classical alternative parameterisation of the
//! orthogonal group used by the DESIGN.md ablation against `exp(A)`.
//!
//! For skew-symmetric `A`, the Cayley map
//!
//! ```text
//! R = (I − A)⁻¹ (I + A)
//! ```
//!
//! is orthonormal (it covers rotations without −1 eigenvalues). Its
//! reverse-mode vjp has a clean closed form: with `P = (I − A)⁻¹`, the
//! forward is `R = P (I + A)` and for upstream gradient `Ḡ`
//!
//! ```text
//! Ā = Pᵀ Ḡ + Pᵀ Ḡ Rᵀ
//! ```
//!
//! because `dR = P dA + P dA A ... = P dA (I + R)` — so
//! `⟨Ḡ, dR⟩ = ⟨Pᵀ Ḡ (I + R)ᵀ, dA⟩`.
//!
//! Compared to `exp(A)` (one 2n×2n matrix exponential per backward), the
//! Cayley backward is two n×n multiplies plus a cached inverse — cheaper,
//! at the cost of not covering the full rotation group. `bench_rotation`
//! in `rpq-bench` measures the trade.

use crate::matrix::Matrix;

/// Computes the Cayley transform `R = (I − A)⁻¹ (I + A)` of a (skew-
/// symmetric) matrix. Panics if `I − A` is singular (cannot happen for
/// real skew-symmetric `A`, whose eigenvalues are imaginary).
pub fn cayley(a: &Matrix) -> Matrix {
    let (p, r) = cayley_with_inverse(a);
    let _ = p;
    r
}

/// Cayley transform returning also `P = (I − A)⁻¹` for reuse in the
/// backward pass.
pub fn cayley_with_inverse(a: &Matrix) -> (Matrix, Matrix) {
    assert_eq!(a.rows, a.cols, "cayley requires a square matrix");
    let n = a.rows;
    let i = Matrix::identity(n);
    let i_minus_a = i.sub(a);
    let p = invert(&i_minus_a);
    let i_plus_a = i.add(a);
    let r = p.matmul(&i_plus_a);
    (p, r)
}

/// Reverse-mode vjp of the Cayley transform: given `Ḡ = ∂loss/∂R`, returns
/// `∂loss/∂A = Pᵀ Ḡ (I + R)ᵀ` where `P = (I − A)⁻¹`.
pub fn cayley_vjp(a: &Matrix, g_r: &Matrix) -> Matrix {
    let (p, r) = cayley_with_inverse(a);
    let i_plus_r_t = Matrix::identity(r.rows).add(&r).transpose();
    p.transpose().matmul(g_r).matmul(&i_plus_r_t)
}

/// Dense inverse via Gauss–Jordan with partial pivoting (f64 internally).
fn invert(m: &Matrix) -> Matrix {
    let n = m.rows;
    assert_eq!(m.rows, m.cols, "invert requires a square matrix");
    let mut a: Vec<f64> = m.data.iter().map(|&v| v as f64).collect();
    let mut inv: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in (col + 1)..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        assert!(best > 1e-300, "singular matrix in cayley inverse");
        if piv != col {
            for j in 0..n {
                a.swap(col * n + j, piv * n + j);
                inv.swap(col * n + j, piv * n + j);
            }
        }
        let d = a[col * n + col];
        for j in 0..n {
            a[col * n + j] /= d;
            inv[col * n + j] /= d;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = a[r * n + col];
            if f == 0.0 {
                continue;
            }
            for j in 0..n {
                a[r * n + j] -= f * a[col * n + j];
                inv[r * n + j] -= f * inv[col * n + j];
            }
        }
    }
    Matrix::from_vec(n, n, inv.iter().map(|&v| v as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_orthonormal;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_skew(n: usize, scale: f32, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = Matrix::random_uniform(n, n, scale, &mut rng);
        w.sub(&w.transpose())
    }

    #[test]
    fn cayley_of_zero_is_identity() {
        let r = cayley(&Matrix::zeros(4, 4));
        let i = Matrix::identity(4);
        for (x, y) in r.data.iter().zip(&i.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cayley_of_skew_is_orthonormal() {
        for (n, seed) in [(2usize, 1u64), (5, 2), (16, 3), (33, 4)] {
            let a = random_skew(n, 0.8, seed);
            let r = cayley(&a);
            assert!(is_orthonormal(&r, 2e-3), "n={n}");
        }
    }

    #[test]
    fn cayley_2d_matches_tangent_half_angle() {
        // For A = [[0,-t],[t,0]] the Cayley map is a rotation by 2·atan(t).
        let t = 0.4f32;
        let a = Matrix::from_rows(&[&[0.0, -t], &[t, 0.0]]);
        let r = cayley(&a);
        let theta = 2.0 * t.atan();
        assert!((r[(0, 0)] - theta.cos()).abs() < 1e-5);
        assert!((r[(1, 0)] - theta.sin()).abs() < 1e-5);
    }

    #[test]
    fn invert_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(9);
        let m = Matrix::random_uniform(6, 6, 1.0, &mut rng).add(&Matrix::identity(6).scale(3.0));
        let inv = invert(&m);
        let prod = m.matmul(&inv);
        let i = Matrix::identity(6);
        for (x, y) in prod.data.iter().zip(&i.data) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn vjp_matches_finite_difference() {
        let a = random_skew(5, 0.5, 11);
        let mut rng = SmallRng::seed_from_u64(12);
        let g = Matrix::random_uniform(5, 5, 1.0, &mut rng);
        let grad = cayley_vjp(&a, &g);
        // Directional check along random skew directions (the manifold's
        // tangent space).
        for seed in 13..16u64 {
            let e = random_skew(5, 1.0, seed);
            let h = 1e-3f32;
            let rp = cayley(&a.add(&e.scale(h)));
            let rm = cayley(&a.sub(&e.scale(h)));
            let fd: f32 = rp
                .sub(&rm)
                .scale(0.5 / h)
                .data
                .iter()
                .zip(&g.data)
                .map(|(x, y)| x * y)
                .sum();
            let an: f32 = grad.data.iter().zip(&e.data).map(|(x, y)| x * y).sum();
            assert!(
                (fd - an).abs() < 2e-2 * fd.abs().max(1.0),
                "fd {fd} vs an {an}"
            );
        }
    }
}
