//! Squared-Euclidean distance kernels.
//!
//! The paper (Def. 1 footnote, Table 1) adopts **squared** Euclidean distance
//! everywhere because it avoids the square root while preserving order; we do
//! the same. These functions are the hottest loops in the whole workspace —
//! every beam-search hop and every k-means assignment runs through them — so
//! they are unrolled four-wide, which LLVM turns into vector code.

/// Squared Euclidean distance `‖a − b‖²`. Panics in debug builds if the
/// lengths differ.
#[inline]
pub fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    let (ah, at) = a.split_at(chunks * 4);
    let (bh, bt) = b.split_at(chunks * 4);
    for (ac, bc) in ah.chunks_exact(4).zip(bh.chunks_exact(4)) {
        let d0 = ac[0] - bc[0];
        let d1 = ac[1] - bc[1];
        let d2 = ac[2] - bc[2];
        let d3 = ac[3] - bc[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut tail = 0.0f32;
    for (x, y) in at.iter().zip(bt) {
        let d = x - y;
        tail += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Dot product `⟨a, b⟩`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    let (ah, at) = a.split_at(chunks * 4);
    let (bh, bt) = b.split_at(chunks * 4);
    for (ac, bc) in ah.chunks_exact(4).zip(bh.chunks_exact(4)) {
        acc[0] += ac[0] * bc[0];
        acc[1] += ac[1] * bc[1];
        acc[2] += ac[2] * bc[2];
        acc[3] += ac[3] * bc[3];
    }
    let mut tail = 0.0f32;
    for (x, y) in at.iter().zip(bt) {
        tail += x * y;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared norm `‖a‖²`.
#[inline]
pub fn sq_norm(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    sq_norm(a).sqrt()
}

/// Normalises `a` to unit length in place; leaves the zero vector untouched.
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        let inv = 1.0 / n;
        for v in a {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_l2_known() {
        assert_eq!(sq_l2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn sq_l2_zero_on_equal() {
        let v = [1.5, -2.0, 3.25, 0.0, 9.0];
        assert_eq!(sq_l2(&v, &v), 0.0);
    }

    #[test]
    fn sq_l2_handles_tail_lengths() {
        for len in 0..9 {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32) + 1.0).collect();
            assert_eq!(sq_l2(&a, &b), len as f32, "len={len}");
        }
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| 1.0 - i as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }
}
