//! Matrix decompositions: Householder QR, cyclic Jacobi symmetric
//! eigendecomposition, one-sided Jacobi SVD, and the orthogonal-Procrustes
//! solver OPQ's alternating optimisation needs (Ge et al., CVPR'13).
//!
//! All routines accumulate in `f64` internally; the matrices involved are
//! at most a few hundred on a side (rotation matrices), so `O(n³)` Jacobi
//! sweeps are more than fast enough and far easier to verify than
//! bidiagonalisation-based LAPACK ports.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
pub struct Eigh {
    /// Eigenvalues in descending order.
    pub values: Vec<f32>,
    /// Eigenvectors as columns, matching `values`.
    pub vectors: Matrix,
}

/// Result of a singular value decomposition `A = U diag(σ) Vᵀ`.
pub struct Svd {
    /// Left singular vectors (columns).
    pub u: Matrix,
    /// Singular values in descending order.
    pub sigma: Vec<f32>,
    /// Right singular vectors (columns), i.e. `V`, not `Vᵀ`.
    pub v: Matrix,
}

/// Householder QR of an `m×n` matrix with `m ≥ n`: returns `(Q, R)` with `Q`
/// `m×n` having orthonormal columns and `R` `n×n` upper-triangular.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = (a.rows, a.cols);
    assert!(m >= n, "qr requires rows >= cols, got {m}x{n}");
    // Work in f64.
    let mut r: Vec<f64> = a.data.iter().map(|&v| v as f64).collect();
    // Accumulate Q as product of Householder reflectors applied to I (m×m,
    // but we only need the first n columns at the end).
    let mut q: Vec<f64> = vec![0.0; m * m];
    for i in 0..m {
        q[i * m + i] = 1.0;
    }
    let mut v = vec![0.0f64; m];
    for k in 0..n {
        // Build the reflector for column k below the diagonal.
        let mut norm2 = 0.0;
        for i in k..m {
            let x = r[i * n + k];
            norm2 += x * x;
        }
        let norm = norm2.sqrt();
        if norm < 1e-30 {
            continue;
        }
        let alpha = if r[k * n + k] >= 0.0 { -norm } else { norm };
        for i in 0..m {
            v[i] = if i < k { 0.0 } else { r[i * n + k] };
        }
        v[k] -= alpha;
        let vnorm2: f64 = v[k..].iter().map(|x| x * x).sum();
        if vnorm2 < 1e-30 {
            continue;
        }
        let beta = 2.0 / vnorm2;
        // R <- (I - beta v vᵀ) R
        for j in k..n {
            let mut s = 0.0;
            for i in k..m {
                s += v[i] * r[i * n + j];
            }
            let s = s * beta;
            for i in k..m {
                r[i * n + j] -= s * v[i];
            }
        }
        // Q <- Q (I - beta v vᵀ)
        for i in 0..m {
            let mut s = 0.0;
            for l in k..m {
                s += q[i * m + l] * v[l];
            }
            let s = s * beta;
            for l in k..m {
                q[i * m + l] -= s * v[l];
            }
        }
    }
    let q_out = Matrix {
        rows: m,
        cols: n,
        data: (0..m)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| q[i * m + j] as f32)
            .collect(),
    };
    let mut r_out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_out[(i, j)] = r[i * n + j] as f32;
        }
    }
    (q_out, r_out)
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// The input is symmetrised as `(A + Aᵀ)/2` before iterating, so mild
/// asymmetry from floating-point accumulation is tolerated.
pub fn eigh(a: &Matrix) -> Eigh {
    assert_eq!(a.rows, a.cols, "eigh requires a square matrix");
    let n = a.rows;
    let mut m: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = 0.5 * (a[(i, j)] as f64 + a[(j, i)] as f64);
        }
    }
    let mut v: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[j * n + j].partial_cmp(&m[i * n + i]).unwrap());
    let values: Vec<f32> = order.iter().map(|&i| m[i * n + i] as f32).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, dst)] = v[i * n + src] as f32;
        }
    }
    Eigh { values, vectors }
}

/// One-sided Jacobi SVD `A = U diag(σ) Vᵀ` for an `m×n` matrix with `m ≥ n`.
pub fn svd(a: &Matrix) -> Svd {
    let (m, n) = (a.rows, a.cols);
    assert!(m >= n, "svd requires rows >= cols, got {m}x{n}");
    // Column-major working copy of A (f64).
    let mut u: Vec<f64> = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            u[j * m + i] = a[(i, j)] as f64;
        }
    }
    let mut v: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut converged = true;
        for p in 0..n {
            for q in (p + 1)..n {
                let colp = p * m;
                let colq = q * m;
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    let up = u[colp + i];
                    let uq = u[colq + i];
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                if gamma.abs() <= 1e-14 * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                converged = false;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u[colp + i];
                    let uq = u[colq + i];
                    u[colp + i] = c * up - s * uq;
                    u[colq + i] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[p * n + i];
                    let vq = v[q * n + i];
                    v[p * n + i] = c * vp - s * vq;
                    v[q * n + i] = s * vp + c * vq;
                }
            }
        }
        if converged {
            break;
        }
    }
    // Singular values = column norms; normalise U columns.
    let mut sv: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm: f64 = (0..m)
                .map(|i| u[j * m + i] * u[j * m + i])
                .sum::<f64>()
                .sqrt();
            (norm, j)
        })
        .collect();
    sv.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut u_out = Matrix::zeros(m, n);
    let mut v_out = Matrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (dst, &(norm, src)) in sv.iter().enumerate() {
        sigma.push(norm as f32);
        let inv = if norm > 1e-30 { 1.0 / norm } else { 0.0 };
        for i in 0..m {
            u_out[(i, dst)] = (u[src * m + i] * inv) as f32;
        }
        for i in 0..n {
            v_out[(i, dst)] = v[src * n + i] as f32;
        }
    }
    Svd {
        u: u_out,
        sigma,
        v: v_out,
    }
}

/// Solves the orthogonal Procrustes problem: the orthonormal `R` minimising
/// `‖X R − Y‖_F` is `R = U Vᵀ` where `Xᵀ Y = U Σ Vᵀ`.
///
/// `g` must be the `d×d` correlation matrix `Xᵀ Y`. This is the update OPQ's
/// non-parametric alternation performs each round.
pub fn procrustes(g: &Matrix) -> Matrix {
    assert_eq!(
        g.rows, g.cols,
        "procrustes expects a square correlation matrix"
    );
    let Svd { u, v, .. } = svd(g);
    u.matmul(&v.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_orthonormal;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn qr_reconstructs() {
        let mut rng = SmallRng::seed_from_u64(10);
        let a = Matrix::random_uniform(6, 4, 1.0, &mut rng);
        let (q, r) = qr(&a);
        let qa = q.matmul(&r);
        for (x, y) in qa.data.iter().zip(&a.data) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        // Q columns orthonormal: QᵀQ = I.
        let qtq = q.transpose().matmul(&q);
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn qr_square_gives_orthonormal_q() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a = Matrix::random_uniform(5, 5, 1.0, &mut rng);
        let (q, _) = qr(&a);
        assert!(is_orthonormal(&q, 1e-4));
    }

    #[test]
    fn eigh_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = eigh(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eigh_reconstructs() {
        let mut rng = SmallRng::seed_from_u64(12);
        let b = Matrix::random_uniform(6, 6, 1.0, &mut rng);
        let a = b.matmul(&b.transpose()); // symmetric PSD
        let e = eigh(&a);
        let lam = Matrix::from_vec(
            6,
            6,
            (0..36)
                .map(|idx| {
                    let (i, j) = (idx / 6, idx % 6);
                    if i == j {
                        e.values[i]
                    } else {
                        0.0
                    }
                })
                .collect(),
        );
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        for (x, y) in rec.data.iter().zip(&a.data) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn svd_reconstructs() {
        let mut rng = SmallRng::seed_from_u64(13);
        let a = Matrix::random_uniform(7, 5, 1.0, &mut rng);
        let s = svd(&a);
        let mut sig = Matrix::zeros(5, 5);
        for i in 0..5 {
            sig[(i, i)] = s.sigma[i];
        }
        let rec = s.u.matmul(&sig).matmul(&s.v.transpose());
        for (x, y) in rec.data.iter().zip(&a.data) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
        // Descending singular values.
        for w in s.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
    }

    #[test]
    fn svd_of_orthonormal_has_unit_sigma() {
        let mut rng = SmallRng::seed_from_u64(14);
        let (q, _) = qr(&Matrix::random_uniform(6, 6, 1.0, &mut rng));
        let s = svd(&q);
        for sv in &s.sigma {
            assert!((sv - 1.0).abs() < 1e-4, "{sv}");
        }
    }

    #[test]
    fn procrustes_recovers_rotation() {
        // If Y = X R0 for orthonormal R0, procrustes(XᵀY) should recover R0.
        let mut rng = SmallRng::seed_from_u64(15);
        let x = Matrix::random_uniform(50, 6, 1.0, &mut rng);
        let (r0, _) = qr(&Matrix::random_uniform(6, 6, 1.0, &mut rng));
        let y = x.matmul(&r0);
        let g = x.transpose().matmul(&y);
        let r = procrustes(&g);
        assert!(is_orthonormal(&r, 1e-3));
        for (a, b) in r.data.iter().zip(&r0.data) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
