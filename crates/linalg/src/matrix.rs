//! Row-major dense `f32` matrix with the operations the RPQ stack needs.
//!
//! This is deliberately not a general-purpose linear-algebra library: the
//! shapes involved (rotation matrices up to a few hundred columns, data
//! batches of a few thousand rows) are small enough that a cache-friendly
//! `ikj` multiply is within a small factor of optimised BLAS, and keeping
//! the type simple makes the autodiff tape above it easy to audit.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::Rng;

/// Row-major dense matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            let cs = self.cols.min(8);
            let row: Vec<String> = (0..cs).map(|j| format!("{:9.4}", self[(i, j)])).collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > cs { ", …" } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major vector. Panics if the length does not
    /// equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of rows. Panics on ragged input.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Samples a matrix with i.i.d. entries uniform in `[-scale, scale]`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        scale: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Samples a matrix with i.i.d. standard-normal entries scaled by `std`
    /// (Box–Muller; avoids a distribution dependency).
    pub fn random_normal<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Self { rows, cols, data }
    }

    /// Returns the `i`-th row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the `i`-th row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix multiplication `self * other` with an `ikj` loop order so the
    /// innermost loop streams both output and `other` rows sequentially.
    /// Rows are processed in parallel above a small threshold (the matrix
    /// exponential's Padé evaluation and RPQ's batch rotations live here).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        use rayon::prelude::*;
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        let work = self.rows * self.cols * n;
        let body = |(i, orow): (usize, &mut [f32])| {
            let arow = self.row(i);
            for (k, &aik) in arow.iter().enumerate() {
                let brow = &other.data[k * n..(k + 1) * n];
                axpy(aik, brow, orow);
            }
        };
        if work >= 1 << 18 && self.rows >= 8 {
            out.data.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.data.chunks_mut(n).enumerate().for_each(body);
        }
        out
    }

    /// Computes `self * otherᵀ` without materialising the transpose; each
    /// output element is a dot product of two rows, which is the natural
    /// layout for distance tables (`X · Cᵀ`).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (j, o) in orow.iter_mut().enumerate() {
                *o = crate::distance::dot(arow, other.row(j));
            }
        }
        out
    }

    /// Computes `selfᵀ * other` without materialising the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &aki) in arow.iter().enumerate() {
                let orow = &mut out.data[i * n..(i + 1) * n];
                axpy(aki, brow, orow);
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|v| v * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += other * s`.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, s: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Maximum absolute column sum (induced 1-norm).
    pub fn norm_1(&self) -> f32 {
        let mut best = 0.0f32;
        for j in 0..self.cols {
            let mut s = 0.0f32;
            for i in 0..self.rows {
                s += self.data[i * self.cols + j].abs();
            }
            best = best.max(s);
        }
        best
    }

    /// Extracts the sub-matrix of columns `[c0, c1)`.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "column slice out of range");
        let w = c1 - c0;
        let mut out = Matrix::zeros(self.rows, w);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Extracts the sub-matrix of rows `[r0, r1)`.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row slice out of range");
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Gathers rows by index into a new matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows,
                "gather index {src} out of range ({} rows)",
                self.rows
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Stacks matrices with equal column counts on top of each other.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates matrices with equal row counts side by side.
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hstack of nothing");
        let rows = parts[0].rows;
        let cols = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack row mismatch");
                out.row_mut(i)[off..off + p.cols].copy_from_slice(p.row(i));
                off += p.cols;
            }
        }
        out
    }

    /// The skew-symmetric part `(self − selfᵀ) / 2` (square matrices only).
    pub fn skew_part(&self) -> Matrix {
        assert_eq!(self.rows, self.cols, "skew_part requires a square matrix");
        let t = self.transpose();
        self.sub(&t).scale(0.5)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        &mut self.data[i * self.cols + j]
    }
}

/// `y += a * x`, the kernel inside [`Matrix::matmul`].
#[inline]
fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    if a == 0.0 {
        return;
    }
    let chunks = x.len() / 4;
    let (xh, xt) = x.split_at(chunks * 4);
    let (yh, yt) = y.split_at_mut(chunks * 4);
    for (xc, yc) in xh.chunks_exact(4).zip(yh.chunks_exact_mut(4)) {
        yc[0] += a * xc[0];
        yc[1] += a * xc[1];
        yc[2] += a * xc[2];
        yc[3] += a * xc[3];
    }
    for (yv, xv) in yt.iter_mut().zip(xt) {
        *yv += a * xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.rows == b.rows
            && a.cols == b.cols
            && a.data
                .iter()
                .zip(&b.data)
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Matrix::random_uniform(4, 4, 1.0, &mut rng);
        let i = Matrix::identity(4);
        assert!(approx_eq(&a.matmul(&i), &a, 1e-6));
        assert!(approx_eq(&i.matmul(&a), &a, 1e-6));
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let c = a.matmul(&b);
        assert_eq!((c.rows, c.cols), (1, 1));
        assert_eq!(c.data[0], 3.0);
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Matrix::random_uniform(3, 5, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 5, 1.0, &mut rng);
        assert!(approx_eq(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = Matrix::random_uniform(5, 3, 1.0, &mut rng);
        let b = Matrix::random_uniform(5, 4, 1.0, &mut rng);
        assert!(approx_eq(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = Matrix::random_uniform(3, 7, 1.0, &mut rng);
        assert!(approx_eq(&a.transpose().transpose(), &a, 0.0));
    }

    #[test]
    fn slice_and_stack_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = Matrix::random_uniform(4, 6, 1.0, &mut rng);
        let left = a.slice_cols(0, 3);
        let right = a.slice_cols(3, 6);
        assert!(approx_eq(&Matrix::hstack(&[&left, &right]), &a, 0.0));
        let top = a.slice_rows(0, 2);
        let bot = a.slice_rows(2, 4);
        assert!(approx_eq(&Matrix::vstack(&[&top, &bot]), &a, 0.0));
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data, vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn skew_part_is_antisymmetric() {
        let mut rng = SmallRng::seed_from_u64(6);
        let a = Matrix::random_uniform(5, 5, 1.0, &mut rng);
        let s = a.skew_part();
        let st = s.transpose();
        assert!(approx_eq(&st, &s.scale(-1.0), 1e-6));
    }

    #[test]
    fn norm_1_column_sums() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 0.5]]);
        assert!((a.norm_1() - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn random_normal_has_reasonable_moments() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = Matrix::random_normal(100, 100, 1.0, &mut rng);
        let mean: f32 = m.data.iter().sum::<f32>() / m.data.len() as f32;
        let var: f32 =
            m.data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.data.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
