//! # rpq-linalg
//!
//! Dense linear-algebra substrate for the RPQ reproduction.
//!
//! The RPQ paper's differentiable quantizer learns an orthonormal rotation
//! `R = exp(A)` with `A` skew-symmetric (paper §4, "adaptive vector
//! decomposition"). Training it end-to-end requires:
//!
//! * a dense [`Matrix`] type with fast multiplication ([`matrix`]),
//! * the matrix exponential and its *Fréchet derivative adjoint* so the
//!   rotation can participate in reverse-mode autodiff ([`mod@expm`]),
//! * QR / SVD / symmetric eigendecomposition for OPQ's Procrustes step and
//!   orthonormal initialisation ([`decomp`]),
//! * tight squared-Euclidean distance kernels — the inner loop of every
//!   ANNS component ([`distance`]).
//!
//! Everything is `f32` at the API surface (matching vector datasets); the
//! numerically delicate routines (expm, LU solves) run in `f64` internally.

pub mod cayley;
pub mod decomp;
pub mod distance;
pub mod expm;
pub mod matrix;

pub use cayley::{cayley, cayley_vjp};
pub use decomp::{eigh, procrustes, qr, svd, Eigh, Svd};
pub use expm::{expm, expm_frechet, expm_vjp};
pub use matrix::Matrix;

/// Numerical tolerance used across tests and orthonormality checks.
pub const EPS: f32 = 1e-4;

/// Returns `true` when `m` is orthonormal to tolerance `tol`
/// (i.e. `mᵀ m ≈ I`).
pub fn is_orthonormal(m: &Matrix, tol: f32) -> bool {
    if m.rows != m.cols {
        return false;
    }
    let prod = m.transpose().matmul(m);
    for i in 0..prod.rows {
        for j in 0..prod.cols {
            let expect = if i == j { 1.0 } else { 0.0 };
            if (prod[(i, j)] - expect).abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_orthonormal() {
        assert!(is_orthonormal(&Matrix::identity(5), 1e-6));
    }

    #[test]
    fn non_square_is_not_orthonormal() {
        assert!(!is_orthonormal(&Matrix::zeros(2, 3), 1e-6));
    }

    #[test]
    fn scaled_identity_is_not_orthonormal() {
        let mut m = Matrix::identity(4);
        m[(0, 0)] = 2.0;
        assert!(!is_orthonormal(&m, 1e-3));
    }
}
