//! Matrix exponential and its Fréchet derivative.
//!
//! RPQ parameterises its learned rotation as `R = exp(A)` with `A`
//! skew-symmetric (paper §4): orthogonality follows from
//! `exp(A)ᵀ = exp(−A) = exp(A)⁻¹`. Gradient-based training then needs the
//! reverse-mode vector-Jacobian product of `exp`, which is the **adjoint
//! Fréchet derivative**: for upstream gradient `Ḡ` w.r.t. `R`,
//!
//! ```text
//! Ā = L(Aᵀ, Ḡ)
//! ```
//!
//! where `L(A, E)` is the Fréchet derivative of `exp` at `A` in direction
//! `E`. We compute `L` exactly with the classical block trick
//! (Al-Mohy & Higham):
//!
//! ```text
//! exp([[A, E], [0, A]]) = [[exp(A), L(A,E)], [0, exp(A)]]
//! ```
//!
//! `exp` itself is scaling-and-squaring with the degree-13 Padé approximant
//! (Higham 2005), in `f64` internally.

use crate::matrix::Matrix;

/// Internal f64 square matrix helper.
struct Mat64 {
    n: usize,
    d: Vec<f64>,
}

impl Mat64 {
    fn zeros(n: usize) -> Self {
        Self {
            n,
            d: vec![0.0; n * n],
        }
    }

    fn from_f32(m: &Matrix) -> Self {
        assert_eq!(m.rows, m.cols, "expm requires a square matrix");
        Self {
            n: m.rows,
            d: m.data.iter().map(|&v| v as f64).collect(),
        }
    }

    fn to_f32(&self) -> Matrix {
        Matrix::from_vec(self.n, self.n, self.d.iter().map(|&v| v as f32).collect())
    }

    fn matmul(&self, o: &Mat64) -> Mat64 {
        use rayon::prelude::*;
        let n = self.n;
        let mut out = Mat64::zeros(n);
        let body = |(i, orow): (usize, &mut [f64])| {
            for k in 0..n {
                let aik = self.d[i * n + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &o.d[k * n..(k + 1) * n];
                for (ov, bv) in orow.iter_mut().zip(brow) {
                    *ov += aik * bv;
                }
            }
        };
        if n >= 96 {
            out.d.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.d.chunks_mut(n).enumerate().for_each(body);
        }
        out
    }

    fn add(&self, o: &Mat64) -> Mat64 {
        Mat64 {
            n: self.n,
            d: self.d.iter().zip(&o.d).map(|(a, b)| a + b).collect(),
        }
    }

    fn sub(&self, o: &Mat64) -> Mat64 {
        Mat64 {
            n: self.n,
            d: self.d.iter().zip(&o.d).map(|(a, b)| a - b).collect(),
        }
    }

    fn scale(&self, s: f64) -> Mat64 {
        Mat64 {
            n: self.n,
            d: self.d.iter().map(|v| v * s).collect(),
        }
    }

    fn add_scaled_identity(&self, s: f64) -> Mat64 {
        let mut out = Mat64 {
            n: self.n,
            d: self.d.clone(),
        };
        for i in 0..self.n {
            out.d[i * self.n + i] += s;
        }
        out
    }

    fn norm_1(&self) -> f64 {
        let n = self.n;
        (0..n)
            .map(|j| (0..n).map(|i| self.d[i * n + j].abs()).sum::<f64>())
            .fold(0.0f64, f64::max)
    }

    /// Solves `self * X = B` in place via LU with partial pivoting;
    /// returns `X`. Panics on a singular system (cannot happen for the
    /// Padé denominator when scaling is chosen correctly).
    fn solve(&self, b: &Mat64) -> Mat64 {
        let n = self.n;
        let mut lu = self.d.clone();
        let mut x = b.d.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot.
            let mut pmax = k;
            let mut vmax = lu[piv[k] * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[piv[i] * n + k].abs();
                if v > vmax {
                    vmax = v;
                    pmax = i;
                }
            }
            assert!(vmax > 1e-300, "singular matrix in expm Padé solve");
            piv.swap(k, pmax);
            let pk = piv[k];
            let diag = lu[pk * n + k];
            #[allow(clippy::needless_range_loop)]
            for i in (k + 1)..n {
                let pi = piv[i];
                let f = lu[pi * n + k] / diag;
                lu[pi * n + k] = f;
                for j in (k + 1)..n {
                    lu[pi * n + j] -= f * lu[pk * n + j];
                }
                for j in 0..n {
                    x[pi * n + j] -= f * x[pk * n + j];
                }
            }
        }
        // Back substitution.
        let mut out = vec![0.0f64; n * n];
        for j in 0..n {
            for irow in (0..n).rev() {
                let pi = piv[irow];
                let mut s = x[pi * n + j];
                for k2 in (irow + 1)..n {
                    s -= lu[pi * n + k2] * out[k2 * n + j];
                }
                out[irow * n + j] = s / lu[pi * n + irow];
            }
        }
        Mat64 { n, d: out }
    }
}

/// Degree-13 Padé coefficients (Higham 2005).
const PADE13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

fn expm64(a: &Mat64) -> Mat64 {
    let theta13 = 5.371920351148152f64;
    let norm = a.norm_1();
    let s = if norm > theta13 {
        (norm / theta13).log2().ceil().max(0.0) as u32
    } else {
        0
    };
    let a = a.scale(1.0 / f64::powi(2.0, s as i32));
    let b = &PADE13;
    let a2 = a.matmul(&a);
    let a4 = a2.matmul(&a2);
    let a6 = a2.matmul(&a4);
    // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let w1 = a6.scale(b[13]).add(&a4.scale(b[11])).add(&a2.scale(b[9]));
    let w2 = a6
        .scale(b[7])
        .add(&a4.scale(b[5]))
        .add(&a2.scale(b[3]))
        .add_scaled_identity(b[1]);
    let u = a.matmul(&a6.matmul(&w1).add(&w2));
    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let z1 = a6.scale(b[12]).add(&a4.scale(b[10])).add(&a2.scale(b[8]));
    let z2 = a6
        .scale(b[6])
        .add(&a4.scale(b[4]))
        .add(&a2.scale(b[2]))
        .add_scaled_identity(b[0]);
    let v = a6.matmul(&z1).add(&z2);
    // R = (V - U)^{-1} (V + U), then square s times.
    let mut r = v.sub(&u).solve(&v.add(&u));
    for _ in 0..s {
        r = r.matmul(&r);
    }
    r
}

/// Matrix exponential `exp(A)` of a square matrix.
pub fn expm(a: &Matrix) -> Matrix {
    expm64(&Mat64::from_f32(a)).to_f32()
}

/// Computes both `exp(A)` and the Fréchet derivative `L(A, E)` via the
/// block-matrix identity. Returns `(exp(A), L(A, E))`.
pub fn expm_frechet(a: &Matrix, e: &Matrix) -> (Matrix, Matrix) {
    assert_eq!(a.rows, a.cols, "expm_frechet requires square A");
    assert_eq!((a.rows, a.cols), (e.rows, e.cols), "A and E shape mismatch");
    let n = a.rows;
    let mut block = Mat64::zeros(2 * n);
    for i in 0..n {
        for j in 0..n {
            block.d[i * 2 * n + j] = a[(i, j)] as f64;
            block.d[i * 2 * n + (n + j)] = e[(i, j)] as f64;
            block.d[(n + i) * 2 * n + (n + j)] = a[(i, j)] as f64;
        }
    }
    let big = expm64(&block);
    let mut expa = Matrix::zeros(n, n);
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            expa[(i, j)] = big.d[i * 2 * n + j] as f32;
            l[(i, j)] = big.d[i * 2 * n + (n + j)] as f32;
        }
    }
    (expa, l)
}

/// Reverse-mode vector-Jacobian product of `R = exp(A)`: given the upstream
/// gradient `g_r = ∂loss/∂R`, returns `∂loss/∂A = L(Aᵀ, g_r)`.
pub fn expm_vjp(a: &Matrix, g_r: &Matrix) -> Matrix {
    let at = a.transpose();
    expm_frechet(&at, g_r).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_orthonormal;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn expm_zero_is_identity() {
        let r = expm(&Matrix::zeros(4, 4));
        let i = Matrix::identity(4);
        for (x, y) in r.data.iter().zip(&i.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn expm_diagonal() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let r = expm(&a);
        assert!((r[(0, 0)] - 1.0f32.exp()).abs() < 1e-4);
        assert!((r[(1, 1)] - 2.0f32.exp()).abs() < 1e-3);
        assert!(r[(0, 1)].abs() < 1e-6);
    }

    #[test]
    fn expm_rotation_2d() {
        // exp([[0, -t], [t, 0]]) = [[cos t, -sin t], [sin t, cos t]]
        let t = 0.7f32;
        let a = Matrix::from_rows(&[&[0.0, -t], &[t, 0.0]]);
        let r = expm(&a);
        assert!((r[(0, 0)] - t.cos()).abs() < 1e-5);
        assert!((r[(0, 1)] + t.sin()).abs() < 1e-5);
        assert!((r[(1, 0)] - t.sin()).abs() < 1e-5);
        assert!((r[(1, 1)] - t.cos()).abs() < 1e-5);
    }

    #[test]
    fn expm_of_skew_is_orthonormal() {
        let mut rng = SmallRng::seed_from_u64(42);
        for dim in [2, 3, 8, 16, 33] {
            let w = Matrix::random_uniform(dim, dim, 1.5, &mut rng);
            let a = w.sub(&w.transpose());
            let r = expm(&a);
            assert!(is_orthonormal(&r, 2e-3), "dim {dim} not orthonormal");
        }
    }

    #[test]
    fn expm_large_norm_scaling() {
        // Norm well above theta13 exercises the squaring phase.
        let t = 25.0f32;
        let a = Matrix::from_rows(&[&[0.0, -t], &[t, 0.0]]);
        let r = expm(&a);
        assert!((r[(0, 0)] - t.cos()).abs() < 1e-3);
        assert!((r[(1, 0)] - t.sin()).abs() < 1e-3);
    }

    #[test]
    fn frechet_matches_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = Matrix::random_uniform(5, 5, 0.8, &mut rng);
        let e = Matrix::random_uniform(5, 5, 1.0, &mut rng);
        let (_, l) = expm_frechet(&a, &e);
        let h = 1e-3f32;
        let fd = expm(&a.add(&e.scale(h)))
            .sub(&expm(&a.sub(&e.scale(h))))
            .scale(0.5 / h);
        for (x, y) in l.data.iter().zip(&fd.data) {
            assert!((x - y).abs() < 5e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn vjp_is_adjoint_of_frechet() {
        // <L(A,E), G> == <E, L(Aᵀ,G)> for all E, G.
        let mut rng = SmallRng::seed_from_u64(8);
        let a = Matrix::random_uniform(4, 4, 0.7, &mut rng);
        for _ in 0..3 {
            let e = Matrix::random_uniform(4, 4, 1.0, &mut rng);
            let g = Matrix::random_uniform(4, 4, 1.0, &mut rng);
            let (_, l) = expm_frechet(&a, &e);
            let adj = expm_vjp(&a, &g);
            let lhs: f32 = l.data.iter().zip(&g.data).map(|(x, y)| x * y).sum();
            let rhs: f32 = e.data.iter().zip(&adj.data).map(|(x, y)| x * y).sum();
            assert!(
                (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
                "{lhs} vs {rhs}"
            );
        }
    }
}
