//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use rpq_linalg::{cayley, distance, expm, is_orthonormal, qr, svd, Matrix};

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expm_of_skew_is_always_orthonormal(w in small_matrix(6, 6)) {
        let a = w.sub(&w.transpose());
        let r = expm(&a);
        prop_assert!(is_orthonormal(&r, 5e-3));
    }

    #[test]
    fn cayley_of_skew_is_always_orthonormal(w in small_matrix(6, 6)) {
        let a = w.sub(&w.transpose());
        let r = cayley(&a);
        prop_assert!(is_orthonormal(&r, 5e-3));
    }

    #[test]
    fn rotation_preserves_distances(w in small_matrix(5, 5),
                                    x in proptest::collection::vec(-3.0f32..3.0, 5),
                                    y in proptest::collection::vec(-3.0f32..3.0, 5)) {
        let a = w.sub(&w.transpose());
        let r = expm(&a);
        let xm = Matrix::from_vec(1, 5, x.clone());
        let ym = Matrix::from_vec(1, 5, y.clone());
        let xr = xm.matmul(&r);
        let yr = ym.matmul(&r);
        let before = distance::sq_l2(&x, &y);
        let after = distance::sq_l2(&xr.data, &yr.data);
        prop_assert!((before - after).abs() <= 1e-2 * before.max(1.0),
                     "rotation changed distance: {before} vs {after}");
    }

    #[test]
    fn matmul_distributes_over_add(a in small_matrix(4, 3),
                                   b in small_matrix(3, 5),
                                   c in small_matrix(3, 5)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_of_product(a in small_matrix(4, 3), b in small_matrix(3, 2)) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn qr_q_has_orthonormal_columns(a in small_matrix(7, 4)) {
        let (q, r) = qr(&a);
        let qtq = q.transpose().matmul(&q);
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                prop_assert!((qtq[(i, j)] - e).abs() < 1e-3);
            }
        }
        // R upper-triangular.
        for i in 1..4 {
            for j in 0..i {
                prop_assert!(r[(i, j)].abs() < 1e-4);
            }
        }
    }

    #[test]
    fn svd_sigma_sorted_nonnegative(a in small_matrix(6, 4)) {
        let s = svd(&a);
        for w in s.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-5);
        }
        prop_assert!(s.sigma.iter().all(|&v| v >= -1e-6));
    }

    #[test]
    fn sq_l2_axioms(x in proptest::collection::vec(-5.0f32..5.0, 9),
                    y in proptest::collection::vec(-5.0f32..5.0, 9)) {
        // Symmetry and identity of indiscernibles (squared form).
        prop_assert!((distance::sq_l2(&x, &y) - distance::sq_l2(&y, &x)).abs() < 1e-4);
        prop_assert_eq!(distance::sq_l2(&x, &x), 0.0);
        prop_assert!(distance::sq_l2(&x, &y) >= 0.0);
    }

    #[test]
    fn dot_is_bilinear(x in proptest::collection::vec(-2.0f32..2.0, 6),
                       y in proptest::collection::vec(-2.0f32..2.0, 6),
                       s in -3.0f32..3.0) {
        let sx: Vec<f32> = x.iter().map(|v| v * s).collect();
        let lhs = distance::dot(&sx, &y);
        let rhs = s * distance::dot(&x, &y);
        prop_assert!((lhs - rhs).abs() < 1e-2 * rhs.abs().max(1.0));
    }
}
