//! Property-based tests for the quantization substrate: the ADC identity,
//! codec round-trips, SDC symmetry, and k-means invariants.

use proptest::prelude::*;
use rpq_data::Dataset;
use rpq_graph::DistanceEstimator;
use rpq_linalg::distance::sq_l2;
use rpq_quant::{
    kmeans, BatchAdcEstimator, Codebook, KMeansConfig, PqConfig, ProductQuantizer, SoaCodes,
    VectorCompressor,
};

fn dataset(n: usize, dim: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(-4.0f32..4.0, n * dim)
        .prop_map(move |data| Dataset::from_flat(dim, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fundamental ADC identity: the lookup-table distance equals the
    /// exact distance between the query and the decoded reconstruction.
    #[test]
    fn adc_equals_decoded_distance(ds in dataset(40, 8),
                                   q in proptest::collection::vec(-4.0f32..4.0, 8)) {
        let pq = ProductQuantizer::train(
            &PqConfig { m: 4, k: 8, kmeans_iters: 4, ..Default::default() },
            &ds,
        );
        let codes = pq.encode_dataset(&ds);
        let lut = pq.lookup_table(&q);
        let mut rec = vec![0.0f32; 8];
        for i in 0..ds.len() {
            pq.decode_into(codes.code(i), &mut rec);
            let expect = sq_l2(&q, &rec);
            let got = lut.distance(codes.code(i));
            prop_assert!((got - expect).abs() <= 1e-3 * expect.max(1.0),
                         "ADC {got} vs decoded {expect}");
        }
    }

    /// Encoding a decoded codeword vector returns the same code
    /// (quantization is idempotent on its own reconstructions).
    #[test]
    fn quantization_is_idempotent(ds in dataset(30, 6)) {
        let pq = ProductQuantizer::train(
            &PqConfig { m: 3, k: 8, kmeans_iters: 4, ..Default::default() },
            &ds,
        );
        let codes = pq.encode_dataset(&ds);
        let mut rec = vec![0.0f32; 6];
        let mut code2 = vec![0u8; 3];
        for i in 0..ds.len() {
            pq.decode_into(codes.code(i), &mut rec);
            pq.encode_one(&rec, &mut code2);
            let mut rec2 = vec![0.0f32; 6];
            pq.decode_into(&code2, &mut rec2);
            // Codes may differ under exact ties, but reconstructions must
            // agree.
            prop_assert!(sq_l2(&rec, &rec2) < 1e-6);
        }
    }

    /// SDC tables are symmetric with zero diagonal blocks.
    #[test]
    fn sdc_is_symmetric(ds in dataset(30, 6)) {
        let pq = ProductQuantizer::train(
            &PqConfig { m: 3, k: 4, kmeans_iters: 4, ..Default::default() },
            &ds,
        );
        let sdc = pq.codebook().sdc_table();
        let codes = pq.encode_dataset(&ds);
        for i in (0..ds.len()).step_by(7) {
            for j in (0..ds.len()).step_by(5) {
                let ab = sdc.distance(codes.code(i), codes.code(j));
                let ba = sdc.distance(codes.code(j), codes.code(i));
                prop_assert!((ab - ba).abs() < 1e-4);
            }
            prop_assert!(sdc.distance(codes.code(i), codes.code(i)) < 1e-6);
        }
    }

    /// Reconstruction error never exceeds the distance to the farthest
    /// codeword combination and is zero when the dataset has at most K
    /// distinct sub-vectors.
    #[test]
    fn kmeans_assigns_to_nearest(data in proptest::collection::vec(-3.0f32..3.0, 60)) {
        let res = kmeans(&data, 2, KMeansConfig { k: 4, max_iters: 8, ..Default::default() });
        let point = |i: usize| &data[i * 2..(i + 1) * 2];
        let centroid = |c: usize| &res.centroids[c * 2..(c + 1) * 2];
        for i in 0..30 {
            let assigned = res.assignments[i] as usize;
            let da = sq_l2(point(i), centroid(assigned));
            for c in 0..res.k {
                prop_assert!(da <= sq_l2(point(i), centroid(c)) + 1e-4,
                             "point {i} assigned to non-nearest centroid");
            }
        }
    }

    /// The batched SoA kernel returns the same bits as the scalar LUT walk
    /// for arbitrary trained quantizers and arbitrary (odd-sized,
    /// duplicated, unordered) candidate lists — the contract every index
    /// relies on when it routes searches through `distance_batch`.
    #[test]
    fn batched_adc_bit_equals_scalar(ds in dataset(45, 8),
                                     q in proptest::collection::vec(-4.0f32..4.0, 8),
                                     picks in proptest::collection::vec(0usize..45, 1..70)) {
        let pq = ProductQuantizer::train(
            &PqConfig { m: 4, k: 8, kmeans_iters: 4, ..Default::default() },
            &ds,
        );
        let codes = pq.encode_dataset(&ds);
        let soa = SoaCodes::from_compact(&codes);
        let lut = pq.lookup_table(&q);
        let est = BatchAdcEstimator::new(pq.lookup_table(&q), &soa);
        let ids: Vec<u32> = picks.iter().map(|&i| i as u32).collect();
        let mut out = vec![0.0f32; ids.len()];
        est.distance_batch(&ids, &mut out);
        for (&id, &got) in ids.iter().zip(&out) {
            let expect = lut.distance(codes.code(id as usize));
            prop_assert_eq!(got.to_bits(), expect.to_bits(),
                            "batched {} vs scalar {} at id {}", got, expect, id);
        }
    }

    /// SoA transposition is lossless: `from_compact` → `to_compact` is the
    /// identity on any code store.
    #[test]
    fn soa_roundtrip_identity(rows in proptest::collection::vec(
        proptest::collection::vec(0u8..=255, 5), 0..40)) {
        let mut codes = rpq_quant::CompactCodes::new(0, 5, Vec::new());
        for row in &rows {
            codes.push(row);
        }
        let back = SoaCodes::from_compact(&codes).to_compact();
        prop_assert_eq!(back.len(), codes.len());
        for i in 0..codes.len() {
            prop_assert_eq!(back.code(i), codes.code(i));
        }
    }

    /// Codebook decode writes every output element (no stale data).
    #[test]
    fn decode_overwrites_output(code0 in 0u8..4, code1 in 0u8..4) {
        let cb = Codebook::new(2, 4, 2, (0..16).map(|v| v as f32).collect());
        let mut out = vec![f32::NAN; 4];
        cb.decode(&[code0, code1], &mut out);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }
}
