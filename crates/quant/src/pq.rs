//! Plain product quantization (Jégou et al., TPAMI'11) — paper Def. 3 and
//! the default quantizer inside DiskANN.

use std::time::Instant;

use rpq_data::Dataset;
use rpq_graph::DistanceEstimator;

use crate::codebook::{encode_dataset_with, Codebook, CompactCodes, LookupTable};
use crate::compressor::{AdcEstimator, VectorCompressor};
use crate::kmeans::{kmeans, KMeansConfig};

/// PQ training parameters.
#[derive(Clone, Copy, Debug)]
pub struct PqConfig {
    /// Number of chunks M (must divide the vector dimension).
    pub m: usize,
    /// Codewords per sub-codebook K (≤ 256; paper uses 256).
    pub k: usize,
    /// k-means iterations per sub-codebook.
    pub kmeans_iters: usize,
    /// Cap on training vectors (the paper trains on a 500K subset).
    pub train_size: usize,
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        Self {
            m: 8,
            k: 256,
            kmeans_iters: 15,
            train_size: 100_000,
            seed: 0,
        }
    }
}

/// A trained product quantizer.
#[derive(Clone, Debug)]
pub struct ProductQuantizer {
    codebook: Codebook,
    train_seconds: f32,
}

impl ProductQuantizer {
    /// Trains one k-means per chunk over (a subsample of) `data`.
    pub fn train(cfg: &PqConfig, data: &Dataset) -> Self {
        let start = Instant::now();
        let d = data.dim();
        assert!(cfg.m > 0, "M must be positive");
        assert_eq!(d % cfg.m, 0, "M = {} must divide the dimension {d}", cfg.m);
        assert!(!data.is_empty(), "cannot train PQ on an empty dataset");
        let dsub = d / cfg.m;
        let train = subsample(data, cfg.train_size, cfg.seed);

        let mut codewords = vec![0.0f32; cfg.m * cfg.k.min(train.len()).max(1) * dsub];
        let k_eff = cfg.k.min(train.len());
        for j in 0..cfg.m {
            // Gather the j-th sub-vectors contiguously.
            let mut sub = Vec::with_capacity(train.len() * dsub);
            for v in train.iter() {
                sub.extend_from_slice(&v[j * dsub..(j + 1) * dsub]);
            }
            let res = kmeans(
                &sub,
                dsub,
                KMeansConfig {
                    k: k_eff,
                    max_iters: cfg.kmeans_iters,
                    seed: cfg.seed.wrapping_add(j as u64),
                    ..Default::default()
                },
            );
            let base = j * k_eff * dsub;
            codewords[base..base + k_eff * dsub].copy_from_slice(&res.centroids);
        }
        let codebook = Codebook::new(cfg.m, k_eff, dsub, codewords);
        Self {
            codebook,
            train_seconds: start.elapsed().as_secs_f32(),
        }
    }

    /// Wraps an existing codebook (used by RPQ's export path).
    pub fn from_codebook(codebook: Codebook, train_seconds: f32) -> Self {
        Self {
            codebook,
            train_seconds,
        }
    }

    /// The underlying codebook.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Encodes a single vector.
    pub fn encode_one(&self, v: &[f32], out: &mut [u8]) {
        self.codebook.encode_one(v, out);
    }

    /// Builds an ADC lookup table for a query.
    pub fn lookup_table(&self, query: &[f32]) -> LookupTable {
        self.codebook.lookup_table(query)
    }

    /// Mean squared reconstruction error over a dataset (the distortion PQ
    /// minimises; used by tests and the OPQ alternation).
    pub fn reconstruction_mse(&self, data: &Dataset) -> f32 {
        let mut code = vec![0u8; self.codebook.m()];
        let mut rec = vec![0.0f32; self.codebook.dim()];
        let mut total = 0.0f64;
        for v in data.iter() {
            self.codebook.encode_one(v, &mut code);
            self.codebook.decode(&code, &mut rec);
            total += rpq_linalg::distance::sq_l2(v, &rec) as f64;
        }
        (total / data.len().max(1) as f64) as f32
    }
}

impl VectorCompressor for ProductQuantizer {
    fn name(&self) -> String {
        "PQ".to_string()
    }

    fn dim(&self) -> usize {
        self.codebook.dim()
    }

    fn code_dim(&self) -> usize {
        self.codebook.dim()
    }

    fn model_bytes(&self) -> usize {
        self.codebook.memory_bytes()
    }

    fn train_seconds(&self) -> f32 {
        self.train_seconds
    }

    fn encode_dataset(&self, data: &Dataset) -> CompactCodes {
        encode_dataset_with(&self.codebook, data)
    }

    fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        self.codebook.decode(code, out);
    }

    fn estimator<'a>(
        &'a self,
        codes: &'a CompactCodes,
        query: &'a [f32],
    ) -> Box<dyn DistanceEstimator + 'a> {
        Box::new(AdcEstimator::new(self.lookup_table(query), codes))
    }

    fn batch_estimator<'a>(
        &'a self,
        codes: &'a crate::soa::SoaCodes,
        query: &'a [f32],
    ) -> Option<Box<dyn DistanceEstimator + 'a>> {
        Some(Box::new(crate::soa::BatchAdcEstimator::new(
            self.lookup_table(query),
            codes,
        )))
    }
}

/// Deterministic stride subsample of up to `cap` vectors.
pub(crate) fn subsample(data: &Dataset, cap: usize, seed: u64) -> Dataset {
    let n = data.len();
    if n <= cap {
        return data.clone();
    }
    let stride = n as f64 / cap as f64;
    let offset = (seed as usize) % stride.ceil().max(1.0) as usize;
    let indices: Vec<usize> = (0..cap)
        .map(|i| ((i as f64 * stride) as usize + offset) % n)
        .collect();
    data.subset(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};

    fn toy(n: usize, dim: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim,
            intrinsic_dim: (dim / 4).max(2),
            clusters: 8,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    #[test]
    fn adc_equals_decoded_distance() {
        let data = toy(400, 16, 1);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &data,
        );
        let codes = pq.encode_dataset(&data);
        let q = data.get(7);
        let lut = pq.lookup_table(q);
        let mut rec = vec![0.0f32; 16];
        for i in (0..400).step_by(37) {
            pq.decode_into(codes.code(i), &mut rec);
            let expect = rpq_linalg::distance::sq_l2(q, &rec);
            let got = lut.distance(codes.code(i));
            assert!(
                (got - expect).abs() < 1e-3 * expect.max(1.0),
                "{got} vs {expect}"
            );
        }
    }

    #[test]
    fn more_codewords_reduce_distortion() {
        let data = toy(600, 16, 2);
        let small = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 4,
                ..Default::default()
            },
            &data,
        );
        let large = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 64,
                ..Default::default()
            },
            &data,
        );
        assert!(
            large.reconstruction_mse(&data) < small.reconstruction_mse(&data),
            "K=64 must beat K=4"
        );
    }

    #[test]
    fn more_chunks_reduce_distortion() {
        let data = toy(600, 16, 3);
        let m2 = ProductQuantizer::train(
            &PqConfig {
                m: 2,
                k: 16,
                ..Default::default()
            },
            &data,
        );
        let m8 = ProductQuantizer::train(
            &PqConfig {
                m: 8,
                k: 16,
                ..Default::default()
            },
            &data,
        );
        assert!(m8.reconstruction_mse(&data) < m2.reconstruction_mse(&data));
    }

    #[test]
    fn lossless_when_codewords_cover_points() {
        // 4 distinct points, K=4 per chunk: reconstruction must be exact.
        let mut data = Dataset::new(4);
        data.push(&[0.0, 0.0, 0.0, 0.0]);
        data.push(&[1.0, 1.0, 1.0, 1.0]);
        data.push(&[2.0, 2.0, 2.0, 2.0]);
        data.push(&[3.0, 3.0, 3.0, 3.0]);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 2,
                k: 4,
                kmeans_iters: 30,
                ..Default::default()
            },
            &data,
        );
        assert!(pq.reconstruction_mse(&data) < 1e-6);
    }

    #[test]
    fn k_clamped_when_training_set_small() {
        let data = toy(10, 8, 4);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 2,
                k: 256,
                ..Default::default()
            },
            &data,
        );
        assert_eq!(pq.codebook().k(), 10);
    }

    #[test]
    #[should_panic(expected = "must divide the dimension")]
    fn indivisible_m_rejected() {
        let data = toy(10, 10, 5);
        let _ = ProductQuantizer::train(
            &PqConfig {
                m: 3,
                ..Default::default()
            },
            &data,
        );
    }

    #[test]
    fn subsample_respects_cap() {
        let data = toy(100, 8, 6);
        let sub = subsample(&data, 25, 3);
        assert_eq!(sub.len(), 25);
        let all = subsample(&data, 1000, 3);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn trait_encode_one_matches_encode_dataset() {
        let data = toy(50, 16, 8);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &data,
        );
        let codes = pq.encode_dataset(&data);
        let mut one = vec![0u8; 4];
        for i in [0usize, 17, 49] {
            VectorCompressor::encode_one(&pq, data.get(i), &mut one);
            assert_eq!(&one[..], codes.code(i), "vector {i}");
        }
    }

    #[test]
    fn compressor_trait_surface() {
        let data = toy(200, 16, 7);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &data,
        );
        assert_eq!(pq.name(), "PQ");
        assert_eq!(pq.dim(), 16);
        assert_eq!(pq.code_dim(), 16);
        assert!(pq.model_bytes() > 0);
        let codes = pq.encode_dataset(&data);
        let q = data.get(0).to_vec();
        let est = pq.estimator(&codes, &q);
        // Distance to self is the quantization distortion: small but >= 0.
        let d = est.distance(0);
        assert!((0.0..50.0).contains(&d), "self distance {d}");
    }
}
