//! Parallel Lloyd's k-means with k-means++ seeding — the codebook trainer
//! every PQ variant shares (paper Def. 3 step 2 cites the Lloyd quantizer).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rpq_linalg::distance::sq_l2;

/// k-means parameters.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Number of clusters (codewords per sub-codebook; paper uses K = 256).
    pub k: usize,
    /// Lloyd iteration cap.
    pub max_iters: usize,
    /// Relative inertia improvement below which iteration stops.
    pub tol: f32,
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 256,
            max_iters: 20,
            tol: 1e-4,
            seed: 0,
        }
    }
}

/// Result of a k-means run.
pub struct KMeansResult {
    /// `k × dim` centroid matrix (flat, row-major).
    pub centroids: Vec<f32>,
    /// Cluster id per input point.
    pub assignments: Vec<u32>,
    /// Final sum of squared distances to assigned centroids.
    pub inertia: f32,
    /// Effective number of clusters (≤ k when there are few points).
    pub k: usize,
}

/// Runs k-means over `n = data.len()/dim` points of dimension `dim`.
///
/// `k` is clamped to the number of points. Empty clusters are re-seeded from
/// the points currently worst-served by their centroid.
pub fn kmeans(data: &[f32], dim: usize, cfg: KMeansConfig) -> KMeansResult {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
    let n = data.len() / dim;
    assert!(n > 0, "k-means needs at least one point");
    let k = cfg.k.min(n).max(1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let point = |i: usize| &data[i * dim..(i + 1) * dim];

    // k-means++ seeding.
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(point(first));
    let mut min_d2: Vec<f32> = (0..n).map(|i| sq_l2(point(i), point(first))).collect();
    while centroids.len() / dim < k {
        let total: f64 = min_d2.iter().map(|&d| d as f64).sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in min_d2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let c = centroids.len() / dim;
        centroids.extend_from_slice(point(pick));
        let new_c = &centroids[c * dim..(c + 1) * dim].to_vec();
        min_d2.par_iter_mut().enumerate().for_each(|(i, d)| {
            let nd = sq_l2(point(i), new_c);
            if nd < *d {
                *d = nd;
            }
        });
    }

    let mut assignments = vec![0u32; n];
    let mut prev_inertia = f32::INFINITY;
    let mut inertia = f32::INFINITY;

    for _ in 0..cfg.max_iters.max(1) {
        // Assignment step (parallel).
        let stats: Vec<(u32, f32)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let p = point(i);
                let mut best = (0u32, f32::INFINITY);
                for c in 0..k {
                    let d = sq_l2(p, &centroids[c * dim..(c + 1) * dim]);
                    if d < best.1 {
                        best = (c as u32, d);
                    }
                }
                best
            })
            .collect();
        inertia = stats.iter().map(|s| s.1 as f64).sum::<f64>() as f32;
        for (a, s) in assignments.iter_mut().zip(&stats) {
            *a = s.0;
        }

        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (i, &(c, _)) in stats.iter().enumerate() {
            counts[c as usize] += 1;
            let row = &mut sums[c as usize * dim..(c as usize + 1) * dim];
            for (s, &x) in row.iter_mut().zip(point(i)) {
                *s += x as f64;
            }
        }
        // Re-seed empty clusters from the worst-served points.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| stats[b].1.total_cmp(&stats[a].1));
        let mut worst_iter = order.into_iter();
        for c in 0..k {
            if counts[c] == 0 {
                if let Some(w) = worst_iter.next() {
                    centroids[c * dim..(c + 1) * dim].copy_from_slice(point(w));
                }
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *dst = (s * inv) as f32;
                }
            }
        }

        if prev_inertia.is_finite() && (prev_inertia - inertia).abs() <= cfg.tol * prev_inertia {
            break;
        }
        prev_inertia = inertia;
    }

    KMeansResult {
        centroids,
        assignments,
        inertia,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<f32>, usize) {
        let mut data = Vec::new();
        for i in 0..50 {
            data.extend_from_slice(&[0.0 + (i % 5) as f32 * 0.01, 0.0]);
            data.extend_from_slice(&[10.0 + (i % 5) as f32 * 0.01, 10.0]);
        }
        (data, 2)
    }

    #[test]
    fn separates_two_blobs() {
        let (data, dim) = two_blobs();
        let res = kmeans(
            &data,
            dim,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(res.k, 2);
        // Points alternate blob A / blob B; assignments must alternate too.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        for (i, &asn) in res.assignments.iter().enumerate() {
            assert_eq!(asn, if i % 2 == 0 { a } else { b }, "point {i}");
        }
        assert!(res.inertia < 1.0, "inertia {}", res.inertia);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = vec![0.0f32, 1.0, 2.0];
        let res = kmeans(
            &data,
            1,
            KMeansConfig {
                k: 100,
                ..Default::default()
            },
        );
        assert_eq!(res.k, 3);
        assert!(res.inertia < 1e-6);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, dim) = two_blobs();
        let r1 = kmeans(
            &data,
            dim,
            KMeansConfig {
                k: 1,
                ..Default::default()
            },
        );
        let r4 = kmeans(
            &data,
            dim,
            KMeansConfig {
                k: 4,
                ..Default::default()
            },
        );
        assert!(r4.inertia < r1.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, dim) = two_blobs();
        let a = kmeans(
            &data,
            dim,
            KMeansConfig {
                k: 4,
                seed: 3,
                ..Default::default()
            },
        );
        let b = kmeans(
            &data,
            dim,
            KMeansConfig {
                k: 4,
                seed: 3,
                ..Default::default()
            },
        );
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let data = vec![1.0f32; 40]; // 20 identical 2-D points
        let res = kmeans(
            &data,
            2,
            KMeansConfig {
                k: 5,
                ..Default::default()
            },
        );
        assert!(res.inertia < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_panics() {
        let _ = kmeans(&[], 4, KMeansConfig::default());
    }
}
