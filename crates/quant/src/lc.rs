//! L&C-style baseline — "Link and Code" (Douze et al., CVPR'18): refine PQ
//! reconstructions using the graph structure.
//!
//! Substitution note (DESIGN.md §4): the original learns per-entry
//! regression codebooks over neighbor reconstructions. We keep its defining
//! property — the graph refines *reconstruction accuracy* (not routing) at
//! the cost of extra per-distance work — with a two-coefficient global
//! regression fitted by least squares:
//!
//! ```text
//! x̂ = β₀ · decode(code(x)) + β₁ · mean_{u ∈ N(x)} decode(code(u))
//! ```
//!
//! Distances are computed from the refined reconstruction on the fly, which
//! is why L&C trades QPS for recall in the paper's Figure 6.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use rpq_data::Dataset;
use rpq_graph::{DistanceEstimator, ProximityGraph};
use rpq_linalg::distance::sq_l2;

use crate::codebook::CompactCodes;
use crate::compressor::VectorCompressor;
use crate::pq::{PqConfig, ProductQuantizer};

/// L&C parameters.
#[derive(Clone, Copy, Debug)]
pub struct LcConfig {
    /// Inner PQ settings.
    pub pq: PqConfig,
    /// Sample size for fitting the regression coefficients.
    pub fit_sample: usize,
}

impl Default for LcConfig {
    fn default() -> Self {
        Self {
            pq: PqConfig::default(),
            fit_sample: 2000,
        }
    }
}

/// A trained L&C compressor: PQ + graph-neighbor regression refinement.
pub struct LinkAndCode {
    pq: ProductQuantizer,
    graph: Arc<ProximityGraph>,
    beta0: f32,
    beta1: f32,
    train_seconds: f32,
}

impl LinkAndCode {
    /// Trains PQ, encodes `data`, and fits `(β₀, β₁)` by least squares over
    /// a sample of reconstruction targets.
    pub fn train(cfg: &LcConfig, data: &Dataset, graph: Arc<ProximityGraph>) -> Self {
        let start = Instant::now();
        assert_eq!(graph.len(), data.len(), "graph and dataset size mismatch");
        let pq = ProductQuantizer::train(&cfg.pq, data);
        let codes = pq.encode_dataset(data);
        let d = data.dim();

        // Normal equations for x ≈ β₀ a + β₁ b accumulated over samples:
        // [aa ab; ab bb] [β₀; β₁] = [ax; bx]
        let (mut aa, mut ab, mut bb, mut ax, mut bx) = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut a = vec![0.0f32; d];
        let mut b = vec![0.0f32; d];
        let mut nb = vec![0.0f32; d];
        let n = data.len();
        let step = (n / cfg.fit_sample.max(1)).max(1);
        for i in (0..n).step_by(step) {
            pq.decode_into(codes.code(i), &mut a);
            let neighbors = graph.neighbors(i as u32);
            if neighbors.is_empty() {
                continue;
            }
            b.iter_mut().for_each(|v| *v = 0.0);
            for &u in neighbors {
                pq.decode_into(codes.code(u as usize), &mut nb);
                for (acc, &v) in b.iter_mut().zip(&nb) {
                    *acc += v;
                }
            }
            let inv = 1.0 / neighbors.len() as f32;
            b.iter_mut().for_each(|v| *v *= inv);
            let x = data.get(i);
            for j in 0..d {
                aa += (a[j] * a[j]) as f64;
                ab += (a[j] * b[j]) as f64;
                bb += (b[j] * b[j]) as f64;
                ax += (a[j] * x[j]) as f64;
                bx += (b[j] * x[j]) as f64;
            }
        }
        let det = aa * bb - ab * ab;
        let (beta0, beta1) = if det.abs() < 1e-9 {
            (1.0, 0.0)
        } else {
            (
                ((bb * ax - ab * bx) / det) as f32,
                ((aa * bx - ab * ax) / det) as f32,
            )
        };
        Self {
            pq,
            graph,
            beta0,
            beta1,
            train_seconds: start.elapsed().as_secs_f32(),
        }
    }

    /// The fitted regression coefficients.
    pub fn betas(&self) -> (f32, f32) {
        (self.beta0, self.beta1)
    }

    /// Refined reconstruction of vertex `i` given the full code set.
    pub fn refine_into(&self, codes: &CompactCodes, i: u32, out: &mut [f32]) {
        let d = self.pq.code_dim();
        assert_eq!(out.len(), d);
        let mut own = vec![0.0f32; d];
        self.pq.decode_into(codes.code(i as usize), &mut own);
        let neighbors = self.graph.neighbors(i);
        if neighbors.is_empty() {
            out.copy_from_slice(&own);
            return;
        }
        let mut avg = vec![0.0f32; d];
        let mut nb = vec![0.0f32; d];
        for &u in neighbors {
            self.pq.decode_into(codes.code(u as usize), &mut nb);
            for (acc, &v) in avg.iter_mut().zip(&nb) {
                *acc += v;
            }
        }
        let inv = 1.0 / neighbors.len() as f32;
        for ((o, &ow), &av) in out.iter_mut().zip(&own).zip(&avg) {
            *o = self.beta0 * ow + self.beta1 * av * inv;
        }
    }
}

impl VectorCompressor for LinkAndCode {
    fn name(&self) -> String {
        "L&C".to_string()
    }

    fn dim(&self) -> usize {
        self.pq.dim()
    }

    fn code_dim(&self) -> usize {
        self.pq.code_dim()
    }

    fn model_bytes(&self) -> usize {
        self.pq.model_bytes() + 2 * 4
    }

    fn train_seconds(&self) -> f32 {
        self.train_seconds
    }

    fn encode_dataset(&self, data: &Dataset) -> CompactCodes {
        self.pq.encode_dataset(data)
    }

    fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        self.pq.decode_into(code, out);
    }

    // `batch_estimator` stays at the default `None`: L&C's estimator refines
    // reconstructions from graph neighborhoods per distance, so it has no
    // table-driven batched kernel — search falls back to this scalar path.
    fn estimator<'a>(
        &'a self,
        codes: &'a CompactCodes,
        query: &'a [f32],
    ) -> Box<dyn DistanceEstimator + 'a> {
        Box::new(LcEstimator {
            lc: self,
            codes,
            query: query.to_vec(),
            scratch: RefCell::new(LcScratch {
                own: vec![0.0; self.code_dim()],
                avg: vec![0.0; self.code_dim()],
                nb: vec![0.0; self.code_dim()],
            }),
        })
    }
}

struct LcScratch {
    own: Vec<f32>,
    avg: Vec<f32>,
    nb: Vec<f32>,
}

/// Per-query estimator that refines reconstructions on the fly — slower per
/// distance than an ADC table by design (mirrors L&C's compute/recall
/// trade).
struct LcEstimator<'a> {
    lc: &'a LinkAndCode,
    codes: &'a CompactCodes,
    query: Vec<f32>,
    scratch: RefCell<LcScratch>,
}

impl DistanceEstimator for LcEstimator<'_> {
    fn distance(&self, node: u32) -> f32 {
        let mut s = self.scratch.borrow_mut();
        let LcScratch { own, avg, nb } = &mut *s;
        self.lc.pq.decode_into(self.codes.code(node as usize), own);
        let neighbors = self.lc.graph.neighbors(node);
        if neighbors.is_empty() {
            return sq_l2(&self.query, own);
        }
        avg.iter_mut().for_each(|v| *v = 0.0);
        for &u in neighbors {
            self.lc.pq.decode_into(self.codes.code(u as usize), nb);
            for (acc, &v) in avg.iter_mut().zip(nb.iter()) {
                *acc += v;
            }
        }
        let inv = 1.0 / neighbors.len() as f32;
        let b0 = self.lc.beta0;
        let b1 = self.lc.beta1 * inv;
        let mut acc = 0.0f32;
        for ((&o, &a), &q) in own.iter().zip(avg.iter()).zip(&self.query) {
            let r = b0 * o + b1 * a;
            let dd = q - r;
            acc += dd * dd;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::VamanaConfig;

    fn setup(n: usize, seed: u64) -> (Dataset, Arc<ProximityGraph>) {
        let data = SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 6,
            cluster_std: 0.8,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed);
        let graph = Arc::new(
            VamanaConfig {
                r: 8,
                l: 24,
                ..Default::default()
            }
            .build(&data),
        );
        (data, graph)
    }

    fn lc_cfg() -> LcConfig {
        LcConfig {
            pq: PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            fit_sample: 500,
        }
    }

    #[test]
    fn refinement_reduces_reconstruction_error() {
        let (data, graph) = setup(500, 1);
        let lc = LinkAndCode::train(&lc_cfg(), &data, graph);
        let codes = lc.encode_dataset(&data);
        let mut plain = vec![0.0f32; 16];
        let mut refined = vec![0.0f32; 16];
        let (mut err_plain, mut err_refined) = (0.0f64, 0.0f64);
        for i in 0..data.len() {
            lc.decode_into(codes.code(i), &mut plain);
            lc.refine_into(&codes, i as u32, &mut refined);
            err_plain += sq_l2(data.get(i), &plain) as f64;
            err_refined += sq_l2(data.get(i), &refined) as f64;
        }
        assert!(
            err_refined <= err_plain * 1.001,
            "refinement must not hurt: {err_refined} vs {err_plain}"
        );
    }

    #[test]
    fn betas_are_finite_and_dominated_by_own_code() {
        let (data, graph) = setup(400, 2);
        let lc = LinkAndCode::train(&lc_cfg(), &data, graph);
        let (b0, b1) = lc.betas();
        assert!(b0.is_finite() && b1.is_finite());
        assert!(b0 > 0.5, "own reconstruction should dominate, b0 = {b0}");
        assert!(b0.abs() > b1.abs(), "b0 {b0} vs b1 {b1}");
    }

    #[test]
    fn estimator_matches_refined_reconstruction() {
        let (data, graph) = setup(300, 3);
        let lc = LinkAndCode::train(&lc_cfg(), &data, graph);
        let codes = lc.encode_dataset(&data);
        let q = data.get(0).to_vec();
        let est = lc.estimator(&codes, &q);
        let mut refined = vec![0.0f32; 16];
        for i in [3u32, 57, 200] {
            lc.refine_into(&codes, i, &mut refined);
            let expect = sq_l2(&q, &refined);
            let got = est.distance(i);
            assert!(
                (got - expect).abs() < 1e-3 * expect.max(1.0),
                "{got} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn graph_size_mismatch_panics() {
        let (data, _) = setup(100, 4);
        let (_, other_graph) = setup(50, 5);
        let _ = LinkAndCode::train(&lc_cfg(), &data, other_graph);
    }
}
