//! SoA (chunk-major) code layout and batched ADC kernels (DESIGN.md §9).
//!
//! [`crate::codebook::CompactCodes`] stores codes AoS — one `M`-byte row per
//! vector — which is the natural layout for encode, persistence, and
//! compaction. The inner loop of every search, however, is *distance*:
//! `M` lookup-table reads per visited vertex, repeated for each candidate
//! the beam expands. The types here restructure that loop the way FAISS's
//! `IndexPQFastScan` and ScaNN's register-blocked kernels do:
//!
//! * [`SoaCodes`] — chunk-major code storage (`chunks[j][i]` = chunk `j` of
//!   vector `i`), losslessly convertible to/from [`CompactCodes`];
//! * [`BatchAdcEstimator`] — scores candidate blocks of up to
//!   [`ADC_BLOCK`] codes per lookup-table row pass, keeping each `k`-entry
//!   LUT row hot while it serves the whole block; the accumulation order is
//!   pinned to [`LookupTable::distance`]'s so batched f32 distances are
//!   **bit-identical** to the scalar path;
//! * [`PackedCodes4`] + [`QuantizedLut`] + [`Packed4AdcEstimator`] — the
//!   4-bit mode: for `K ≤ 16`, two codes per byte and a u8-quantized LUT
//!   whose whole table is `16·M` bytes, small enough to live in L1 (or
//!   registers under a `std::simd`-style shuffle). This path is *not*
//!   bit-exact; its contract is the proven error bound
//!   [`QuantizedLut::error_bound`] (≤ `M·Δ/2`, Δ = the u8 quantization
//!   step) plus the recall floor pinned by `tests/hotpath.rs`.
//!
//! The kernels are written as plain indexed loops over contiguous rows so
//! the autovectorizer can chew on them; the table gathers themselves are the
//! scalar residue that real `vpshufb`/`vgatherdps` kernels would lift, which
//! is where a vendored `std::simd` shim would slot in without changing any
//! contract here.

use rpq_graph::DistanceEstimator;

use crate::codebook::{CompactCodes, LookupTable};

/// Codes scored per kernel block: 32 accumulators fit comfortably in two
/// AVX2 (or four NEON) register files while the active LUT row stays in L1.
pub const ADC_BLOCK: usize = 32;

/// Chunk-major (SoA) compact codes: row `j` holds chunk `j` of every vector.
///
/// Append-friendly by construction — each of the `m` rows grows
/// independently — so the streaming index (DESIGN.md §8) can maintain the
/// SoA mirror in O(M) per insert.
#[derive(Clone, Debug, PartialEq)]
pub struct SoaCodes {
    n: usize,
    chunks: Vec<Vec<u8>>,
}

impl SoaCodes {
    /// An empty chunk-major store for `m`-chunk codes.
    pub fn empty(m: usize) -> Self {
        assert!(m > 0, "chunk count must be positive");
        Self {
            n: 0,
            chunks: vec![Vec::new(); m],
        }
    }

    /// Transposes an AoS code store into chunk-major rows. Lossless:
    /// [`SoaCodes::to_compact`] returns an equal [`CompactCodes`].
    pub fn from_compact(codes: &CompactCodes) -> Self {
        let (n, m) = (codes.len(), codes.m());
        let mut chunks = vec![vec![0u8; n]; m];
        for i in 0..n {
            let code = codes.code(i);
            for (row, &c) in chunks.iter_mut().zip(code) {
                row[i] = c;
            }
        }
        Self { n, chunks }
    }

    /// Transposes back to the AoS layout.
    pub fn to_compact(&self) -> CompactCodes {
        let m = self.m();
        let mut codes = vec![0u8; self.n * m];
        for (j, row) in self.chunks.iter().enumerate() {
            for (i, &c) in row.iter().enumerate() {
                codes[i * m + j] = c;
            }
        }
        CompactCodes::new(self.n, m, codes)
    }

    /// Appends one code (AoS order); its id is the previous
    /// [`SoaCodes::len`]. Mirrors [`CompactCodes::push`].
    pub fn push(&mut self, code: &[u8]) {
        assert_eq!(code.len(), self.m(), "code length mismatch");
        for (row, &c) in self.chunks.iter_mut().zip(code) {
            row.push(c);
        }
        self.n += 1;
    }

    /// Gathers the codes of `survivors` (in order) into a fresh store — the
    /// SoA half of a consolidation pass, mirroring [`CompactCodes::compact`].
    pub fn compact(&self, survivors: &[u32]) -> SoaCodes {
        let chunks = self
            .chunks
            .iter()
            .map(|row| survivors.iter().map(|&i| row[i as usize]).collect())
            .collect();
        Self {
            n: survivors.len(),
            chunks,
        }
    }

    /// Number of stored codes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of chunks M.
    #[inline]
    pub fn m(&self) -> usize {
        self.chunks.len()
    }

    /// Row `j`: chunk `j`'s byte for every vector, contiguous.
    #[inline]
    pub fn chunk(&self, j: usize) -> &[u8] {
        &self.chunks[j]
    }

    /// In-memory footprint in bytes (same as the AoS store it mirrors,
    /// modulo per-row allocation slack).
    pub fn memory_bytes(&self) -> usize {
        self.chunks.iter().map(|r| r.capacity()).sum()
    }
}

/// Batched ADC estimator over chunk-major codes.
///
/// Scalar [`DistanceEstimator::distance`] and the block kernel behind
/// [`DistanceEstimator::distance_batch`] both replicate
/// [`LookupTable::distance`]'s accumulation order exactly (groups of four
/// chunks, then a per-chunk tail), so every distance this estimator returns
/// is bit-identical to [`crate::AdcEstimator`] over the equivalent AoS
/// codes — the invariant `tests/hotpath.rs` pins.
pub struct BatchAdcEstimator<'a> {
    lut: LookupTable,
    codes: &'a SoaCodes,
}

impl<'a> BatchAdcEstimator<'a> {
    pub fn new(lut: LookupTable, codes: &'a SoaCodes) -> Self {
        assert_eq!(lut.m(), codes.m(), "lookup table / codes chunk mismatch");
        Self { lut, codes }
    }

    /// Scores one block of at most [`ADC_BLOCK`] nodes, chunk-major: each
    /// LUT row is walked once while it serves every code in the block.
    fn score_block(&self, nodes: &[u32], out: &mut [f32]) {
        debug_assert!(nodes.len() <= ADC_BLOCK);
        debug_assert_eq!(nodes.len(), out.len());
        let m = self.codes.m();
        let k = self.lut.k();
        let table = self.lut.values();
        let mut acc = [0.0f32; ADC_BLOCK];
        let mut j = 0;
        // Four LUT rows per pass, mirroring the scalar path's 4-wide unroll:
        // per node the partial sum is ((t0+t1)+t2)+t3, added to the running
        // accumulator — the exact f32 operation sequence of
        // `LookupTable::distance`.
        while j + 4 <= m {
            let r0 = self.codes.chunk(j);
            let r1 = self.codes.chunk(j + 1);
            let r2 = self.codes.chunk(j + 2);
            let r3 = self.codes.chunk(j + 3);
            let t0 = &table[j * k..(j + 1) * k];
            let t1 = &table[(j + 1) * k..(j + 2) * k];
            let t2 = &table[(j + 2) * k..(j + 3) * k];
            let t3 = &table[(j + 3) * k..(j + 4) * k];
            for (slot, &node) in acc.iter_mut().zip(nodes) {
                let i = node as usize;
                *slot += t0[r0[i] as usize]
                    + t1[r1[i] as usize]
                    + t2[r2[i] as usize]
                    + t3[r3[i] as usize];
            }
            j += 4;
        }
        while j < m {
            let row = self.codes.chunk(j);
            let t = &table[j * k..(j + 1) * k];
            for (slot, &node) in acc.iter_mut().zip(nodes) {
                *slot += t[row[node as usize] as usize];
            }
            j += 1;
        }
        out.copy_from_slice(&acc[..nodes.len()]);
    }
}

impl DistanceEstimator for BatchAdcEstimator<'_> {
    #[inline]
    fn distance(&self, node: u32) -> f32 {
        debug_assert!(
            (node as usize) < self.codes.len(),
            "ADC estimator queried for node {node} but the code store holds {} codes",
            self.codes.len()
        );
        let i = node as usize;
        let m = self.codes.m();
        let k = self.lut.k();
        let table = self.lut.values();
        let mut acc = 0.0f32;
        let mut j = 0;
        while j + 4 <= m {
            acc += table[j * k + self.codes.chunk(j)[i] as usize]
                + table[(j + 1) * k + self.codes.chunk(j + 1)[i] as usize]
                + table[(j + 2) * k + self.codes.chunk(j + 2)[i] as usize]
                + table[(j + 3) * k + self.codes.chunk(j + 3)[i] as usize];
            j += 4;
        }
        while j < m {
            acc += table[j * k + self.codes.chunk(j)[i] as usize];
            j += 1;
        }
        acc
    }

    fn distance_batch(&self, nodes: &[u32], out: &mut [f32]) {
        assert_eq!(nodes.len(), out.len(), "nodes/out length mismatch");
        for (nb, ob) in nodes.chunks(ADC_BLOCK).zip(out.chunks_mut(ADC_BLOCK)) {
            self.score_block(nb, ob);
        }
    }
}

/// 4-bit packed chunk-major codes: two codes per byte per chunk row
/// (vector `i`'s chunk sits in the low nibble of byte `i/2` when `i` is
/// even, the high nibble when odd). Requires `K ≤ 16`.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedCodes4 {
    n: usize,
    chunks: Vec<Vec<u8>>,
}

impl PackedCodes4 {
    /// Packs an AoS code store. Panics if any code id needs more than four
    /// bits (train with `K ≤ 16` to use this mode).
    pub fn from_compact(codes: &CompactCodes) -> Self {
        let (n, m) = (codes.len(), codes.m());
        let mut chunks = vec![vec![0u8; n.div_ceil(2)]; m];
        for i in 0..n {
            let code = codes.code(i);
            for (row, &c) in chunks.iter_mut().zip(code) {
                assert!(
                    c < 16,
                    "code id {c} does not fit in 4 bits (K must be <= 16)"
                );
                row[i / 2] |= c << ((i & 1) * 4);
            }
        }
        Self { n, chunks }
    }

    /// The 4-bit code of vector `i` in chunk `j`.
    #[inline]
    pub fn nibble(&self, j: usize, i: usize) -> u8 {
        debug_assert!(i < self.n);
        (self.chunks[j][i / 2] >> ((i & 1) * 4)) & 0x0F
    }

    /// Number of stored codes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of chunks M.
    #[inline]
    pub fn m(&self) -> usize {
        self.chunks.len()
    }

    /// In-memory footprint: half the 8-bit store.
    pub fn memory_bytes(&self) -> usize {
        self.chunks.iter().map(|r| r.capacity()).sum()
    }
}

/// A u8-quantized ADC lookup table (the FastScan trick): per-chunk bias
/// `b_j = min_k table[j][k]`, one global step `Δ = max_{j,k}(table[j][k] −
/// b_j) / 255`, entries `round((v − b_j)/Δ)` clamped to `[0, 255]`.
///
/// Dequantization is `Δ·Σ_j q_j + Σ_j b_j` with the integer sum exact in
/// u32, so the only error is per-entry rounding: each entry is within
/// `Δ/2` of its f32 value (the clamp never cuts, since `Δ` is sized so the
/// largest shifted entry maps to exactly 255), giving
/// `|approx − exact| ≤ M·Δ/2` = [`QuantizedLut::error_bound`].
#[derive(Clone, Debug)]
pub struct QuantizedLut {
    m: usize,
    k: usize,
    table: Vec<u8>,
    /// The quantization step Δ (0 when every row is constant).
    scale: f32,
    /// Σ_j b_j, restored after the integer accumulation.
    bias: f32,
}

impl QuantizedLut {
    /// Quantizes an f32 lookup table.
    pub fn new(lut: &LookupTable) -> Self {
        let (m, k) = (lut.m(), lut.k());
        let values = lut.values();
        let mins: Vec<f32> = (0..m)
            .map(|j| {
                values[j * k..(j + 1) * k]
                    .iter()
                    .fold(f32::INFINITY, |a, &v| a.min(v))
            })
            .collect();
        let bias: f32 = mins.iter().sum();
        let max_shift = (0..m)
            .flat_map(|j| {
                let b = mins[j];
                values[j * k..(j + 1) * k].iter().map(move |&v| v - b)
            })
            .fold(0.0f32, f32::max);
        let scale = max_shift / 255.0;
        let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        let table = (0..m)
            .flat_map(|j| {
                let b = mins[j];
                values[j * k..(j + 1) * k]
                    .iter()
                    .map(move |&v| ((v - b) * inv).round().clamp(0.0, 255.0) as u8)
            })
            .collect();
        Self {
            m,
            k,
            table,
            scale,
            bias,
        }
    }

    /// The proven worst-case absolute error vs the f32 table: `M·Δ/2`.
    pub fn error_bound(&self) -> f32 {
        self.m as f32 * self.scale * 0.5
    }

    /// Number of chunks M.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Table bytes — `M·K`, vs `4·M·K` for the f32 table.
    pub fn memory_bytes(&self) -> usize {
        self.table.len()
    }
}

/// ADC estimator in the 4-bit mode: u8 LUT reads accumulated exactly in
/// u32, dequantized once per distance. Batched and scalar paths produce
/// bit-identical f32 values (the integer sum is order-independent); both
/// are within [`QuantizedLut::error_bound`] of the exact f32 ADC distance.
pub struct Packed4AdcEstimator<'a> {
    lut: QuantizedLut,
    codes: &'a PackedCodes4,
}

impl<'a> Packed4AdcEstimator<'a> {
    pub fn new(lut: QuantizedLut, codes: &'a PackedCodes4) -> Self {
        assert_eq!(lut.m, codes.m(), "lookup table / codes chunk mismatch");
        assert!(lut.k <= 16, "4-bit codes need K <= 16, got {}", lut.k);
        Self { lut, codes }
    }

    /// The quantization contract of this estimator's table.
    pub fn error_bound(&self) -> f32 {
        self.lut.error_bound()
    }

    fn score_block(&self, nodes: &[u32], out: &mut [f32]) {
        debug_assert!(nodes.len() <= ADC_BLOCK);
        let k = self.lut.k;
        let mut acc = [0u32; ADC_BLOCK];
        for (j, row) in self.codes.chunks.iter().enumerate() {
            let t = &self.lut.table[j * k..(j + 1) * k];
            for (slot, &node) in acc.iter_mut().zip(nodes) {
                let i = node as usize;
                let c = (row[i / 2] >> ((i & 1) * 4)) & 0x0F;
                *slot += t[c as usize] as u32;
            }
        }
        for (o, &sum) in out.iter_mut().zip(&acc[..nodes.len()]) {
            *o = sum as f32 * self.lut.scale + self.lut.bias;
        }
    }
}

impl DistanceEstimator for Packed4AdcEstimator<'_> {
    #[inline]
    fn distance(&self, node: u32) -> f32 {
        debug_assert!(
            (node as usize) < self.codes.len(),
            "ADC estimator queried for node {node} but the code store holds {} codes",
            self.codes.len()
        );
        let i = node as usize;
        let k = self.lut.k;
        let mut sum = 0u32;
        for (j, row) in self.codes.chunks.iter().enumerate() {
            let c = (row[i / 2] >> ((i & 1) * 4)) & 0x0F;
            sum += self.lut.table[j * k + c as usize] as u32;
        }
        sum as f32 * self.lut.scale + self.lut.bias
    }

    fn distance_batch(&self, nodes: &[u32], out: &mut [f32]) {
        assert_eq!(nodes.len(), out.len(), "nodes/out length mismatch");
        for (nb, ob) in nodes.chunks(ADC_BLOCK).zip(out.chunks_mut(ADC_BLOCK)) {
            self.score_block(nb, ob);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::Codebook;

    /// Deterministic pseudo-random bytes/floats without a dependency.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn f32(&mut self) -> f32 {
            (self.next() % 10_000) as f32 / 1000.0 - 5.0
        }
        fn byte(&mut self, k: usize) -> u8 {
            (self.next() % k as u64) as u8
        }
    }

    fn random_world(m: usize, k: usize, n: usize, seed: u64) -> (Codebook, CompactCodes, Vec<f32>) {
        let dsub = 2;
        let mut rng = XorShift(seed | 1);
        let codewords = (0..m * k * dsub).map(|_| rng.f32()).collect();
        let cb = Codebook::new(m, k, dsub, codewords);
        let codes: Vec<u8> = (0..n * m).map(|_| rng.byte(k)).collect();
        let query: Vec<f32> = (0..m * dsub).map(|_| rng.f32()).collect();
        (cb, CompactCodes::new(n, m, codes), query)
    }

    #[test]
    fn soa_roundtrip_is_lossless() {
        for (m, k, n) in [(1, 16, 7), (4, 16, 37), (8, 256, 65), (16, 256, 64)] {
            let (_, codes, _) = random_world(m, k, n, 99);
            let soa = SoaCodes::from_compact(&codes);
            assert_eq!(soa.len(), n);
            assert_eq!(soa.m(), m);
            assert_eq!(soa.to_compact(), codes, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn soa_push_matches_from_compact() {
        let (_, codes, _) = random_world(5, 16, 23, 3);
        let mut grown = SoaCodes::empty(5);
        for i in 0..codes.len() {
            grown.push(codes.code(i));
        }
        assert_eq!(grown, SoaCodes::from_compact(&codes));
    }

    #[test]
    fn soa_compact_matches_aos_compact() {
        let (_, codes, _) = random_world(3, 16, 40, 4);
        let survivors: Vec<u32> = vec![0, 7, 13, 39, 2];
        let soa = SoaCodes::from_compact(&codes).compact(&survivors);
        assert_eq!(soa.to_compact(), codes.compact(&survivors));
    }

    #[test]
    fn batched_distances_bit_equal_scalar() {
        // Odd n exercises the block remainder; m covers tail-only (1),
        // exact groups (4, 8, 16), and group+tail (6).
        for (m, k) in [(1, 16), (4, 16), (6, 32), (8, 256), (16, 256)] {
            let n = 37;
            let (cb, codes, query) = random_world(m, k, n, 7 * m as u64 + k as u64);
            let lut = cb.lookup_table(&query);
            let soa = SoaCodes::from_compact(&codes);
            let est = BatchAdcEstimator::new(cb.lookup_table(&query), &soa);
            let ids: Vec<u32> = (0..n as u32).collect();
            let mut batched = vec![0.0f32; n];
            est.distance_batch(&ids, &mut batched);
            for (i, got) in batched.iter().enumerate() {
                let scalar = lut.distance(codes.code(i));
                assert_eq!(
                    scalar.to_bits(),
                    got.to_bits(),
                    "m={m} k={k} i={i}: {scalar} vs {got}"
                );
                assert_eq!(scalar.to_bits(), est.distance(i as u32).to_bits());
            }
        }
    }

    #[test]
    fn packed4_roundtrips_nibbles() {
        let (_, codes, _) = random_world(4, 16, 31, 11);
        let packed = PackedCodes4::from_compact(&codes);
        assert_eq!(packed.len(), 31);
        assert!(packed.memory_bytes() <= codes.memory_bytes() / 2 + 4);
        for i in 0..31 {
            for (j, &c) in codes.code(i).iter().enumerate() {
                assert_eq!(packed.nibble(j, i), c);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit in 4 bits")]
    fn packed4_rejects_wide_codes() {
        let codes = CompactCodes::new(1, 2, vec![3, 17]);
        let _ = PackedCodes4::from_compact(&codes);
    }

    #[test]
    fn quantized_lut_respects_error_bound() {
        for seed in [1u64, 2, 3] {
            let (cb, codes, query) = random_world(8, 16, 50, seed);
            let lut = cb.lookup_table(&query);
            let qlut = QuantizedLut::new(&lut);
            let bound = qlut.error_bound();
            assert!(bound > 0.0);
            let packed = PackedCodes4::from_compact(&codes);
            let est = Packed4AdcEstimator::new(qlut, &packed);
            for i in 0..codes.len() {
                let exact = lut.distance(codes.code(i));
                let approx = est.distance(i as u32);
                let err = (approx - exact).abs();
                // Tiny slack for the two f32 roundings in dequantization.
                assert!(
                    err <= bound * 1.0001 + 1e-5,
                    "seed={seed} i={i}: err {err} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn packed4_batch_bit_equal_its_scalar() {
        let (cb, codes, query) = random_world(8, 16, 45, 21);
        let packed = PackedCodes4::from_compact(&codes);
        let est = Packed4AdcEstimator::new(QuantizedLut::new(&cb.lookup_table(&query)), &packed);
        let ids: Vec<u32> = (0..45).collect();
        let mut out = vec![0.0f32; 45];
        est.distance_batch(&ids, &mut out);
        for (i, &d) in out.iter().enumerate() {
            assert_eq!(d.to_bits(), est.distance(i as u32).to_bits());
        }
    }

    #[test]
    fn constant_table_quantizes_exactly() {
        // All codewords identical => every LUT row is constant => Δ = 0 and
        // the 4-bit distance must equal the exact one.
        let cb = Codebook::new(2, 4, 1, vec![2.0; 8]);
        let lut = cb.lookup_table(&[1.0, 3.0]);
        let qlut = QuantizedLut::new(&lut);
        assert_eq!(qlut.error_bound(), 0.0);
        let codes = CompactCodes::new(3, 2, vec![0, 1, 2, 3, 1, 0]);
        let packed = PackedCodes4::from_compact(&codes);
        let est = Packed4AdcEstimator::new(qlut, &packed);
        for i in 0..3u32 {
            assert_eq!(est.distance(i), lut.distance(codes.code(i as usize)));
        }
    }

    #[test]
    fn quantized_lut_is_quarter_size() {
        let (cb, _, query) = random_world(8, 16, 4, 5);
        let lut = cb.lookup_table(&query);
        let qlut = QuantizedLut::new(&lut);
        assert_eq!(qlut.memory_bytes() * 4, lut.memory_bytes());
        assert_eq!(qlut.m(), 8);
    }
}
