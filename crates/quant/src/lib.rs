//! # rpq-quant
//!
//! Quantization substrate and the paper's baseline quantizers:
//!
//! * [`mod@kmeans`] — parallel Lloyd's algorithm with k-means++ seeding (the
//!   codebook trainer inside every PQ variant, paper Def. 3),
//! * [`codebook`] — codebooks, compact codes, ADC/SDC lookup tables
//!   (paper §2.1's lookup-table query machinery),
//! * [`pq`] — **PQ** (Jégou et al., TPAMI'11): vertical split + per-chunk
//!   k-means; DiskANN's default quantizer,
//! * [`opq`] — **OPQ** (Ge et al., CVPR'13): non-parametric alternation of
//!   PQ and an orthogonal Procrustes rotation update,
//! * [`catalyst`] — **Catalyst** (Sablayrolles et al., "spreading vectors"):
//!   a learned graph-agnostic projection trained with a rank-preserving
//!   triplet loss before PQ (see DESIGN.md §4 for the substitution note),
//! * [`lc`] — **L&C** (Douze et al., CVPR'18): PQ refined with a learned
//!   regression over graph-neighbor reconstructions (simplified; DESIGN.md
//!   §4),
//! * [`compressor`] — the [`VectorCompressor`] trait the ANNS engines
//!   consume: every quantizer (including RPQ in `rpq-core`) exposes compact
//!   codes plus a per-query [`rpq_graph::DistanceEstimator`],
//! * [`soa`] — chunk-major (SoA) code layout and the batched / 4-bit ADC
//!   kernels behind the hot search loop (DESIGN.md §9).

pub mod catalyst;
pub mod codebook;
pub mod compressor;
pub mod kmeans;
pub mod lc;
pub mod opq;
pub mod persist;
pub mod pq;
pub mod soa;

pub use codebook::{Codebook, CompactCodes, LookupTable};
pub use compressor::{AdcEstimator, SdcEstimator, VectorCompressor};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use opq::{OpqConfig, OptimizedProductQuantizer};
pub use persist::{read_codebook, read_rotated_pq, write_codebook, write_rotated_pq};
pub use pq::{PqConfig, ProductQuantizer};
pub use soa::{
    BatchAdcEstimator, Packed4AdcEstimator, PackedCodes4, QuantizedLut, SoaCodes, ADC_BLOCK,
};
