//! Codebooks, compact codes and distance lookup tables (paper §2.1).
//!
//! A codebook holds `M` sub-codebooks of `K` codewords each; a vector is
//! encoded as `M` codeword ids (one byte per id for K ≤ 256, the paper's
//! setting). At query time, a per-query **ADC lookup table** caches
//! `δ(q_j, c_jk)` for every sub-codeword, making each estimated distance a
//! sum of `M` table reads — the hot loop of PQ-integrated search.

use rpq_data::Dataset;
use rpq_linalg::distance::sq_l2;

/// Product codebook: `m` sub-codebooks × `k` codewords × `dsub` dims.
#[derive(Clone, Debug, PartialEq)]
pub struct Codebook {
    m: usize,
    k: usize,
    dsub: usize,
    /// Flat layout `[m][k][dsub]`.
    codewords: Vec<f32>,
}

impl Codebook {
    /// Assembles a codebook from a flat buffer (length must be `m*k*dsub`).
    pub fn new(m: usize, k: usize, dsub: usize, codewords: Vec<f32>) -> Self {
        assert!(m > 0 && k > 0 && dsub > 0, "codebook dims must be positive");
        assert!(
            k <= 256,
            "compact codes are one byte: K must be <= 256, got {k}"
        );
        assert_eq!(
            codewords.len(),
            m * k * dsub,
            "codeword buffer size mismatch"
        );
        Self {
            m,
            k,
            dsub,
            codewords,
        }
    }

    /// Number of chunks M.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codewords per sub-codebook K.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sub-vector dimensionality D/M.
    #[inline]
    pub fn dsub(&self) -> usize {
        self.dsub
    }

    /// Full vector dimensionality D.
    #[inline]
    pub fn dim(&self) -> usize {
        self.m * self.dsub
    }

    /// The `ki`-th codeword of sub-codebook `j`.
    #[inline]
    pub fn codeword(&self, j: usize, ki: usize) -> &[f32] {
        debug_assert!(j < self.m && ki < self.k);
        let base = (j * self.k + ki) * self.dsub;
        &self.codewords[base..base + self.dsub]
    }

    /// Mutable sub-codebook `j` as a flat `k × dsub` slice.
    pub fn sub_codebook_mut(&mut self, j: usize) -> &mut [f32] {
        let base = j * self.k * self.dsub;
        &mut self.codewords[base..base + self.k * self.dsub]
    }

    /// Read-only sub-codebook `j`.
    pub fn sub_codebook(&self, j: usize) -> &[f32] {
        let base = j * self.k * self.dsub;
        &self.codewords[base..base + self.k * self.dsub]
    }

    /// Encodes one (already decomposed/rotated) vector: nearest codeword id
    /// per chunk (the Lloyd quantizer's argmin).
    pub fn encode_one(&self, v: &[f32], out: &mut [u8]) {
        assert_eq!(v.len(), self.dim(), "vector dim mismatch");
        assert_eq!(out.len(), self.m, "code buffer size mismatch");
        for j in 0..self.m {
            let sub = &v[j * self.dsub..(j + 1) * self.dsub];
            let mut best = (0usize, f32::INFINITY);
            for ki in 0..self.k {
                let d = sq_l2(sub, self.codeword(j, ki));
                if d < best.1 {
                    best = (ki, d);
                }
            }
            out[j] = best.0 as u8;
        }
    }

    /// Reconstructs the quantized vector `x' = C(Q(x))` for a code.
    pub fn decode(&self, code: &[u8], out: &mut [f32]) {
        assert_eq!(code.len(), self.m, "code length mismatch");
        assert_eq!(out.len(), self.dim(), "output buffer size mismatch");
        for (j, &c) in code.iter().enumerate() {
            out[j * self.dsub..(j + 1) * self.dsub].copy_from_slice(self.codeword(j, c as usize));
        }
    }

    /// Builds the per-query ADC lookup table: `table[j][ki] = δ(q_j, c_jk)`.
    pub fn lookup_table(&self, query: &[f32]) -> LookupTable {
        assert_eq!(query.len(), self.dim(), "query dim mismatch");
        let mut table = vec![0.0f32; self.m * self.k];
        for j in 0..self.m {
            let sub = &query[j * self.dsub..(j + 1) * self.dsub];
            let row = &mut table[j * self.k..(j + 1) * self.k];
            for (ki, slot) in row.iter_mut().enumerate() {
                *slot = sq_l2(sub, self.codeword(j, ki));
            }
        }
        LookupTable {
            m: self.m,
            k: self.k,
            table,
        }
    }

    /// Builds the SDC (symmetric) table: `table[j][a][b] = δ(c_ja, c_jb)`.
    pub fn sdc_table(&self) -> SdcTable {
        let mut table = vec![0.0f32; self.m * self.k * self.k];
        for j in 0..self.m {
            for a in 0..self.k {
                for b in 0..self.k {
                    table[(j * self.k + a) * self.k + b] =
                        sq_l2(self.codeword(j, a), self.codeword(j, b));
                }
            }
        }
        SdcTable {
            m: self.m,
            k: self.k,
            table,
        }
    }

    /// Bytes used by the codeword storage (the in-memory model budget the
    /// paper's Table 5 accounts).
    pub fn memory_bytes(&self) -> usize {
        self.codewords.len() * std::mem::size_of::<f32>()
    }
}

/// Compact codes for a dataset: `n` codes of `m` bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct CompactCodes {
    n: usize,
    m: usize,
    codes: Vec<u8>,
}

impl CompactCodes {
    pub fn new(n: usize, m: usize, codes: Vec<u8>) -> Self {
        assert_eq!(codes.len(), n * m, "code buffer size mismatch");
        Self { n, m, codes }
    }

    /// A code store with no vectors yet — the starting state of a streaming
    /// index (DESIGN.md §8), grown by [`CompactCodes::push`].
    pub fn empty(m: usize) -> Self {
        assert!(m > 0, "chunk count must be positive");
        Self {
            n: 0,
            m,
            codes: Vec::new(),
        }
    }

    /// Appends one code; its id is the previous [`CompactCodes::len`].
    pub fn push(&mut self, code: &[u8]) {
        assert_eq!(code.len(), self.m, "code length mismatch");
        self.codes.extend_from_slice(code);
        self.n += 1;
    }

    /// Gathers the codes of `survivors` (in the given order) into a fresh
    /// store — the code-side half of a consolidation pass, mirroring the
    /// graph's id compaction.
    pub fn compact(&self, survivors: &[u32]) -> CompactCodes {
        let mut codes = Vec::with_capacity(survivors.len() * self.m);
        for &i in survivors {
            codes.extend_from_slice(self.code(i as usize));
        }
        CompactCodes::new(survivors.len(), self.m, codes)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The code of vector `i`.
    #[inline]
    pub fn code(&self, i: usize) -> &[u8] {
        debug_assert!(
            i < self.n,
            "code id {i} out of range: the store holds {} codes",
            self.n
        );
        &self.codes[i * self.m..(i + 1) * self.m]
    }

    /// In-memory footprint in bytes — what replaces the full vectors in the
    /// paper's memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.codes.len()
    }
}

/// Per-query ADC lookup table (`m × k` distances).
#[derive(Clone, Debug)]
pub struct LookupTable {
    m: usize,
    k: usize,
    table: Vec<f32>,
}

impl LookupTable {
    /// Estimated distance `δ(x', q) = Σ_j table[j][code[j]]` — the ADC inner
    /// loop, unrolled four-wide.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.m);
        let k = self.k;
        let mut acc = 0.0f32;
        let mut j = 0;
        let chunks = self.m / 4;
        for c4 in code.chunks_exact(4).take(chunks) {
            acc += self.table[j * k + c4[0] as usize]
                + self.table[(j + 1) * k + c4[1] as usize]
                + self.table[(j + 2) * k + c4[2] as usize]
                + self.table[(j + 3) * k + c4[3] as usize];
            j += 4;
        }
        for &c in &code[j..] {
            acc += self.table[j * k + c as usize];
            j += 1;
        }
        acc
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Codewords per sub-codebook (the table's row width).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The flat `m × k` table, row-major by chunk — what the batched SoA
    /// kernels ([`crate::soa`]) and the u8 LUT quantizer read.
    pub fn values(&self) -> &[f32] {
        &self.table
    }

    pub fn memory_bytes(&self) -> usize {
        self.table.len() * 4
    }
}

/// Symmetric (code-to-code) distance table.
#[derive(Clone, Debug)]
pub struct SdcTable {
    m: usize,
    k: usize,
    table: Vec<f32>,
}

impl SdcTable {
    /// Estimated distance between two codes.
    pub fn distance(&self, a: &[u8], b: &[u8]) -> f32 {
        debug_assert_eq!(a.len(), self.m);
        debug_assert_eq!(b.len(), self.m);
        let mut acc = 0.0;
        for j in 0..self.m {
            acc += self.table[(j * self.k + a[j] as usize) * self.k + b[j] as usize];
        }
        acc
    }
}

/// Encodes a whole (already rotated/projected) dataset with a codebook.
pub fn encode_dataset_with(codebook: &Codebook, data: &Dataset) -> CompactCodes {
    use rayon::prelude::*;
    assert_eq!(data.dim(), codebook.dim(), "dataset dim mismatch");
    let n = data.len();
    let m = codebook.m();
    let mut codes = vec![0u8; n * m];
    codes.par_chunks_mut(m).enumerate().for_each(|(i, chunk)| {
        codebook.encode_one(data.get(i), chunk);
    });
    CompactCodes::new(n, m, codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D sub-spaces, 2 chunks, 2 codewords each: codewords at {0,10} and
    /// {0,100}.
    fn tiny_codebook() -> Codebook {
        Codebook::new(2, 2, 1, vec![0.0, 10.0, 0.0, 100.0])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cb = tiny_codebook();
        let v = [9.0f32, 2.0];
        let mut code = [0u8; 2];
        cb.encode_one(&v, &mut code);
        assert_eq!(code, [1, 0]);
        let mut out = [0.0f32; 2];
        cb.decode(&code, &mut out);
        assert_eq!(out, [10.0, 0.0]);
    }

    #[test]
    fn adc_matches_decoded_distance() {
        let cb = tiny_codebook();
        let q = [3.0f32, 40.0];
        let lut = cb.lookup_table(&q);
        for code in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            let mut rec = [0.0f32; 2];
            cb.decode(&code, &mut rec);
            let expect = sq_l2(&q, &rec);
            let got = lut.distance(&code);
            assert!((got - expect).abs() < 1e-5, "{got} vs {expect}");
        }
    }

    #[test]
    fn sdc_matches_decoded_distance() {
        let cb = tiny_codebook();
        let sdc = cb.sdc_table();
        let (a, b) = ([1u8, 0], [0u8, 1]);
        let mut ra = [0.0f32; 2];
        let mut rb = [0.0f32; 2];
        cb.decode(&a, &mut ra);
        cb.decode(&b, &mut rb);
        assert!((sdc.distance(&a, &b) - sq_l2(&ra, &rb)).abs() < 1e-5);
    }

    #[test]
    fn lookup_distance_handles_odd_m() {
        // m = 5 exercises the unroll tail.
        let cb = Codebook::new(
            5,
            2,
            1,
            vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
        );
        let q = [0.5f32; 5];
        let lut = cb.lookup_table(&q);
        let code = [1u8, 0, 1, 0, 1];
        assert!((lut.distance(&code) - 5.0 * 0.25).abs() < 1e-6);
    }

    #[test]
    fn encode_dataset_parallel_matches_serial() {
        let cb = tiny_codebook();
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            ds.push(&[i as f32, (i * 20) as f32]);
        }
        let codes = encode_dataset_with(&cb, &ds);
        for i in 0..10 {
            let mut expect = [0u8; 2];
            cb.encode_one(ds.get(i), &mut expect);
            assert_eq!(codes.code(i), &expect);
        }
    }

    #[test]
    #[should_panic(expected = "K must be <= 256")]
    fn oversized_k_rejected() {
        let _ = Codebook::new(1, 300, 1, vec![0.0; 300]);
    }

    #[test]
    fn push_and_compact() {
        let mut codes = CompactCodes::empty(2);
        assert!(codes.is_empty());
        for i in 0..5u8 {
            codes.push(&[i, i + 1]);
        }
        assert_eq!(codes.len(), 5);
        assert_eq!(codes.code(3), &[3, 4]);
        let kept = codes.compact(&[0, 2, 4]);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept.code(0), &[0, 1]);
        assert_eq!(kept.code(1), &[2, 3]);
        assert_eq!(kept.code(2), &[4, 5]);
    }

    #[test]
    fn memory_accounting() {
        let cb = tiny_codebook();
        assert_eq!(cb.memory_bytes(), 4 * 4);
        let codes = CompactCodes::new(3, 2, vec![0; 6]);
        assert_eq!(codes.memory_bytes(), 6);
    }
}
