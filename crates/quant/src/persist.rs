//! Binary persistence for trained quantizers.
//!
//! A trained compressor is a rotation (optional) plus a codebook; both
//! serialise to a compact little-endian format so an index can be trained
//! once and shipped. The format is self-describing enough to reject
//! truncated or foreign files.

use std::io::{self, Read, Write};

use rpq_linalg::Matrix;

use crate::codebook::Codebook;
use crate::opq::OptimizedProductQuantizer;
use crate::pq::ProductQuantizer;

const CODEBOOK_MAGIC: &[u8; 4] = b"RPQC";
const ROTATED_MAGIC: &[u8; 4] = b"RPQR";

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_f32s(w: &mut impl Write, data: &[f32]) -> io::Result<()> {
    for &v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read, n: usize) -> io::Result<Vec<f32>> {
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes a codebook: magic, m, k, dsub, codewords.
pub fn write_codebook(w: &mut impl Write, cb: &Codebook) -> io::Result<()> {
    w.write_all(CODEBOOK_MAGIC)?;
    write_u32(w, cb.m() as u32)?;
    write_u32(w, cb.k() as u32)?;
    write_u32(w, cb.dsub() as u32)?;
    for j in 0..cb.m() {
        write_f32s(w, cb.sub_codebook(j))?;
    }
    Ok(())
}

/// Reads a codebook written by [`write_codebook`].
pub fn read_codebook(r: &mut impl Read) -> io::Result<Codebook> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != CODEBOOK_MAGIC {
        return Err(bad("not a codebook file"));
    }
    let m = read_u32(r)? as usize;
    let k = read_u32(r)? as usize;
    let dsub = read_u32(r)? as usize;
    if m == 0 || k == 0 || k > 256 || dsub == 0 || m * k * dsub > (1 << 30) {
        return Err(bad("implausible codebook header"));
    }
    let codewords = read_f32s(r, m * k * dsub)?;
    if codewords.iter().any(|v| !v.is_finite()) {
        return Err(bad("non-finite codeword"));
    }
    Ok(Codebook::new(m, k, dsub, codewords))
}

/// Writes a rotated PQ (OPQ or an exported RPQ): magic, dim, rotation,
/// codebook.
pub fn write_rotated_pq(w: &mut impl Write, q: &OptimizedProductQuantizer) -> io::Result<()> {
    w.write_all(ROTATED_MAGIC)?;
    let rot = q.rotation();
    write_u32(w, rot.rows as u32)?;
    write_f32s(w, &rot.data)?;
    write_codebook(w, q.pq().codebook())
}

/// Reads a rotated PQ written by [`write_rotated_pq`]. `train_seconds`
/// metadata is not persisted (reports come from training runs, not loads).
pub fn read_rotated_pq(r: &mut impl Read) -> io::Result<OptimizedProductQuantizer> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != ROTATED_MAGIC {
        return Err(bad("not a rotated-pq file"));
    }
    let d = read_u32(r)? as usize;
    if d == 0 || d > (1 << 16) {
        return Err(bad("implausible dimension"));
    }
    let rot = Matrix::from_vec(d, d, read_f32s(r, d * d)?);
    let cb = read_codebook(r)?;
    if cb.dim() != d {
        return Err(bad("rotation/codebook dimension mismatch"));
    }
    Ok(OptimizedProductQuantizer::from_parts(
        rot,
        ProductQuantizer::from_codebook(cb, 0.0),
        0.0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::VectorCompressor;
    use crate::opq::OpqConfig;
    use crate::pq::PqConfig;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_data::Dataset;

    fn toy(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 6,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    #[test]
    fn codebook_roundtrip() {
        let data = toy(300, 1);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            &data,
        );
        let mut buf = Vec::new();
        write_codebook(&mut buf, pq.codebook()).unwrap();
        let back = read_codebook(&mut buf.as_slice()).unwrap();
        assert_eq!(&back, pq.codebook());
    }

    #[test]
    fn rotated_pq_roundtrip_preserves_behaviour() {
        let data = toy(300, 2);
        let opq = OptimizedProductQuantizer::train(
            &OpqConfig {
                pq: PqConfig {
                    m: 4,
                    k: 16,
                    ..Default::default()
                },
                iters: 3,
            },
            &data,
        );
        let mut buf = Vec::new();
        write_rotated_pq(&mut buf, &opq).unwrap();
        let back = read_rotated_pq(&mut buf.as_slice()).unwrap();
        // Identical codes and identical ADC distances.
        let codes_a = opq.encode_dataset(&data);
        let codes_b = back.encode_dataset(&data);
        assert_eq!(codes_a, codes_b);
        let q = data.get(0);
        let lut_a = opq.lookup_table(q);
        let lut_b = back.lookup_table(q);
        for i in (0..300).step_by(31) {
            assert_eq!(
                lut_a.distance(codes_a.code(i)),
                lut_b.distance(codes_b.code(i))
            );
        }
    }

    #[test]
    fn truncated_files_rejected() {
        let data = toy(100, 3);
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: 2,
                k: 8,
                ..Default::default()
            },
            &data,
        );
        let mut buf = Vec::new();
        write_codebook(&mut buf, pq.codebook()).unwrap();
        for cut in [1usize, 5, buf.len() / 2] {
            let mut short = buf.clone();
            short.truncate(buf.len() - cut);
            assert!(read_codebook(&mut short.as_slice()).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(read_codebook(&mut &b"NOPE0000"[..]).is_err());
        assert!(read_rotated_pq(&mut &b"RPQC"[..]).is_err());
    }
}
