//! Catalyst baseline — "spreading vectors for similarity search"
//! (Sablayrolles et al., ICLR'19), the learned-but-graph-agnostic
//! competitor in the paper's evaluation.
//!
//! Substitution note (DESIGN.md §4): the original couples a deep net with a
//! lattice quantizer. We keep its *defining property for this comparison* —
//! a neighborhood-rank-preserving learned embedding trained **without any
//! knowledge of the proximity graph or routing**, followed by product
//! quantization — as a 3-layer MLP (D → h → h → d_out) trained with a
//! triplet rank loss plus the paper's spreading regulariser (λ = 0.005
//! pushing embeddings toward the unit sphere; paper §8.1 lists
//! d_out = 40, λ = 0.005).

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_autodiff::{Adam, AdamConfig, Tape};
use rpq_data::ground_truth::top_k_ids;
use rpq_data::Dataset;
use rpq_graph::DistanceEstimator;
use rpq_linalg::Matrix;

use crate::codebook::{encode_dataset_with, CompactCodes, LookupTable};
use crate::compressor::{AdcEstimator, VectorCompressor};
use crate::pq::{subsample, PqConfig, ProductQuantizer};

/// Catalyst training parameters.
#[derive(Clone, Copy, Debug)]
pub struct CatalystConfig {
    /// Output (embedding) dimensionality; paper uses 40.
    pub d_out: usize,
    /// Hidden width of the MLP.
    pub hidden: usize,
    /// Spreading regulariser weight; paper uses 0.005.
    pub lambda: f32,
    /// Triplet margin.
    pub margin: f32,
    /// Training epochs over the triplet set.
    pub epochs: usize,
    /// Triplet batch size.
    pub batch: usize,
    /// Subset used to mine triplets.
    pub mine_size: usize,
    /// Positives per anchor (k of the kNN used as positives).
    pub k_pos: usize,
    /// Inner PQ settings (m must divide `d_out`).
    pub pq: PqConfig,
    pub seed: u64,
}

impl Default for CatalystConfig {
    fn default() -> Self {
        Self {
            d_out: 40,
            hidden: 256,
            lambda: 0.005,
            margin: 0.2,
            epochs: 4,
            batch: 128,
            mine_size: 1500,
            k_pos: 10,
            pq: PqConfig {
                m: 8,
                k: 256,
                ..Default::default()
            },
            seed: 0,
        }
    }
}

/// A trained Catalyst compressor: MLP projection + PQ in the embedding
/// space.
pub struct Catalyst {
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
    w3: Matrix,
    b3: Matrix,
    pq: ProductQuantizer,
    dim_in: usize,
    train_seconds: f32,
}

impl Catalyst {
    /// Mines triplets from exact kNN on a subsample, trains the MLP with
    /// Adam, then fits PQ in the embedding space.
    pub fn train(cfg: &CatalystConfig, data: &Dataset) -> Self {
        let start = Instant::now();
        assert!(
            !data.is_empty(),
            "cannot train Catalyst on an empty dataset"
        );
        assert_eq!(cfg.d_out % cfg.pq.m, 0, "PQ m must divide d_out");
        let d = data.dim();
        let h = cfg.hidden;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Xavier-ish init.
        let mut w1 = Matrix::random_normal(d, h, (2.0 / d as f32).sqrt(), &mut rng);
        let mut b1 = Matrix::zeros(1, h);
        let mut w2 = Matrix::random_normal(h, h, (2.0 / h as f32).sqrt(), &mut rng);
        let mut b2 = Matrix::zeros(1, h);
        let mut w3 = Matrix::random_normal(h, cfg.d_out, (2.0 / h as f32).sqrt(), &mut rng);
        let mut b3 = Matrix::zeros(1, cfg.d_out);

        // Triplet mining on a subsample: positives from exact kNN, negatives
        // uniform outside the positive set.
        let mine = subsample(data, cfg.mine_size, cfg.seed);
        let n = mine.len();
        let k_pos = cfg.k_pos.min(n.saturating_sub(1)).max(1);
        let knn: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut ids = top_k_ids(&mine, mine.get(i), k_pos + 1);
                ids.retain(|&id| id as usize != i);
                ids.truncate(k_pos);
                ids
            })
            .collect();

        let sizes = [
            w1.data.len(),
            b1.data.len(),
            w2.data.len(),
            b2.data.len(),
            w3.data.len(),
            b3.data.len(),
        ];
        let mut adam = Adam::new(AdamConfig::default(), &sizes);

        let steps_per_epoch = (n / cfg.batch.max(1)).max(1);
        for _epoch in 0..cfg.epochs {
            for _step in 0..steps_per_epoch {
                // Assemble the triplet batch as [anchors; positives;
                // negatives] so one forward pass embeds all three roles.
                let b = cfg.batch.min(n);
                let mut rows: Vec<f32> = Vec::with_capacity(3 * b * d);
                let mut pos_rows: Vec<f32> = Vec::with_capacity(b * d);
                let mut neg_rows: Vec<f32> = Vec::with_capacity(b * d);
                for _ in 0..b {
                    let a = rng.gen_range(0..n);
                    let p = knn[a][rng.gen_range(0..knn[a].len())] as usize;
                    let mut neg = rng.gen_range(0..n);
                    while neg == a || knn[a].contains(&(neg as u32)) {
                        neg = rng.gen_range(0..n);
                    }
                    rows.extend_from_slice(mine.get(a));
                    pos_rows.extend_from_slice(mine.get(p));
                    neg_rows.extend_from_slice(mine.get(neg));
                }
                rows.extend_from_slice(&pos_rows);
                rows.extend_from_slice(&neg_rows);
                let x = Matrix::from_vec(3 * b, d, rows);

                // Forward + backward.
                let mut t = Tape::new();
                let vw1 = t.param(w1.clone());
                let vb1 = t.param(b1.clone());
                let vw2 = t.param(w2.clone());
                let vb2 = t.param(b2.clone());
                let vw3 = t.param(w3.clone());
                let vb3 = t.param(b3.clone());
                let xin = t.constant(x);
                let z1 = t.matmul(xin, vw1);
                let z1b = t.add_row_broadcast(z1, vb1);
                let h1 = t.relu(z1b);
                let z2 = t.matmul(h1, vw2);
                let z2b = t.add_row_broadcast(z2, vb2);
                let h2 = t.relu(z2b);
                let z3 = t.matmul(h2, vw3);
                let out = t.add_row_broadcast(z3, vb3);

                let a_emb = t.slice_rows(out, 0, b);
                let p_emb = t.slice_rows(out, b, 2 * b);
                let n_emb = t.slice_rows(out, 2 * b, 3 * b);
                let ap = t.sub(a_emb, p_emb);
                let d_ap = t.row_sq_norm(ap);
                let an = t.sub(a_emb, n_emb);
                let d_an = t.row_sq_norm(an);
                let gap = t.sub(d_ap, d_an);
                let shifted = t.add_scalar(gap, cfg.margin);
                let hinge = t.relu(shifted);
                let trip = t.mean_all(hinge);
                // Spreading regulariser: embeddings toward the unit sphere.
                let norms = t.row_sq_norm(a_emb);
                let centered = t.add_scalar(norms, -1.0);
                let sq = t.square(centered);
                let reg_m = t.mean_all(sq);
                let reg = t.scale(reg_m, cfg.lambda);
                let loss = t.add(trip, reg);

                let grads = t.backward(loss);
                adam.step(&mut [
                    (&mut w1, grads.get(vw1)),
                    (&mut b1, grads.get(vb1)),
                    (&mut w2, grads.get(vw2)),
                    (&mut b2, grads.get(vb2)),
                    (&mut w3, grads.get(vw3)),
                    (&mut b3, grads.get(vb3)),
                ]);
            }
        }

        // PQ in the embedding space.
        let me = Self {
            w1,
            b1,
            w2,
            b2,
            w3,
            b3,
            pq: ProductQuantizer::from_codebook(
                crate::codebook::Codebook::new(1, 1, cfg.d_out, vec![0.0; cfg.d_out]),
                0.0,
            ),
            dim_in: d,
            train_seconds: 0.0,
        };
        let projected = me.project_dataset(data);
        let pq = ProductQuantizer::train(&cfg.pq, &projected);
        Self {
            pq,
            train_seconds: start.elapsed().as_secs_f32(),
            ..me
        }
    }

    /// Applies the MLP to a row-matrix of vectors.
    pub fn project(&self, x: &Matrix) -> Matrix {
        let mut h1 = x.matmul(&self.w1);
        add_bias_relu(&mut h1, &self.b1, true);
        let mut h2 = h1.matmul(&self.w2);
        add_bias_relu(&mut h2, &self.b2, true);
        let mut out = h2.matmul(&self.w3);
        add_bias_relu(&mut out, &self.b3, false);
        out
    }

    /// Projects a full dataset into the embedding space.
    pub fn project_dataset(&self, data: &Dataset) -> Dataset {
        let x = data.to_matrix(0, data.len());
        Dataset::from_matrix(&self.project(&x))
    }

    fn project_query(&self, query: &[f32]) -> Vec<f32> {
        let q = Matrix::from_vec(1, query.len(), query.to_vec());
        self.project(&q).data
    }

    /// Lookup table in the embedding space for a raw query.
    pub fn lookup_table(&self, query: &[f32]) -> LookupTable {
        self.pq.lookup_table(&self.project_query(query))
    }
}

fn add_bias_relu(x: &mut Matrix, bias: &Matrix, relu: bool) {
    for i in 0..x.rows {
        for (v, &b) in x.row_mut(i).iter_mut().zip(bias.row(0)) {
            *v += b;
            if relu && *v < 0.0 {
                *v = 0.0;
            }
        }
    }
}

impl VectorCompressor for Catalyst {
    fn name(&self) -> String {
        "Catalyst".to_string()
    }

    fn dim(&self) -> usize {
        self.dim_in
    }

    fn code_dim(&self) -> usize {
        self.pq.code_dim()
    }

    fn model_bytes(&self) -> usize {
        let mlp = self.w1.data.len()
            + self.b1.data.len()
            + self.w2.data.len()
            + self.b2.data.len()
            + self.w3.data.len()
            + self.b3.data.len();
        mlp * 4 + self.pq.model_bytes()
    }

    fn train_seconds(&self) -> f32 {
        self.train_seconds
    }

    fn encode_dataset(&self, data: &Dataset) -> CompactCodes {
        let projected = self.project_dataset(data);
        encode_dataset_with(self.pq.codebook(), &projected)
    }

    fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        self.pq.decode_into(code, out);
    }

    fn estimator<'a>(
        &'a self,
        codes: &'a CompactCodes,
        query: &'a [f32],
    ) -> Box<dyn DistanceEstimator + 'a> {
        Box::new(AdcEstimator::new(self.lookup_table(query), codes))
    }

    fn batch_estimator<'a>(
        &'a self,
        codes: &'a crate::soa::SoaCodes,
        query: &'a [f32],
    ) -> Option<Box<dyn DistanceEstimator + 'a>> {
        // `lookup_table` projects the query through the MLP first, so the
        // SoA kernel sees the same table as the scalar path.
        Some(Box::new(crate::soa::BatchAdcEstimator::new(
            self.lookup_table(query),
            codes,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};

    fn toy(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 24,
            intrinsic_dim: 8,
            clusters: 6,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    fn small_cfg() -> CatalystConfig {
        CatalystConfig {
            d_out: 8,
            hidden: 32,
            epochs: 2,
            batch: 32,
            mine_size: 200,
            pq: PqConfig {
                m: 2,
                k: 16,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn projection_shape_and_encode() {
        let data = toy(300, 1);
        let cat = Catalyst::train(&small_cfg(), &data);
        let projected = cat.project_dataset(&data);
        assert_eq!(projected.dim(), 8);
        assert_eq!(projected.len(), 300);
        let codes = cat.encode_dataset(&data);
        assert_eq!(codes.len(), 300);
        assert_eq!(codes.m(), 2);
    }

    #[test]
    fn embedding_preserves_neighborhood_better_than_random() {
        // After training, a point's true nearest neighbor should usually be
        // nearer than a random point in the embedding space.
        let data = toy(300, 2);
        let cat = Catalyst::train(&small_cfg(), &data);
        let emb = cat.project_dataset(&data);
        let mut good = 0;
        let total = 80;
        for i in 0..total {
            let true_nn = top_k_ids(&data, data.get(i), 2)[1] as usize;
            let rand_j = (i * 131 + 17) % 300;
            let d_nn = rpq_linalg::distance::sq_l2(emb.get(i), emb.get(true_nn));
            let d_rand = rpq_linalg::distance::sq_l2(emb.get(i), emb.get(rand_j));
            if d_nn < d_rand {
                good += 1;
            }
        }
        assert!(good * 10 >= total * 7, "only {good}/{total} rank-preserved");
    }

    #[test]
    fn adc_consistency_in_embedding_space() {
        let data = toy(200, 3);
        let cat = Catalyst::train(&small_cfg(), &data);
        let codes = cat.encode_dataset(&data);
        let q = data.get(0);
        let lut = cat.lookup_table(q);
        let qp = {
            let m = Matrix::from_vec(1, 24, q.to_vec());
            cat.project(&m).data
        };
        let mut rec = vec![0.0f32; 8];
        cat.decode_into(codes.code(10), &mut rec);
        let expect = rpq_linalg::distance::sq_l2(&qp, &rec);
        let got = lut.distance(codes.code(10));
        assert!(
            (got - expect).abs() < 1e-2 * expect.max(1.0),
            "{got} vs {expect}"
        );
    }

    #[test]
    fn model_bytes_counts_mlp() {
        let data = toy(150, 4);
        let cat = Catalyst::train(&small_cfg(), &data);
        // At least the three weight matrices.
        assert!(cat.model_bytes() > (24 * 32 + 32 * 32 + 32 * 8) * 4);
    }

    #[test]
    #[should_panic(expected = "m must divide d_out")]
    fn invalid_pq_m_rejected() {
        let data = toy(50, 5);
        let cfg = CatalystConfig {
            d_out: 10,
            pq: PqConfig {
                m: 4,
                ..Default::default()
            },
            ..small_cfg()
        };
        let _ = Catalyst::train(&cfg, &data);
    }
}
