//! Optimized Product Quantization (Ge et al., CVPR'13), non-parametric
//! variant: alternate between (a) training PQ on the rotated data and
//! (b) updating the rotation by solving an orthogonal Procrustes problem
//! against the reconstructions.

use std::time::Instant;

use rpq_data::Dataset;
use rpq_graph::DistanceEstimator;
use rpq_linalg::{procrustes, Matrix};

use crate::codebook::{encode_dataset_with, CompactCodes, LookupTable};
use crate::compressor::{AdcEstimator, VectorCompressor};
use crate::pq::{subsample, PqConfig, ProductQuantizer};

/// OPQ training parameters.
#[derive(Clone, Copy, Debug)]
pub struct OpqConfig {
    /// Inner PQ parameters.
    pub pq: PqConfig,
    /// Alternating optimisation rounds.
    pub iters: usize,
}

impl Default for OpqConfig {
    fn default() -> Self {
        Self {
            pq: PqConfig::default(),
            iters: 8,
        }
    }
}

/// A trained OPQ: orthonormal rotation (applied as `x_row · R`) plus PQ in
/// the rotated space.
pub struct OptimizedProductQuantizer {
    rotation: Matrix,
    pq: ProductQuantizer,
    train_seconds: f32,
}

impl OptimizedProductQuantizer {
    /// Trains with the non-parametric alternation.
    pub fn train(cfg: &OpqConfig, data: &Dataset) -> Self {
        let start = Instant::now();
        let d = data.dim();
        assert!(!data.is_empty(), "cannot train OPQ on an empty dataset");
        let train = subsample(data, cfg.pq.train_size.min(20_000), cfg.pq.seed);
        let x = train.to_matrix(0, train.len());

        let mut rotation = Matrix::identity(d);
        for _ in 0..cfg.iters.max(1) {
            // (a) PQ on rotated data.
            let xr = x.matmul(&rotation);
            let rotated = Dataset::from_matrix(&xr);
            let pq = ProductQuantizer::train(&cfg.pq, &rotated);
            // (b) Rotation update: R = argmin ‖X R − Y‖ with Y the PQ
            // reconstructions of X R; solution U Vᵀ from svd(Xᵀ Y).
            let codes = pq.encode_dataset(&rotated);
            let mut y = Matrix::zeros(xr.rows, d);
            let mut rec = vec![0.0f32; d];
            for i in 0..xr.rows {
                pq.decode_into(codes.code(i), &mut rec);
                y.row_mut(i).copy_from_slice(&rec);
            }
            let g = x.matmul_tn(&y);
            rotation = procrustes(&g);
        }
        // Final codebook fit against the final rotation.
        let xr = x.matmul(&rotation);
        let pq = ProductQuantizer::train(&cfg.pq, &Dataset::from_matrix(&xr));
        Self {
            rotation,
            pq,
            train_seconds: start.elapsed().as_secs_f32(),
        }
    }

    /// Builds an OPQ-style compressor from externally learned parts (RPQ's
    /// export path re-uses this serving machinery).
    pub fn from_parts(rotation: Matrix, pq: ProductQuantizer, train_seconds: f32) -> Self {
        assert_eq!(rotation.rows, rotation.cols, "rotation must be square");
        assert_eq!(rotation.rows, pq.dim(), "rotation/codebook dim mismatch");
        Self {
            rotation,
            pq,
            train_seconds,
        }
    }

    /// The learned rotation (applied as `x_row · R`).
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// The inner product quantizer.
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// Rotates a full dataset: `X · R`.
    pub fn rotate_dataset(&self, data: &Dataset) -> Dataset {
        let x = data.to_matrix(0, data.len());
        Dataset::from_matrix(&x.matmul(&self.rotation))
    }

    fn rotate_query(&self, query: &[f32]) -> Vec<f32> {
        let q = Matrix::from_vec(1, query.len(), query.to_vec());
        q.matmul(&self.rotation).data
    }

    /// Lookup table in the rotated space for a raw query.
    pub fn lookup_table(&self, query: &[f32]) -> LookupTable {
        self.pq.lookup_table(&self.rotate_query(query))
    }
}

impl VectorCompressor for OptimizedProductQuantizer {
    fn name(&self) -> String {
        "OPQ".to_string()
    }

    fn dim(&self) -> usize {
        self.rotation.rows
    }

    fn code_dim(&self) -> usize {
        self.pq.code_dim()
    }

    fn model_bytes(&self) -> usize {
        self.rotation.data.len() * 4 + self.pq.model_bytes()
    }

    fn train_seconds(&self) -> f32 {
        self.train_seconds
    }

    fn encode_dataset(&self, data: &Dataset) -> CompactCodes {
        let rotated = self.rotate_dataset(data);
        encode_dataset_with(self.pq.codebook(), &rotated)
    }

    fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        // Reconstruction stays in the rotated space; distances are
        // rotation-invariant so search never needs to rotate back.
        self.pq.decode_into(code, out);
    }

    fn estimator<'a>(
        &'a self,
        codes: &'a CompactCodes,
        query: &'a [f32],
    ) -> Box<dyn DistanceEstimator + 'a> {
        Box::new(AdcEstimator::new(self.lookup_table(query), codes))
    }

    fn batch_estimator<'a>(
        &'a self,
        codes: &'a crate::soa::SoaCodes,
        query: &'a [f32],
    ) -> Option<Box<dyn DistanceEstimator + 'a>> {
        // `lookup_table` rotates the query, so the SoA kernel sees the same
        // table as the scalar path.
        Some(Box::new(crate::soa::BatchAdcEstimator::new(
            self.lookup_table(query),
            codes,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_linalg::is_orthonormal;

    /// Data with deliberately imbalanced per-chunk information: the first
    /// dimensions carry all the variance — the failure mode OPQ's rotation
    /// fixes (paper Fig. 4 motivation).
    fn imbalanced(n: usize, dim: usize, seed: u64) -> Dataset {
        let base = SynthConfig {
            dim,
            intrinsic_dim: dim / 2,
            clusters: 6,
            cluster_std: 1.0,
            noise_std: 0.02,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed);
        let mut out = Dataset::new(dim);
        let mut v = vec![0.0f32; dim];
        for row in base.iter() {
            for (i, (dst, &src)) in v.iter_mut().zip(row).enumerate() {
                // Exponentially decaying scale across dimensions.
                *dst = src * (1.0 / (1.0 + i as f32)).sqrt() * 4.0;
            }
            out.push(&v);
        }
        out
    }

    #[test]
    fn rotation_is_orthonormal() {
        let data = imbalanced(400, 16, 1);
        let opq = OptimizedProductQuantizer::train(
            &OpqConfig {
                pq: PqConfig {
                    m: 4,
                    k: 16,
                    ..Default::default()
                },
                iters: 4,
            },
            &data,
        );
        assert!(is_orthonormal(opq.rotation(), 1e-2));
    }

    #[test]
    fn opq_beats_pq_on_imbalanced_data() {
        let data = imbalanced(800, 16, 2);
        let pqc = PqConfig {
            m: 4,
            k: 16,
            ..Default::default()
        };
        let pq = ProductQuantizer::train(&pqc, &data);
        let opq = OptimizedProductQuantizer::train(&OpqConfig { pq: pqc, iters: 6 }, &data);
        let pq_mse = pq.reconstruction_mse(&data);
        let rotated = opq.rotate_dataset(&data);
        let opq_mse = opq.pq().reconstruction_mse(&rotated);
        assert!(
            opq_mse < pq_mse,
            "OPQ should reduce distortion: OPQ {opq_mse} vs PQ {pq_mse}"
        );
    }

    #[test]
    fn adc_matches_decoded_distance_in_rotated_space() {
        let data = imbalanced(300, 8, 3);
        let opq = OptimizedProductQuantizer::train(
            &OpqConfig {
                pq: PqConfig {
                    m: 2,
                    k: 16,
                    ..Default::default()
                },
                iters: 3,
            },
            &data,
        );
        let codes = opq.encode_dataset(&data);
        let q = data.get(5);
        let lut = opq.lookup_table(q);
        let qr = {
            let m = Matrix::from_vec(1, 8, q.to_vec());
            m.matmul(opq.rotation()).data
        };
        let mut rec = vec![0.0f32; 8];
        for i in (0..300).step_by(29) {
            opq.decode_into(codes.code(i), &mut rec);
            let expect = rpq_linalg::distance::sq_l2(&qr, &rec);
            let got = lut.distance(codes.code(i));
            assert!(
                (got - expect).abs() < 1e-3 * expect.max(1.0),
                "{got} vs {expect}"
            );
        }
    }

    #[test]
    fn distances_are_rotation_invariant() {
        // δ(Rx, Rq) == δ(x, q): search in rotated space is equivalent.
        let data = imbalanced(100, 8, 4);
        let opq = OptimizedProductQuantizer::train(
            &OpqConfig {
                pq: PqConfig {
                    m: 2,
                    k: 8,
                    ..Default::default()
                },
                iters: 2,
            },
            &data,
        );
        let rot = opq.rotate_dataset(&data);
        let d_orig = rpq_linalg::distance::sq_l2(data.get(0), data.get(1));
        let d_rot = rpq_linalg::distance::sq_l2(rot.get(0), rot.get(1));
        assert!(
            (d_orig - d_rot).abs() < 1e-2 * d_orig.max(1.0),
            "{d_orig} vs {d_rot}"
        );
    }
}
