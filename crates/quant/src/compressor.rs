//! The [`VectorCompressor`] abstraction the ANNS engines consume.
//!
//! Every quantizer in the evaluation — PQ, OPQ, Catalyst, L&C, and RPQ (in
//! `rpq-core`) — compresses a dataset to [`CompactCodes`] and can answer
//! per-query distance estimates through a [`DistanceEstimator`]. The
//! estimator is constructed once per query (that is where the ADC lookup
//! table gets built) and then called once per visited vertex during beam
//! search.

use rpq_data::Dataset;
use rpq_graph::DistanceEstimator;

use crate::codebook::{CompactCodes, LookupTable};
use crate::soa::SoaCodes;

/// A trained vector compressor: dataset → compact codes + per-query
/// estimated distances.
pub trait VectorCompressor: Send + Sync {
    /// Display name used in experiment tables ("PQ", "OPQ", "Catalyst", …).
    fn name(&self) -> String;

    /// Input vector dimensionality.
    fn dim(&self) -> usize;

    /// Dimensionality of the reconstruction space (differs from `dim` for
    /// projection-based methods such as Catalyst).
    fn code_dim(&self) -> usize;

    /// Size of the model in bytes: codebooks plus any rotation/projection
    /// parameters (paper Table 5).
    fn model_bytes(&self) -> usize;

    /// Wall-clock seconds spent training this compressor (paper Table 4).
    fn train_seconds(&self) -> f32;

    /// Compresses a dataset (applying any internal rotation/projection).
    fn encode_dataset(&self, data: &Dataset) -> CompactCodes;

    /// Encodes a single vector — the streaming insert path (DESIGN.md §8.1)
    /// appends one code at a time as points arrive. Must agree bit-for-bit
    /// with [`VectorCompressor::encode_dataset`] on the same vector; the
    /// default guarantees that by routing through a one-vector dataset.
    fn encode_one(&self, v: &[f32], out: &mut [u8]) {
        let mut one = Dataset::new(self.dim());
        one.push(v);
        let codes = self.encode_dataset(&one);
        out.copy_from_slice(codes.code(0));
    }

    /// Reconstructs the quantized vector for one code, in the code space.
    fn decode_into(&self, code: &[u8], out: &mut [f32]);

    /// Builds the per-query distance estimator over a code set.
    fn estimator<'a>(
        &'a self,
        codes: &'a CompactCodes,
        query: &'a [f32],
    ) -> Box<dyn DistanceEstimator + 'a>;

    /// Builds the batched per-query estimator over chunk-major (SoA) codes
    /// — the hot-path variant beam search drives through
    /// [`DistanceEstimator::distance_batch`] (DESIGN.md §9). `None` (the
    /// default) means this compressor has no table-driven batched kernel
    /// and callers fall back to [`VectorCompressor::estimator`].
    ///
    /// Contract: when `Some`, every distance must be **bit-identical** to
    /// the scalar estimator's over the equivalent AoS codes.
    fn batch_estimator<'a>(
        &'a self,
        _codes: &'a SoaCodes,
        _query: &'a [f32],
    ) -> Option<Box<dyn DistanceEstimator + 'a>> {
        None
    }
}

impl<T: VectorCompressor + ?Sized> VectorCompressor for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn code_dim(&self) -> usize {
        (**self).code_dim()
    }
    fn model_bytes(&self) -> usize {
        (**self).model_bytes()
    }
    fn train_seconds(&self) -> f32 {
        (**self).train_seconds()
    }
    fn encode_dataset(&self, data: &Dataset) -> CompactCodes {
        (**self).encode_dataset(data)
    }
    fn encode_one(&self, v: &[f32], out: &mut [u8]) {
        (**self).encode_one(v, out)
    }
    fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        (**self).decode_into(code, out)
    }
    fn estimator<'a>(
        &'a self,
        codes: &'a CompactCodes,
        query: &'a [f32],
    ) -> Box<dyn DistanceEstimator + 'a> {
        (**self).estimator(codes, query)
    }
    fn batch_estimator<'a>(
        &'a self,
        codes: &'a SoaCodes,
        query: &'a [f32],
    ) -> Option<Box<dyn DistanceEstimator + 'a>> {
        (**self).batch_estimator(codes, query)
    }
}

/// The standard ADC estimator: one lookup-table build per query, then
/// `M` table reads per distance (paper §3.1; ADC is adopted throughout).
pub struct AdcEstimator<'a> {
    lut: LookupTable,
    codes: &'a CompactCodes,
}

impl<'a> AdcEstimator<'a> {
    pub fn new(lut: LookupTable, codes: &'a CompactCodes) -> Self {
        assert_eq!(lut.m(), codes.m(), "lookup table / codes chunk mismatch");
        Self { lut, codes }
    }
}

impl DistanceEstimator for AdcEstimator<'_> {
    #[inline]
    fn distance(&self, node: u32) -> f32 {
        debug_assert!(
            (node as usize) < self.codes.len(),
            "ADC estimator queried for node {node} but the code store holds {} codes",
            self.codes.len()
        );
        self.lut.distance(self.codes.code(node as usize))
    }
}

/// SDC (symmetric) estimator: the query itself is quantized and distances
/// come from the code-to-code table. Coarser than ADC (paper §3.1) — used
/// by the Table 2 reproduction as the "first two terms only" ranking.
pub struct SdcEstimator<'a> {
    table: crate::codebook::SdcTable,
    codes: &'a CompactCodes,
    query_code: Vec<u8>,
}

impl<'a> SdcEstimator<'a> {
    /// Quantizes `query` with `codebook` and prepares the symmetric table.
    pub fn new(
        codebook: &crate::codebook::Codebook,
        codes: &'a CompactCodes,
        query: &[f32],
    ) -> Self {
        let mut query_code = vec![0u8; codebook.m()];
        codebook.encode_one(query, &mut query_code);
        Self {
            table: codebook.sdc_table(),
            codes,
            query_code,
        }
    }
}

impl DistanceEstimator for SdcEstimator<'_> {
    #[inline]
    fn distance(&self, node: u32) -> f32 {
        self.table
            .distance(&self.query_code, self.codes.code(node as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::Codebook;

    fn tiny() -> (Codebook, CompactCodes) {
        let cb = Codebook::new(2, 2, 1, vec![0.0, 10.0, 0.0, 100.0]);
        let codes = CompactCodes::new(3, 2, vec![0, 1, 1, 0, 1, 1]);
        (cb, codes)
    }

    /// A node id past the end of the code store must fail loudly — with the
    /// offending id and the store's length — instead of an opaque slice
    /// panic deep inside `CompactCodes::code`.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "but the code store holds 3 codes")]
    fn out_of_range_node_id_names_id_and_len() {
        let (cb, codes) = tiny();
        let est = AdcEstimator::new(cb.lookup_table(&[1.0, 2.0]), &codes);
        let _ = est.distance(3);
    }

    #[test]
    fn in_range_node_ids_score() {
        let (cb, codes) = tiny();
        let est = AdcEstimator::new(cb.lookup_table(&[1.0, 2.0]), &codes);
        for node in 0..3u32 {
            assert!(est.distance(node).is_finite());
        }
    }
}
