//! Property-based tests for the data substrate: IO round-trips on
//! arbitrary payloads, recall bounds, dataset algebra.

use proptest::prelude::*;
use rpq_data::ground_truth::{recall_at_k, top_k_ids};
use rpq_data::io::{parse_fvecs_bytes, write_fvecs};
use rpq_data::{brute_force_knn, Dataset};

fn dataset(max_n: usize, dim: usize) -> impl Strategy<Value = Dataset> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(-1e4f32..1e4, n * dim)
            .prop_map(move |d| Dataset::from_flat(dim, d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fvecs_roundtrip_any_payload(ds in dataset(20, 5)) {
        let dir = std::env::temp_dir().join("rpq-proptest-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{}.fvecs", std::process::id()));
        write_fvecs(&path, &ds).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let back = parse_fvecs_bytes(&bytes, None).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn arbitrary_truncation_never_panics(ds in dataset(8, 3), cut in 1usize..50) {
        let dir = std::env::temp_dir().join("rpq-proptest-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trunc-{}.fvecs", std::process::id()));
        write_fvecs(&path, &ds).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let cut = cut.min(bytes.len());
        bytes.truncate(bytes.len() - cut);
        // Any prefix is either valid (ends on a record boundary) or a
        // clean error — never a panic.
        let _ = parse_fvecs_bytes(&bytes, None);
    }

    #[test]
    fn ground_truth_is_sorted_and_self_first(ds in dataset(30, 4)) {
        let gt = brute_force_knn(&ds, &ds, 3.min(ds.len()));
        for (qi, nbrs) in gt.neighbors.iter().enumerate() {
            // Distances ascending.
            let d: Vec<f32> = nbrs
                .iter()
                .map(|&j| rpq_linalg::distance::sq_l2(ds.get(qi), ds.get(j as usize)))
                .collect();
            for w in d.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-3);
            }
            // The query itself (distance 0) must head the list unless a
            // duplicate ties it.
            prop_assert!(d[0] <= 1e-3f32.max(d.last().cloned().unwrap_or(0.0) * 1e-6),
                         "self not first: d0 = {}", d[0]);
        }
    }

    #[test]
    fn recall_is_bounded(res in proptest::collection::vec(0u32..100, 0..10),
                         truth in proptest::collection::vec(0u32..100, 1..10)) {
        let k = truth.len();
        let r = recall_at_k(&res, &truth, k);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn top_k_consistent_with_full_sort(ds in dataset(25, 3), k in 1usize..8) {
        let q = ds.get(0).to_vec();
        let ids = top_k_ids(&ds, &q, k);
        let mut all: Vec<(f32, u32)> = (0..ds.len())
            .map(|i| (rpq_linalg::distance::sq_l2(&q, ds.get(i)), i as u32))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let kk = k.min(ds.len());
        // Same multiset of distances (ids may differ under exact ties).
        for (got, expect) in ids.iter().zip(all.iter().take(kk)) {
            let dg = rpq_linalg::distance::sq_l2(&q, ds.get(*got as usize));
            prop_assert!((dg - expect.0).abs() <= 1e-3 * expect.0.max(1.0));
        }
    }

    #[test]
    fn split_preserves_content(ds in dataset(20, 4), at_frac in 0.0f32..1.0) {
        let at = ((ds.len() as f32 * at_frac) as usize).min(ds.len());
        let (head, tail) = ds.split_at(at);
        prop_assert_eq!(head.len() + tail.len(), ds.len());
        let mut rebuilt = head.into_flat();
        rebuilt.extend_from_slice(tail.as_flat());
        prop_assert_eq!(rebuilt, ds.as_flat().to_vec());
    }
}
