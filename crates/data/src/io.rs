//! Readers and writers for the TEXMEX vector formats (`fvecs`, `bvecs`,
//! `ivecs`) used by SIFT1M, GIST1M, BigANN and Deep.
//!
//! Format: each vector is `[d: i32 little-endian][d payload elements]` where
//! the payload is `f32` (fvecs), `u8` (bvecs) or `i32` (ivecs). All readers
//! validate the header against the file length and return a descriptive
//! error instead of panicking — the paper's datasets are multi-GB downloads
//! and truncation is a real failure mode.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;

/// Errors from vector-file parsing.
#[derive(Debug)]
pub enum VecsError {
    Io(io::Error),
    /// The file ended in the middle of a vector record.
    Truncated {
        offset: usize,
    },
    /// A vector header declared an implausible dimension.
    BadDimension {
        dim: i32,
        offset: usize,
    },
    /// Vectors in one file must share a dimension.
    MixedDimensions {
        first: usize,
        got: usize,
        offset: usize,
    },
}

impl std::fmt::Display for VecsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VecsError::Io(e) => write!(f, "i/o error: {e}"),
            VecsError::Truncated { offset } => write!(f, "truncated record at byte {offset}"),
            VecsError::BadDimension { dim, offset } => {
                write!(f, "implausible dimension {dim} at byte {offset}")
            }
            VecsError::MixedDimensions { first, got, offset } => {
                write!(
                    f,
                    "mixed dimensions: first {first}, then {got} at byte {offset}"
                )
            }
        }
    }
}

impl std::error::Error for VecsError {}

impl From<io::Error> for VecsError {
    fn from(e: io::Error) -> Self {
        VecsError::Io(e)
    }
}

const MAX_DIM: i32 = 1 << 20;

fn parse_vecs(
    bytes: &[u8],
    elem_size: usize,
    mut emit: impl FnMut(&[u8]) -> f32,
    limit: Option<usize>,
) -> Result<Dataset, VecsError> {
    let mut offset = 0usize;
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut count = 0usize;
    while offset < bytes.len() {
        if let Some(l) = limit {
            if count >= l {
                break;
            }
        }
        if offset + 4 > bytes.len() {
            return Err(VecsError::Truncated { offset });
        }
        let d = i32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        if d <= 0 || d > MAX_DIM {
            return Err(VecsError::BadDimension { dim: d, offset });
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(first) if first != d => {
                return Err(VecsError::MixedDimensions {
                    first,
                    got: d,
                    offset,
                })
            }
            _ => {}
        }
        offset += 4;
        let payload = d * elem_size;
        if offset + payload > bytes.len() {
            return Err(VecsError::Truncated { offset });
        }
        for chunk in bytes[offset..offset + payload].chunks_exact(elem_size) {
            data.push(emit(chunk));
        }
        offset += payload;
        count += 1;
    }
    let dim = dim.unwrap_or(1);
    Ok(Dataset::from_flat(dim.max(1), data))
}

/// Reads an `fvecs` file (optionally only the first `limit` vectors).
pub fn read_fvecs(path: impl AsRef<Path>, limit: Option<usize>) -> Result<Dataset, VecsError> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    parse_fvecs_bytes(&bytes, limit)
}

/// Parses `fvecs` from an in-memory buffer.
pub fn parse_fvecs_bytes(bytes: &[u8], limit: Option<usize>) -> Result<Dataset, VecsError> {
    parse_vecs(
        bytes,
        4,
        |c| f32::from_le_bytes(c.try_into().unwrap()),
        limit,
    )
}

/// Reads a `bvecs` file (byte vectors, e.g. BigANN), widening to `f32`.
pub fn read_bvecs(path: impl AsRef<Path>, limit: Option<usize>) -> Result<Dataset, VecsError> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    parse_bvecs_bytes(&bytes, limit)
}

/// Parses `bvecs` from an in-memory buffer.
pub fn parse_bvecs_bytes(bytes: &[u8], limit: Option<usize>) -> Result<Dataset, VecsError> {
    parse_vecs(bytes, 1, |c| c[0] as f32, limit)
}

/// Reads an `ivecs` file (e.g. ground-truth indices) as rows of `i32`.
pub fn read_ivecs(
    path: impl AsRef<Path>,
    limit: Option<usize>,
) -> Result<Vec<Vec<u32>>, VecsError> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    let ds = parse_vecs(
        &bytes,
        4,
        |c| i32::from_le_bytes(c.try_into().unwrap()) as f32,
        limit,
    )?;
    Ok(ds
        .iter()
        .map(|row| row.iter().map(|&v| v as u32).collect())
        .collect())
}

/// Writes a dataset as `fvecs`.
pub fn write_fvecs(path: impl AsRef<Path>, ds: &Dataset) -> Result<(), VecsError> {
    let mut w = BufWriter::new(File::create(path)?);
    let dim = ds.dim() as i32;
    for v in ds.iter() {
        w.write_all(&dim.to_le_bytes())?;
        for &x in v {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut d = Dataset::new(3);
        d.push(&[1.0, -2.5, 3.25]);
        d.push(&[0.0, 7.0, -1.0]);
        d
    }

    #[test]
    fn fvecs_roundtrip() {
        let dir = std::env::temp_dir().join("rpq-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.fvecs");
        let ds = sample_dataset();
        write_fvecs(&path, &ds).unwrap();
        let back = read_fvecs(&path, None).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fvecs_limit() {
        let dir = std::env::temp_dir().join("rpq-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("limit.fvecs");
        write_fvecs(&path, &sample_dataset()).unwrap();
        let back = read_fvecs(&path, Some(1)).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_an_error() {
        let ds = sample_dataset();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(3i32).to_le_bytes());
        for &x in ds.get(0) {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        bytes.truncate(bytes.len() - 2); // chop mid-float
        match parse_fvecs_bytes(&bytes, None) {
            Err(VecsError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn negative_dimension_is_an_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(-5i32).to_le_bytes());
        match parse_fvecs_bytes(&bytes, None) {
            Err(VecsError::BadDimension { dim: -5, .. }) => {}
            other => panic!("expected BadDimension, got {other:?}"),
        }
    }

    #[test]
    fn mixed_dimensions_is_an_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(1i32).to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&(2i32).to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&2.0f32.to_le_bytes());
        match parse_fvecs_bytes(&bytes, None) {
            Err(VecsError::MixedDimensions {
                first: 1, got: 2, ..
            }) => {}
            other => panic!("expected MixedDimensions, got {other:?}"),
        }
    }

    #[test]
    fn bvecs_widens_bytes() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(2i32).to_le_bytes());
        bytes.push(0);
        bytes.push(255);
        let ds = parse_bvecs_bytes(&bytes, None).unwrap();
        assert_eq!(ds.get(0), &[0.0, 255.0]);
    }

    #[test]
    fn empty_buffer_gives_empty_dataset() {
        let ds = parse_fvecs_bytes(&[], None).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_fvecs("/nonexistent/definitely/not/here.fvecs", None) {
            Err(VecsError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
