//! # rpq-data
//!
//! Dataset substrate for the RPQ reproduction:
//!
//! * [`Dataset`] — a flat, cache-friendly store of `n` vectors of dimension
//!   `d` (the representation every other crate consumes),
//! * [`io`] — readers/writers for the standard `fvecs`/`bvecs`/`ivecs`
//!   formats so real SIFT/GIST/Deep/BigANN files can be dropped in,
//! * [`synth`] — synthetic generators matched to the paper's five datasets
//!   (Table 3) in dimensionality and local intrinsic dimensionality; these
//!   substitute for the multi-hundred-GB originals (see DESIGN.md §4),
//! * [`lid`] — the MLE local-intrinsic-dimensionality estimator used to
//!   validate the generators against Table 3,
//! * [`ground_truth`] — parallel brute-force exact k-NN and recall@k
//!   (paper Eq. 1).

pub mod dataset;
pub mod ground_truth;
pub mod io;
pub mod lid;
pub mod synth;

pub use dataset::Dataset;
pub use ground_truth::{brute_force_knn, recall_at_k, GroundTruth};
pub use lid::estimate_lid;
pub use synth::{DatasetKind, SynthConfig};
