//! # rpq-data
//!
//! Dataset substrate for the RPQ reproduction:
//!
//! * [`Dataset`] — a flat, cache-friendly store of `n` vectors of dimension
//!   `d` (the representation every other crate consumes),
//! * [`io`] — readers/writers for the standard `fvecs`/`bvecs`/`ivecs`
//!   formats so real SIFT/GIST/Deep/BigANN files can be dropped in,
//! * [`synth`] — synthetic generators matched to the paper's five datasets
//!   (Table 3) in dimensionality and local intrinsic dimensionality; these
//!   substitute for the multi-hundred-GB originals (see DESIGN.md §4),
//! * [`lid`] — the MLE local-intrinsic-dimensionality estimator used to
//!   validate the generators against Table 3,
//! * [`ground_truth`] — parallel brute-force exact k-NN and recall@k
//!   (paper Eq. 1), filtered and unfiltered,
//! * [`labels`] — per-vector label metadata over a small fixed vocabulary,
//!   the data-side half of filtered search (DESIGN.md §12).

pub mod dataset;
pub mod ground_truth;
pub mod io;
pub mod labels;
pub mod lid;
pub mod synth;

pub use dataset::Dataset;
pub use ground_truth::{brute_force_knn, brute_force_knn_filtered, recall_at_k, GroundTruth};
pub use labels::{LabelPredicate, Labels};
pub use lid::estimate_lid;
pub use synth::{DatasetKind, SynthConfig};
