//! Exact k-nearest-neighbor ground truth and recall@k (paper Eq. 1).

use rayon::prelude::*;
use rpq_linalg::distance::sq_l2;

use crate::dataset::Dataset;
use crate::labels::{LabelPredicate, Labels};

/// Exact nearest neighbors for a query set: `neighbors[q]` holds the ids of
/// the `k` base vectors closest to query `q`, ascending by distance.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    pub k: usize,
    pub neighbors: Vec<Vec<u32>>,
}

impl GroundTruth {
    /// Recall@k of `results[q]` (any order, any length ≥ 0) against this
    /// ground truth, averaged over queries — Eq. 1 of the paper.
    pub fn recall(&self, results: &[Vec<u32>]) -> f32 {
        assert_eq!(results.len(), self.neighbors.len(), "query count mismatch");
        if self.neighbors.is_empty() {
            return 1.0;
        }
        let mut total = 0.0f64;
        for (res, truth) in results.iter().zip(&self.neighbors) {
            total += overlap(res, truth) as f64 / self.k as f64;
        }
        (total / self.neighbors.len() as f64) as f32
    }
}

fn overlap(res: &[u32], truth: &[u32]) -> usize {
    res.iter().filter(|id| truth.contains(id)).count()
}

/// Computes exact top-`k` neighbors of every query by parallel brute force.
///
/// Panics if `base` is empty or the dimensions disagree; `k` is clamped to
/// the base size.
pub fn brute_force_knn(base: &Dataset, queries: &Dataset, k: usize) -> GroundTruth {
    assert!(!base.is_empty(), "ground truth needs a non-empty base set");
    assert_eq!(base.dim(), queries.dim(), "dimension mismatch");
    let k = k.min(base.len());
    let neighbors: Vec<Vec<u32>> = (0..queries.len())
        .into_par_iter()
        .map(|qi| top_k_ids(base, queries.get(qi), k))
        .collect();
    GroundTruth { k, neighbors }
}

/// Exact top-`k` neighbors **among base vectors satisfying `pred`** — the
/// filtered-search ground truth (DESIGN.md §12). Ids are global (base
/// positions), so filtered index results compare directly. `k` is clamped
/// to the predicate's matching count; panics when nothing matches.
pub fn brute_force_knn_filtered(
    base: &Dataset,
    queries: &Dataset,
    k: usize,
    labels: &Labels,
    pred: LabelPredicate,
) -> GroundTruth {
    assert!(!base.is_empty(), "ground truth needs a non-empty base set");
    assert_eq!(base.dim(), queries.dim(), "dimension mismatch");
    assert_eq!(labels.len(), base.len(), "labels must cover the base set");
    let matching = labels.count_matching(pred);
    assert!(matching > 0, "predicate matches no base vectors");
    let k = k.min(matching);
    let neighbors: Vec<Vec<u32>> = (0..queries.len())
        .into_par_iter()
        .map(|qi| {
            top_k_ids_filtered(base, queries.get(qi), k, |v| {
                labels.matches(v as usize, pred)
            })
        })
        .collect();
    GroundTruth { k, neighbors }
}

/// Exact top-`k` ids among base vectors accepted by `accept` (ascending
/// distance), via the same bounded max-heap scan as [`top_k_ids`].
pub fn top_k_ids_filtered(
    base: &Dataset,
    query: &[f32],
    k: usize,
    accept: impl Fn(u32) -> bool,
) -> Vec<u32> {
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f32, u32);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    let k = k.max(1);
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (i, v) in base.iter().enumerate() {
        if !accept(i as u32) {
            continue;
        }
        let d = sq_l2(query, v);
        if heap.len() < k {
            heap.push(Entry(d, i as u32));
        } else if d < heap.peek().unwrap().0 {
            heap.pop();
            heap.push(Entry(d, i as u32));
        }
    }
    let mut sorted: Vec<Entry> = heap.into_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    sorted.into_iter().map(|e| e.1).collect()
}

/// Exact top-`k` ids for one query vector (ascending distance), via a
/// bounded max-heap scan.
pub fn top_k_ids(base: &Dataset, query: &[f32], k: usize) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f32, u32);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    let k = k.min(base.len()).max(1);
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (i, v) in base.iter().enumerate() {
        let d = sq_l2(query, v);
        if heap.len() < k {
            heap.push(Entry(d, i as u32));
        } else if d < heap.peek().unwrap().0 {
            heap.pop();
            heap.push(Entry(d, i as u32));
        }
    }
    let mut sorted: Vec<Entry> = heap.into_vec();
    sorted.sort_by_key(|e| Reverse(std::cmp::Reverse(e.1)));
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    sorted.into_iter().map(|e| e.1).collect()
}

/// Convenience: recall@k between a single result list and a single truth
/// list.
pub fn recall_at_k(result: &[u32], truth: &[u32], k: usize) -> f32 {
    assert!(k > 0, "k must be positive");
    let truth = &truth[..k.min(truth.len())];
    overlap(&result[..k.min(result.len())], truth) as f32 / k as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dataset(n: usize) -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..n {
            d.push(&[i as f32]);
        }
        d
    }

    #[test]
    fn knn_on_a_line() {
        let base = line_dataset(10);
        let mut queries = Dataset::new(1);
        queries.push(&[3.1]);
        let gt = brute_force_knn(&base, &queries, 3);
        assert_eq!(gt.neighbors[0], vec![3, 4, 2]);
    }

    #[test]
    fn knn_k_clamped_to_base() {
        let base = line_dataset(2);
        let mut queries = Dataset::new(1);
        queries.push(&[0.0]);
        let gt = brute_force_knn(&base, &queries, 10);
        assert_eq!(gt.k, 2);
        assert_eq!(gt.neighbors[0].len(), 2);
    }

    #[test]
    fn perfect_recall() {
        let base = line_dataset(20);
        let mut queries = Dataset::new(1);
        queries.push(&[5.0]);
        queries.push(&[15.0]);
        let gt = brute_force_knn(&base, &queries, 5);
        let results: Vec<Vec<u32>> = gt.neighbors.clone();
        assert_eq!(gt.recall(&results), 1.0);
    }

    #[test]
    fn partial_recall() {
        let gt = GroundTruth {
            k: 4,
            neighbors: vec![vec![0, 1, 2, 3]],
        };
        let recall = gt.recall(&[vec![0, 1, 9, 8]]);
        assert!((recall - 0.5).abs() < 1e-6);
    }

    #[test]
    fn recall_ignores_result_order() {
        let gt = GroundTruth {
            k: 3,
            neighbors: vec![vec![5, 6, 7]],
        };
        assert_eq!(gt.recall(&[vec![7, 5, 6]]), 1.0);
    }

    #[test]
    fn recall_at_k_single() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[3, 2, 9], 3), 2.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "non-empty base")]
    fn empty_base_panics() {
        let base = Dataset::new(1);
        let queries = line_dataset(1);
        let _ = brute_force_knn(&base, &queries, 1);
    }

    #[test]
    fn filtered_gt_only_returns_matching_ids() {
        let base = line_dataset(20);
        let mut queries = Dataset::new(1);
        queries.push(&[7.2]);
        // Even ids get label 0, odd ids label 1.
        let labels = Labels::from_masks(2, (0..20).map(|i| 1 << (i % 2)).collect());
        let even = LabelPredicate::single(0);
        let gt = brute_force_knn_filtered(&base, &queries, 3, &labels, even);
        assert_eq!(gt.neighbors[0], vec![8, 6, 10]);
        let odd = LabelPredicate::single(1);
        let gt = brute_force_knn_filtered(&base, &queries, 3, &labels, odd);
        assert_eq!(gt.neighbors[0], vec![7, 9, 5]);
    }

    #[test]
    fn filtered_gt_clamps_k_to_matching_count() {
        let base = line_dataset(10);
        let mut queries = Dataset::new(1);
        queries.push(&[0.0]);
        let mut masks = vec![1u32; 10];
        masks[3] = 2;
        masks[7] = 2;
        let labels = Labels::from_masks(2, masks);
        let gt = brute_force_knn_filtered(&base, &queries, 5, &labels, LabelPredicate::single(1));
        assert_eq!(gt.k, 2);
        assert_eq!(gt.neighbors[0], vec![3, 7]);
    }

    #[test]
    fn filtered_gt_with_all_matching_equals_unfiltered() {
        let base = line_dataset(15);
        let mut queries = Dataset::new(1);
        queries.push(&[11.3]);
        let labels = Labels::from_masks(1, vec![1; 15]);
        let filtered =
            brute_force_knn_filtered(&base, &queries, 4, &labels, LabelPredicate::single(0));
        let plain = brute_force_knn(&base, &queries, 4);
        assert_eq!(filtered.neighbors, plain.neighbors);
    }

    #[test]
    fn ties_resolved_deterministically() {
        let mut base = Dataset::new(1);
        base.push(&[1.0]);
        base.push(&[1.0]);
        base.push(&[1.0]);
        let q = [1.0f32];
        let a = top_k_ids(&base, &q, 2);
        let b = top_k_ids(&base, &q, 2);
        assert_eq!(a, b);
    }
}
