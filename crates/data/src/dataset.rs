//! Flat vector dataset: `n` vectors of dimension `d`, stored contiguously.

use rpq_linalg::Matrix;

/// A dense collection of `f32` vectors with a fixed dimension.
///
/// Storage is one contiguous buffer, so iterating vectors streams memory
/// linearly — the layout every distance-heavy loop in the workspace wants.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset of dimension `dim` (must be non-zero).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty dataset with capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a dataset from a flat buffer. Panics if the buffer length is
    /// not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "flat buffer length {} not a multiple of dim {dim}",
            data.len()
        );
        Self { dim, data }
    }

    /// Builds a dataset whose rows are the rows of `m`.
    pub fn from_matrix(m: &Matrix) -> Self {
        Self::from_flat(m.cols, m.data.clone())
    }

    /// Returns the rows `[r0, r1)` as a matrix (useful for batched autodiff).
    pub fn to_matrix(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.len(), "row range out of bounds");
        Matrix::from_vec(
            r1 - r0,
            self.dim,
            self.data[r0 * self.dim..r1 * self.dim].to_vec(),
        )
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if there are no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `i`-th vector.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        debug_assert!(
            i < self.len(),
            "index {i} out of bounds ({} vectors)",
            self.len()
        );
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable access to the `i`-th vector.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut [f32] {
        let d = self.dim;
        &mut self.data[i * d..(i + 1) * d]
    }

    /// Appends a vector. Panics if the dimension does not match.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(
            v.len(),
            self.dim,
            "pushed vector has dim {}, dataset has {}",
            v.len(),
            self.dim
        );
        self.data.extend_from_slice(v);
    }

    /// Iterates over vectors.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// The raw flat buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Consumes into the raw flat buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Copies the selected indices into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }

    /// Splits off the first `n_head` vectors into one dataset and the rest
    /// into another (a deterministic train/query split helper).
    pub fn split_at(&self, n_head: usize) -> (Dataset, Dataset) {
        assert!(
            n_head <= self.len(),
            "split point {n_head} beyond {} vectors",
            self.len()
        );
        let head = Dataset::from_flat(self.dim, self.data[..n_head * self.dim].to_vec());
        let tail = Dataset::from_flat(self.dim, self.data[n_head * self.dim..].to_vec());
        (head, tail)
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Per-dimension variance (the "value of a dimension" proxy the paper's
    /// Figure 4 visualises via the covariance diagonal).
    pub fn dimension_variance(&self) -> Vec<f32> {
        let n = self.len();
        if n == 0 {
            return vec![0.0; self.dim];
        }
        let mut mean = vec![0.0f64; self.dim];
        for v in self.iter() {
            for (m, &x) in mean.iter_mut().zip(v) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; self.dim];
        for v in self.iter() {
            for ((s, &x), &m) in var.iter_mut().zip(v).zip(&mean) {
                let d = x as f64 - m;
                *s += d * d;
            }
        }
        var.iter().map(|&s| (s / n as f64) as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut d = Dataset::new(3);
        d.push(&[1.0, 2.0, 3.0]);
        d.push(&[4.0, 5.0, 6.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "pushed vector has dim")]
    fn push_wrong_dim_panics() {
        let mut d = Dataset::new(3);
        d.push(&[1.0]);
    }

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let d = Dataset::from_matrix(&m);
        assert_eq!(d.to_matrix(0, 3), m);
        assert_eq!(d.to_matrix(1, 2).data, vec![3.0, 4.0]);
    }

    #[test]
    fn subset_and_split() {
        let d = Dataset::from_flat(1, vec![0.0, 1.0, 2.0, 3.0]);
        let s = d.subset(&[3, 1]);
        assert_eq!(s.as_flat(), &[3.0, 1.0]);
        let (a, b) = d.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), &[1.0]);
    }

    #[test]
    fn dimension_variance_constant_dim_is_zero() {
        let mut d = Dataset::new(2);
        d.push(&[5.0, 1.0]);
        d.push(&[5.0, 3.0]);
        let v = d.dimension_variance();
        assert!(v[0].abs() < 1e-9);
        assert!((v[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_dataset_behaviour() {
        let d = Dataset::new(4);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.dimension_variance(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "not a multiple of dim")]
    fn from_flat_rejects_ragged() {
        let _ = Dataset::from_flat(3, vec![1.0, 2.0]);
    }
}
