//! Synthetic dataset generators matched to the paper's five evaluation
//! datasets (Table 3).
//!
//! The substitution rationale (DESIGN.md §4): for PQ-integrated graph ANNS
//! the behaviour-relevant properties of a dataset are its dimensionality,
//! its **local intrinsic dimensionality** (LID) and its cluster structure —
//! not the provenance of the vectors. Each generator draws from a mixture
//! of clusters that live on random low-dimensional subspaces (subspace
//! dimension ≈ target LID) embedded in the ambient space, plus small
//! isotropic noise, then applies a dataset-specific value transform:
//!
//! | Kind      | dim  | target LID | transform                       |
//! |-----------|------|-----------|----------------------------------|
//! | `Sift`    | 128  | ~16.6     | non-negative, byte-quantised     |
//! | `BigAnn`  | 128  | ~16.6     | non-negative, byte-quantised     |
//! | `Deep`    | 96   | ~17.6     | L2-normalised rows               |
//! | `Gist`    | 160* | ~35       | correlated dims, unit scale      |
//! | `Ukbench` | 128  | ~8.3      | non-negative                     |
//!
//! *Gist is generated at 160 dims by default instead of the original 960 so
//! the full experiment suite stays laptop-scale; the dimension is a
//! parameter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_linalg::distance::normalize;

use crate::dataset::Dataset;
use crate::labels::Labels;

/// Which of the paper's datasets to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    Sift,
    BigAnn,
    Deep,
    Gist,
    Ukbench,
}

impl DatasetKind {
    /// All five, in the order the paper's tables list them.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::BigAnn,
        DatasetKind::Deep,
        DatasetKind::Gist,
        DatasetKind::Sift,
        DatasetKind::Ukbench,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Sift => "Sift",
            DatasetKind::BigAnn => "BigANN",
            DatasetKind::Deep => "Deep",
            DatasetKind::Gist => "Gist",
            DatasetKind::Ukbench => "Ukbench",
        }
    }

    /// Default generator configuration for this dataset kind.
    pub fn config(&self) -> SynthConfig {
        match self {
            DatasetKind::Sift | DatasetKind::BigAnn => SynthConfig {
                dim: 128,
                intrinsic_dim: 16,
                clusters: 64,
                cluster_std: 1.0,
                noise_std: 0.08,
                transform: ValueTransform::ByteQuantised {
                    scale: 24.0,
                    offset: 60.0,
                },
            },
            DatasetKind::Deep => SynthConfig {
                dim: 96,
                intrinsic_dim: 18,
                clusters: 64,
                cluster_std: 1.0,
                noise_std: 0.10,
                transform: ValueTransform::Normalised,
            },
            DatasetKind::Gist => SynthConfig {
                dim: 160,
                intrinsic_dim: 36,
                clusters: 32,
                cluster_std: 1.0,
                noise_std: 0.12,
                transform: ValueTransform::Identity,
            },
            DatasetKind::Ukbench => SynthConfig {
                dim: 128,
                intrinsic_dim: 8,
                clusters: 96,
                cluster_std: 1.0,
                noise_std: 0.05,
                transform: ValueTransform::NonNegative {
                    scale: 20.0,
                    offset: 50.0,
                },
            },
        }
    }

    /// Generates `n` base vectors plus `n_query` held-out queries drawn from
    /// the same distribution, with a deterministic seed.
    pub fn generate(&self, n: usize, n_query: usize, seed: u64) -> (Dataset, Dataset) {
        let cfg = self.config();
        let all = cfg.generate(n + n_query, seed);
        let (base, query) = all.split_at(n);
        (base, query)
    }
}

/// Post-processing applied to raw mixture samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueTransform {
    /// Leave values as sampled.
    Identity,
    /// Shift/scale then clamp to `[0, 255]` and round (SIFT-style
    /// descriptors are non-negative bytes).
    ByteQuantised { scale: f32, offset: f32 },
    /// Shift/scale then clamp below at 0.
    NonNegative { scale: f32, offset: f32 },
    /// L2-normalise each vector (Deep descriptors are normalised CNN
    /// activations).
    Normalised,
}

/// Parameters of the clustered-subspace generator.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Ambient dimensionality.
    pub dim: usize,
    /// Subspace dimensionality per cluster (≈ target LID).
    pub intrinsic_dim: usize,
    /// Number of mixture components.
    pub clusters: usize,
    /// Within-cluster standard deviation along subspace directions.
    pub cluster_std: f32,
    /// Isotropic ambient noise standard deviation.
    pub noise_std: f32,
    /// Value transform applied at the end.
    pub transform: ValueTransform,
}

impl SynthConfig {
    /// Generates `n` vectors.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        self.generate_impl(n, seed, |_| {})
    }

    /// Generates `n` vectors **plus** per-vector labels correlated with the
    /// cluster geometry — the hard, realistic filtered-search case
    /// (DESIGN.md §12): a predicate's matching points are geometrically
    /// clumped, so an unfiltered traversal can wander regions with no
    /// matches at all.
    ///
    /// Every point gets exactly one label derived from its (already drawn)
    /// cluster id with **no extra RNG draws**, so the returned vectors are
    /// bit-identical to [`SynthConfig::generate`] with the same `(n, seed)`
    /// — labelling a corpus never perturbs it. The cluster→label map is
    /// geometric: label `j` covers ~`2^-(j+1)` of the clusters
    /// (`j = trailing_zeros(c + 1)`, clamped to the vocabulary), giving
    /// single-label selectivities of ~0.5, 0.25, …, down to ~`2^-vocab` —
    /// the selectivity axis the filtered experiment sweeps without needing
    /// per-selectivity corpora.
    pub fn generate_labeled(&self, n: usize, seed: u64, vocab: usize) -> (Dataset, Labels) {
        let mut labels = Labels::new(vocab);
        let data = self.generate_impl(n, seed, |c| {
            let label = ((c as u32 + 1).trailing_zeros() as usize).min(vocab - 1);
            labels.push_label(label);
        });
        (data, labels)
    }

    fn generate_impl(&self, n: usize, seed: u64, mut on_cluster: impl FnMut(usize)) -> Dataset {
        assert!(
            self.dim > 0 && self.intrinsic_dim > 0,
            "dimensions must be positive"
        );
        assert!(
            self.intrinsic_dim <= self.dim,
            "intrinsic_dim must be <= dim"
        );
        assert!(self.clusters > 0, "need at least one cluster");
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = self.dim;
        let s = self.intrinsic_dim;

        // Cluster centres: spread out so clusters are separated relative to
        // their internal std.
        let centre_scale = 4.0 * self.cluster_std * (s as f32).sqrt();
        let centres: Vec<Vec<f32>> = (0..self.clusters)
            .map(|_| {
                (0..d)
                    .map(|_| normal(&mut rng) * centre_scale / (d as f32).sqrt())
                    .collect()
            })
            .collect();

        // Per-cluster random subspace bases: `s` random unit directions.
        // (Not orthonormalised — mild correlation between directions only
        // *lowers* effective LID slightly, which the noise term offsets.)
        let bases: Vec<Vec<f32>> = (0..self.clusters)
            .map(|_| {
                let mut b: Vec<f32> = (0..s * d).map(|_| normal(&mut rng)).collect();
                for row in b.chunks_mut(d) {
                    normalize(row);
                }
                b
            })
            .collect();

        let mut out = Dataset::with_capacity(d, n);
        let mut v = vec![0.0f32; d];
        for _ in 0..n {
            let c = rng.gen_range(0..self.clusters);
            on_cluster(c);
            v.copy_from_slice(&centres[c]);
            let basis = &bases[c];
            for dir in 0..s {
                let coeff = normal(&mut rng) * self.cluster_std;
                let row = &basis[dir * d..(dir + 1) * d];
                for (vv, &bv) in v.iter_mut().zip(row) {
                    *vv += coeff * bv;
                }
            }
            for vv in v.iter_mut() {
                *vv += normal(&mut rng) * self.noise_std;
            }
            apply_transform(&mut v, self.transform);
            out.push(&v);
        }
        out
    }
}

fn apply_transform(v: &mut [f32], t: ValueTransform) {
    match t {
        ValueTransform::Identity => {}
        ValueTransform::ByteQuantised { scale, offset } => {
            for x in v.iter_mut() {
                *x = (*x * scale + offset).clamp(0.0, 255.0).round();
            }
        }
        ValueTransform::NonNegative { scale, offset } => {
            for x in v.iter_mut() {
                *x = (*x * scale + offset).max(0.0);
            }
        }
        ValueTransform::Normalised => normalize(v),
    }
}

/// Standard normal via Box–Muller.
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = DatasetKind::Sift.config();
        let a = cfg.generate(50, 7);
        let b = cfg.generate(50, 7);
        assert_eq!(a, b);
        let c = cfg.generate(50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn labeled_generation_is_bit_identical_to_unlabeled() {
        let cfg = SynthConfig {
            dim: 12,
            intrinsic_dim: 5,
            clusters: 16,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        };
        let plain = cfg.generate(300, 11);
        let (labeled, labels) = cfg.generate_labeled(300, 11, 4);
        assert_eq!(plain, labeled, "labelling must never perturb the vectors");
        assert_eq!(labels.len(), 300);
        // Same seed, same labels.
        let (_, labels2) = cfg.generate_labeled(300, 11, 4);
        assert_eq!(labels, labels2);
    }

    #[test]
    fn labels_follow_the_geometric_selectivity_ladder() {
        let cfg = SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 64,
            cluster_std: 0.6,
            noise_std: 0.02,
            transform: ValueTransform::Identity,
        };
        let (_, labels) = cfg.generate_labeled(4000, 3, 8);
        use crate::labels::LabelPredicate;
        // Label j covers ~2^-(j+1) of the clusters (uniform cluster draw),
        // so measured selectivities track the geometric ladder.
        for (label, want) in [(0usize, 0.5f32), (1, 0.25), (2, 0.125)] {
            let got = labels.selectivity(LabelPredicate::single(label));
            assert!(
                (got - want).abs() < 0.08,
                "label {label}: selectivity {got} far from {want}"
            );
        }
        // The tail label exists but is rare.
        let tail = labels.selectivity(LabelPredicate::single(5));
        assert!(tail > 0.0 && tail < 0.06, "tail selectivity {tail}");
        // Points in one cluster share one label: selectivities over all
        // single labels sum to 1 (each point has exactly one label).
        let total: f32 = (0..8)
            .map(|l| labels.selectivity(LabelPredicate::single(l)))
            .sum();
        assert!((total - 1.0).abs() < 1e-5, "labels must partition: {total}");
    }

    #[test]
    fn shapes_match_config() {
        for kind in DatasetKind::ALL {
            let (base, query) = kind.generate(40, 10, 1);
            assert_eq!(base.len(), 40, "{}", kind.name());
            assert_eq!(query.len(), 10);
            assert_eq!(base.dim(), kind.config().dim);
            assert_eq!(query.dim(), base.dim());
        }
    }

    #[test]
    fn sift_like_values_are_bytes() {
        let (base, _) = DatasetKind::Sift.generate(100, 0, 3);
        for v in base.iter() {
            for &x in v {
                assert!((0.0..=255.0).contains(&x), "value {x} outside byte range");
                assert_eq!(x, x.round(), "value {x} not integral");
            }
        }
    }

    #[test]
    fn deep_like_rows_are_normalised() {
        let (base, _) = DatasetKind::Deep.generate(50, 0, 4);
        for v in base.iter() {
            let n = rpq_linalg::distance::norm(v);
            assert!((n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn ukbench_like_is_non_negative() {
        let (base, _) = DatasetKind::Ukbench.generate(50, 0, 5);
        assert!(base.as_flat().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn clusters_create_structure() {
        // With strong cluster separation, average within-dataset distance to
        // the nearest other point must be far below distance to a random
        // point.
        let cfg = SynthConfig {
            dim: 16,
            intrinsic_dim: 4,
            clusters: 8,
            cluster_std: 0.5,
            noise_std: 0.01,
            transform: ValueTransform::Identity,
        };
        let ds = cfg.generate(200, 9);
        let mut nn_sum = 0.0;
        let mut rand_sum = 0.0;
        for i in 0..50 {
            let mut best = f32::INFINITY;
            for j in 0..ds.len() {
                if i == j {
                    continue;
                }
                best = best.min(rpq_linalg::distance::sq_l2(ds.get(i), ds.get(j)));
            }
            nn_sum += best;
            rand_sum += rpq_linalg::distance::sq_l2(ds.get(i), ds.get((i + 97) % ds.len()));
        }
        assert!(
            nn_sum * 3.0 < rand_sum,
            "no cluster structure: nn {nn_sum} vs rand {rand_sum}"
        );
    }

    #[test]
    #[should_panic(expected = "intrinsic_dim must be <= dim")]
    fn invalid_config_panics() {
        let cfg = SynthConfig {
            dim: 4,
            intrinsic_dim: 8,
            clusters: 1,
            cluster_std: 1.0,
            noise_std: 0.0,
            transform: ValueTransform::Identity,
        };
        let _ = cfg.generate(1, 0);
    }
}
