//! Local intrinsic dimensionality (LID) estimation.
//!
//! The paper characterises each dataset by its LID (Table 3, citing Facco et
//! al. / Amsaleg et al.). We implement the classical maximum-likelihood
//! estimator: for a point with distances `r₁ ≤ … ≤ r_k` to its k nearest
//! neighbors,
//!
//! ```text
//! LID ≈ − ( (1/k) · Σᵢ ln(rᵢ / r_k) )⁻¹
//! ```
//!
//! and the dataset-level figure is the average over sampled points. This is
//! used by tests to validate that the synthetic generators actually land in
//! the neighbourhood of the paper's reported LIDs.

use rayon::prelude::*;
use rpq_linalg::distance::sq_l2;

use crate::dataset::Dataset;

/// Estimates the dataset's average LID from `sample` query points, each using
/// its `k` nearest neighbors. Returns `None` for degenerate inputs (fewer
/// than `k + 1` points or `k < 2`).
pub fn estimate_lid(ds: &Dataset, sample: usize, k: usize, seed: u64) -> Option<f32> {
    if ds.len() < k + 1 || k < 2 {
        return None;
    }
    // Deterministic sample: stride over the dataset starting at seed offset.
    let n = ds.len();
    let sample = sample.min(n);
    let stride = (n / sample).max(1);
    let start = (seed as usize) % stride.max(1);
    let points: Vec<usize> = (0..sample).map(|i| (start + i * stride) % n).collect();

    let lids: Vec<f32> = points
        .par_iter()
        .filter_map(|&qi| {
            let q = ds.get(qi);
            // Exact kNN distances (squared), excluding the point itself.
            let mut dists: Vec<f32> = Vec::with_capacity(n - 1);
            for j in 0..n {
                if j != qi {
                    dists.push(sq_l2(q, ds.get(j)));
                }
            }
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            dists.truncate(k);
            let rk = dists[k - 1].max(f32::MIN_POSITIVE).sqrt();
            let mut acc = 0.0f64;
            let mut cnt = 0usize;
            for &d in &dists[..k - 1] {
                let r = d.sqrt();
                if r > 0.0 {
                    acc += (r as f64 / rk as f64).ln();
                    cnt += 1;
                }
            }
            if cnt == 0 || acc >= 0.0 {
                return None;
            }
            Some((-(cnt as f64) / acc) as f32)
        })
        .collect();

    if lids.is_empty() {
        None
    } else {
        Some(lids.iter().sum::<f32>() / lids.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, ValueTransform};

    fn gaussian_config(dim: usize, intrinsic: usize) -> SynthConfig {
        SynthConfig {
            dim,
            intrinsic_dim: intrinsic,
            clusters: 1,
            cluster_std: 1.0,
            noise_std: 0.0,
            transform: ValueTransform::Identity,
        }
    }

    #[test]
    fn lid_tracks_intrinsic_dimension() {
        // A single full-rank Gaussian in d dims has LID ≈ d.
        let low = gaussian_config(32, 4).generate(2000, 1);
        let high = gaussian_config(32, 20).generate(2000, 2);
        let lid_low = estimate_lid(&low, 100, 20, 0).unwrap();
        let lid_high = estimate_lid(&high, 100, 20, 0).unwrap();
        assert!(
            lid_low < lid_high,
            "lid_low {lid_low} vs lid_high {lid_high}"
        );
        assert!(lid_low > 1.5 && lid_low < 10.0, "lid_low {lid_low}");
        assert!(lid_high > 10.0, "lid_high {lid_high}");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let tiny = gaussian_config(4, 2).generate(3, 3);
        assert!(estimate_lid(&tiny, 10, 10, 0).is_none());
        assert!(estimate_lid(&tiny, 10, 1, 0).is_none());
    }

    #[test]
    fn duplicate_points_do_not_panic() {
        let mut ds = Dataset::new(2);
        for _ in 0..20 {
            ds.push(&[1.0, 1.0]);
        }
        // All-zero distances: estimator should decline, not panic.
        assert!(estimate_lid(&ds, 5, 5, 0).is_none());
    }
}
